"""Package metadata for the ATAMAN TinyML-approximation reproduction."""

from pathlib import Path

from setuptools import find_packages, setup

ROOT = Path(__file__).parent


def _read_version() -> str:
    namespace: dict = {}
    exec((ROOT / "src" / "repro" / "_version.py").read_text(encoding="utf-8"), namespace)
    return namespace["__version__"]


def _read_long_description() -> str:
    readme = ROOT / "README.md"
    return readme.read_text(encoding="utf-8") if readme.exists() else ""


setup(
    name="repro-tinyml",
    version=_read_version(),
    description=(
        "Reproduction of a cooperative approximation framework for TinyML "
        "inference on MCUs: code unpacking, significance-driven computation "
        "skipping, DSE and board-level deployment models"
    ),
    long_description=_read_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest>=7", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro-tinyml = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
        "Topic :: Software Development :: Embedded Systems",
    ],
)
