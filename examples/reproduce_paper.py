#!/usr/bin/env python
"""Regenerate every table and figure of the paper from the shared experiment context.

Run:
    python examples/reproduce_paper.py --all
    python examples/reproduce_paper.py --table1 --table2
    python examples/reproduce_paper.py --figure2 --scale full

The first run at a given scale trains LeNet/AlexNet on the synthetic dataset
and runs the DSE (a few minutes at the default "fast" scale); results are
cached under ``.repro_cache/`` so later runs are immediate.
"""

from __future__ import annotations

import argparse

from repro.evaluation import (
    ExperimentContext,
    build_claims,
    build_figure2,
    build_table1,
    build_table2,
    format_claims,
    format_figure2,
    format_table1,
    format_table2,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table1", action="store_true", help="regenerate Table I")
    parser.add_argument("--table2", action="store_true", help="regenerate Table II")
    parser.add_argument("--figure2", action="store_true", help="regenerate Figure 2")
    parser.add_argument("--claims", action="store_true", help="recompute the Section III claims")
    parser.add_argument("--all", action="store_true", help="regenerate everything")
    parser.add_argument("--scale", choices=("ci", "fast", "full"), default=None)
    args = parser.parse_args()

    if not any((args.table1, args.table2, args.figure2, args.claims, args.all)):
        parser.error("select at least one of --table1/--table2/--figure2/--claims/--all")

    context = ExperimentContext(scale=args.scale)
    if args.all or args.table1:
        print(format_table1(build_table1(context)))
        print()
    if args.all or args.figure2:
        print(format_figure2(build_figure2(context)))
        print()
    if args.all or args.table2:
        print(format_table2(build_table2(context)))
        print()
    if args.all or args.claims:
        print(format_claims(build_claims(context)))


if __name__ == "__main__":
    main()
