#!/usr/bin/env python
"""Quickstart: train a small CNN, quantize it, and accelerate it with ATAMAN.

This walks the composable ``Experiment`` API end to end in a couple of
minutes of CPU time:

1. generate a synthetic CIFAR-10-class dataset;
2. train a small CNN in float;
3. post-training-quantize it to int8 (CMSIS-NN style);
4. run the paper's cooperative approximation framework as a cached stage
   graph (unpacking, significance, computation skipping, DSE, Pareto
   analysis) -- then re-run with a finer tau sweep and watch every stage
   except the DSE come back from the artifact cache;
5. deploy the exact CMSIS-NN baseline and the approximate ATAMAN design on the
   STM32U575 board model and compare latency / flash / energy / accuracy.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import DSEConfig
from repro.data import load_synthetic_cifar10, train_val_test_split
from repro.evaluation.reports import format_table
from repro.frameworks import AtamanEngine, CMSISNNEngine, XCubeAIEngine
from repro.isa import STM32U575
from repro.mcu import deploy
from repro.models import build_tiny_cnn
from repro.nn import Adam, Trainer
from repro.quant import quantize_model
from repro.workflow import ArtifactStore, Experiment


def main() -> None:
    # ------------------------------------------------------------------ data
    dataset = load_synthetic_cifar10(n_samples=1500, seed=7)
    split = train_val_test_split(dataset, val_fraction=0.0, test_fraction=0.25, calibration_size=96, rng=0)
    print(f"dataset: {len(split.train)} train / {len(split.test)} test images, "
          f"{split.n_classes} classes, shape {split.train.image_shape}")

    # ------------------------------------------------------------------ train
    model = build_tiny_cnn(input_shape=split.train.image_shape, n_classes=split.n_classes, rng=1)
    trainer = Trainer(model, Adam(model.parameters(), lr=2e-3), rng=3)
    history = trainer.fit(split.train.images, split.train.labels, epochs=8, batch_size=32,
                          x_val=split.test.images, y_val=split.test.labels)
    print(f"float model accuracy after {history.epochs} epochs: {history.val_accuracy[-1]:.3f}")

    # ------------------------------------------------------------------ quantize
    qmodel = quantize_model(model, split.calibration.images)
    print(qmodel.summary())

    # ------------------------------------------------------------------ approximate (stage graph)
    store = ArtifactStore()  # pass a directory to persist across processes

    def build_experiment(dse_config: DSEConfig) -> Experiment:
        return Experiment.from_quantized(
            qmodel,
            split.calibration.images,
            split.test.images[:256],
            split.test.labels[:256],
            board=STM32U575,
            dse_config=dse_config,
            store=store,
        )

    result = build_experiment(DSEConfig(tau_values=[0.0, 0.005, 0.02, 0.07])).run()
    print(f"\nfirst run executed stages: {result.executed_stages}")

    # A finer sweep: unpack/calibrate/significance are served from the store,
    # only the DSE stage re-runs.
    result = build_experiment(
        DSEConfig(tau_values=[0.0, 0.002, 0.005, 0.01, 0.02, 0.04, 0.07, 0.1])
    ).run()
    print(f"finer sweep executed: {result.executed_stages}, cached: {result.cached_stages}")

    print("\nPareto front (conv-MAC reduction, accuracy):")
    for point in result.pareto_points():
        print(f"  reduction={point.conv_mac_reduction:5.1%}  accuracy={point.accuracy:.3f}  "
              f"taus={point.config.taus()}")

    design = result.select(max_accuracy_loss=0.02)
    print(f"\nselected design within 2% accuracy loss: {design.config.taus()} "
          f"({design.conv_mac_reduction:.1%} conv-MAC reduction)")

    # ------------------------------------------------------------------ deploy & compare
    engines = [
        ("cmsis-nn", CMSISNNEngine(qmodel)),
        ("x-cube-ai", XCubeAIEngine(qmodel)),
        ("ataman", AtamanEngine(qmodel, config=design.config,
                                significance=result["significance"],
                                unpacked=result["unpacked"])),
    ]
    rows = []
    for label, engine in engines:
        report = deploy(engine, STM32U575, split.test.images[:256], split.test.labels[:256],
                        model_name=qmodel.name)
        rows.append({
            "engine": label,
            "accuracy (%)": report.top1_accuracy * 100,
            "latency (ms)": report.latency_ms,
            "flash (KB)": report.flash_kb,
            "RAM (KB)": report.ram_kb,
            "MACs": report.mac_ops,
            "energy (mJ)": report.energy_mj,
        })
    print()
    print(format_table(rows, title=f"Deployment comparison on {STM32U575.name}"))


if __name__ == "__main__":
    main()
