#!/usr/bin/env python
"""Show the layer-based code unpacking and approximate code generation.

Builds a small quantized CNN, unpacks its first convolution into fixed-weight
SMLAD code (Section II-B of the paper), computes operand significances from a
calibration set, applies computation skipping at a chosen threshold and prints
the generated exact and approximate kernel code side by side, together with
the flash footprint of each variant.

Run:  python examples/generate_kernel_code.py [--tau 0.02]
"""

from __future__ import annotations

import argparse


from repro.core import (
    ActivationCalibrator,
    build_skip_mask,
    compute_significance,
    generate_layer_code,
    unpack_model,
)
from repro.data import load_synthetic_cifar10, train_val_test_split
from repro.kernels import pack_weight_pair
from repro.models import build_tiny_cnn
from repro.nn import Adam, Trainer
from repro.quant import quantize_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tau", type=float, default=0.02, help="significance skip threshold")
    args = parser.parse_args()

    # The paper's SMLAD hard-wiring example: w1=64, w2=20 -> 4194324.
    print(f"SMLAD packing example from the paper: pack(64, 20) = {pack_weight_pair(64, 20)}\n")

    dataset = load_synthetic_cifar10(n_samples=600, seed=11)
    split = train_val_test_split(dataset, test_fraction=0.25, calibration_size=64, rng=0)
    model = build_tiny_cnn(input_shape=split.train.image_shape, rng=1)
    trainer = Trainer(model, Adam(model.parameters(), lr=2e-3), rng=3)
    trainer.fit(split.train.images, split.train.labels, epochs=3, batch_size=32)
    qmodel = quantize_model(model, split.calibration.images)

    unpacked = unpack_model(qmodel)
    calibration = ActivationCalibrator(qmodel).calibrate(split.calibration.images)
    significance = compute_significance(qmodel, calibration)

    layer_name = next(iter(unpacked))
    layer = unpacked[layer_name]
    sig = significance[layer_name]
    mask = build_skip_mask(sig, tau=args.tau)

    print(f"layer {layer_name}: {layer.out_channels} output channels x {layer.operands_per_channel} operands")
    print(f"exact unpacked code size:       {layer.code_bytes():6d} bytes")
    print(f"approximate (tau={args.tau:g}) size: {layer.code_bytes(mask):6d} bytes "
          f"({1 - mask.mean():.1%} of operands skipped)\n")

    print("--- exact unpacked kernel (first 2 output channels) ---")
    print(generate_layer_code(layer, max_channels=2))
    print("\n--- approximate unpacked kernel (first 2 output channels) ---")
    print(generate_layer_code(layer, mask, max_channels=2))


if __name__ == "__main__":
    main()
