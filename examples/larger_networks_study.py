#!/usr/bin/env python
"""Contribution-3 study: run a larger approximate CNN instead of a smaller exact one.

The paper's third contribution argues that approximate computing lets MCUs run
*larger* networks at the latency of smaller exact ones.  This example

1. deploys the exact CMSIS-NN LeNet and AlexNet baselines,
2. deploys approximate AlexNet designs at 0%/5% accuracy-loss budgets, and
3. additionally runs the greedy per-layer threshold search
   (:func:`repro.core.greedy_per_layer_search`) to show how heterogeneous
   per-layer thresholds compare with the paper's uniform-threshold DSE.

Run:  python examples/larger_networks_study.py [--scale ci|fast|full]
"""

from __future__ import annotations

import argparse

from repro.core import greedy_per_layer_search
from repro.evaluation import (
    ExperimentContext,
    build_larger_network_comparison,
    format_larger_network_comparison,
)
from repro.evaluation.reports import format_table
from repro.frameworks import AtamanEngine
from repro.mcu import deploy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("ci", "fast", "full"), default=None)
    parser.add_argument("--loss", type=float, default=0.05, help="budget for the greedy search")
    args = parser.parse_args()

    context = ExperimentContext(scale=args.scale)

    # Part 1: exact small model vs approximate large model (E8).
    rows = build_larger_network_comparison(context)
    print(format_larger_network_comparison(rows))
    print()

    # Part 2: greedy per-layer thresholds on the large model.
    artifacts = context.build_model("alexnet")
    eval_images, eval_labels = context.eval_set()
    greedy = greedy_per_layer_search(
        artifacts.qmodel,
        artifacts.result.significance,
        eval_images[:192],
        eval_labels[:192],
        max_accuracy_loss=args.loss,
        max_steps=24,
    )
    uniform = artifacts.result.dse.best_within_loss(args.loss)
    comparison = [
        {
            "strategy": "uniform tau (paper DSE)",
            "conv-MAC reduction": uniform.conv_mac_reduction if uniform else 0.0,
            "accuracy": uniform.accuracy if uniform else float("nan"),
            "taus": str(uniform.config.taus()) if uniform else "-",
        },
        {
            "strategy": "greedy per-layer tau",
            "conv-MAC reduction": greedy.conv_mac_reduction,
            "accuracy": greedy.accuracy,
            "taus": str(greedy.config.taus()),
        },
    ]
    print(format_table(comparison, title=f"AlexNet skipping strategies at {args.loss:.0%} loss budget"))

    engine = AtamanEngine(
        artifacts.qmodel,
        config=greedy.config,
        significance=artifacts.result.significance,
        unpacked=artifacts.result.unpacked,
    )
    report = deploy(engine, context.board, eval_images, eval_labels, model_name="alexnet-greedy")
    print(
        f"\ngreedy design deployed: {report.latency_ms:.1f} ms, "
        f"{report.mac_ops / 1e6:.1f} M MACs, {report.flash_kb:.0f} KB flash, "
        f"accuracy {report.top1_accuracy:.1%}"
    )


if __name__ == "__main__":
    main()
