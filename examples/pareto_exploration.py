#!/usr/bin/env python
"""Figure-2-style Pareto exploration on the paper's LeNet model.

Trains the LeNet variant on the synthetic CIFAR-10 surrogate, runs the
significance-aware computation-skipping DSE over a range of thresholds and
layer subsets, and renders the resulting accuracy / MAC-reduction Pareto space
as an ASCII scatter plot (the offline analogue of the paper's Fig. 2b).

Run:  python examples/pareto_exploration.py [--model lenet|alexnet] [--scale ci|fast|full]
"""

from __future__ import annotations

import argparse

from repro.evaluation import ExperimentContext, build_figure2, format_figure2
from repro.evaluation.reports import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", choices=("lenet", "alexnet"), default="lenet")
    parser.add_argument("--scale", choices=("ci", "fast", "full"), default=None,
                        help="experiment scale (default: REPRO_SCALE or 'fast')")
    parser.add_argument("--no-cache", action="store_true", help="disable the on-disk artefact cache")
    args = parser.parse_args()

    context = ExperimentContext(scale=args.scale, cache_dir=None if args.no_cache else None or None)
    if args.no_cache:
        context = ExperimentContext(scale=args.scale, cache_dir=None)

    figure = build_figure2(context, model_names=(args.model,))
    print(format_figure2(figure))

    artifacts = context.build_model(args.model)
    rows = []
    for loss in (0.0, 0.05, 0.10):
        design = artifacts.result.dse.best_within_loss(loss)
        if design is None:
            continue
        rows.append({
            "loss budget": f"{loss:.0%}",
            "accuracy": design.accuracy,
            "conv-MAC reduction": design.conv_mac_reduction,
            "retained operands": design.retained_operand_fraction,
            "taus": str(design.config.taus()),
        })
    print()
    print(format_table(rows, title=f"Selected {args.model} designs per accuracy-loss budget"))


if __name__ == "__main__":
    main()
