#!/usr/bin/env python
"""Compare inference frameworks on one model (Table-II style).

Deploys the exact CMSIS-NN baseline, the X-CUBE-AI and uTVM stand-ins, the
CMix-NN stand-in and the proposed ATAMAN engine (at 0/5/10% accuracy-loss
budgets) on the STM32U575 board model, reporting latency, flash, RAM, MACs,
energy and Top-1 accuracy for each.

Run:  python examples/compare_frameworks.py [--model lenet|alexnet] [--scale ci|fast|full]
"""

from __future__ import annotations

import argparse

from repro.evaluation import ExperimentContext
from repro.evaluation.reports import format_table
from repro.frameworks import AtamanEngine, CMSISNNEngine, CMixNNEngine, MicroTVMEngine, XCubeAIEngine
from repro.mcu import deploy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", choices=("lenet", "alexnet"), default="lenet")
    parser.add_argument("--scale", choices=("ci", "fast", "full"), default=None)
    args = parser.parse_args()

    context = ExperimentContext(scale=args.scale)
    artifacts = context.build_model(args.model)
    qmodel = artifacts.qmodel
    eval_images, eval_labels = context.eval_set()

    engines = [
        ("cmsis-nn (exact)", CMSISNNEngine(qmodel)),
        ("x-cube-ai (exact)", XCubeAIEngine(qmodel)),
        ("utvm (exact)", MicroTVMEngine(qmodel)),
        ("cmix-nn (exact)", CMixNNEngine(qmodel)),
    ]
    for loss in (0.0, 0.05, 0.10):
        design = artifacts.result.dse.best_within_loss(loss)
        if design is None:
            continue
        engines.append(
            (
                f"ataman @{loss:.0%} loss",
                AtamanEngine(
                    qmodel,
                    config=design.config,
                    significance=artifacts.result.significance,
                    unpacked=artifacts.result.unpacked,
                ),
            )
        )

    rows = []
    for label, engine in engines:
        report = deploy(engine, context.board, eval_images, eval_labels, model_name=args.model)
        rows.append(
            {
                "engine": label,
                "accuracy (%)": report.top1_accuracy * 100,
                "latency (ms)": report.latency_ms,
                "flash (KB)": report.flash_kb,
                "RAM (KB)": report.ram_kb,
                "MACs": report.mac_ops,
                "energy (mJ)": report.energy_mj,
                "fits": report.fits,
            }
        )
    print(format_table(rows, title=f"{args.model} on {context.board.name}"))


if __name__ == "__main__":
    main()
