#!/usr/bin/env python3
"""Check internal markdown links (the CI docs job's link gate).

Scans the repo's markdown surface -- README.md, ROADMAP.md, CHANGES.md and
everything under docs/ -- for inline links and images, and fails on any
*internal* target that does not resolve:

* relative file links (``docs/ARCHITECTURE.md``, ``../README.md``) must
  point at an existing file or directory;
* anchor links (``#request-lifecycle`` or ``FILE.md#section``) must match a
  heading in the target document (GitHub-style slugs);
* external links (``http(s)://``, ``mailto:``) are skipped -- CI should not
  fail on someone else's outage.

Stdlib only; exit status 0 when every link resolves, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Top-level documents checked in addition to everything under ``docs/``.
TOP_LEVEL = ("README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md")

#: Inline links/images ``[text](target)`` -- reference-style links are not
#: used in this repo.  The target group stops at the first unbalanced ``)``.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    """All anchor slugs a markdown file exposes (headings outside code fences)."""
    slugs: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slug = github_slug(match.group(1))
            # GitHub dedupes repeated headings with -1, -2, ... suffixes.
            count = slugs.get(slug, 0)
            slugs[slug] = count + 1
            if count:
                slugs[f"{slug}-{count}"] = 1
    return set(slugs)


def iter_links(path: Path):
    """Yield (line_number, target) for every inline link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> list:
    """Return a list of ``(lineno, target, reason)`` problems for one document."""
    problems = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        resolved = path if not base else (path.parent / base).resolve()
        if not resolved.exists():
            problems.append((lineno, target, "missing file"))
            continue
        if anchor:
            if resolved.is_dir() or resolved.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown targets are not checked
            if anchor.lower() not in heading_slugs(resolved):
                problems.append((lineno, target, f"no heading for #{anchor}"))
    return problems


def main() -> int:
    """Check every tracked document; print a report; return the exit status."""
    documents = [REPO / name for name in TOP_LEVEL if (REPO / name).exists()]
    documents += sorted((REPO / "docs").rglob("*.md")) if (REPO / "docs").is_dir() else []
    failures = 0
    for document in documents:
        problems = check_file(document)
        for lineno, target, reason in problems:
            print(f"{document.relative_to(REPO)}:{lineno}: broken link '{target}' ({reason})")
        failures += len(problems)
    checked = len(documents)
    if failures:
        print(f"{failures} broken internal link(s) across {checked} document(s).")
        return 1
    print(f"all internal links resolve across {checked} document(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
