"""Tests for the ISA virtual machine: IR, lowering, execution, verification.

The load-bearing property is differential correctness: the VM executes the
*generated* instruction stream and must be bit-identical to the simulation
kernels under every mask -- on the tiny CNN and on the paper's LeNet, across
exact, moderate and aggressive skip configurations, in both execution modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ActivationCalibrator,
    ApproxConfig,
    build_skip_mask,
    compute_significance,
    plan_layer,
    unpack_model,
)
from repro.isa.trace import trace_unpacked_conv
from repro.models import build_lenet
from repro.quant import quantize_model
from repro.registry import ENGINES
from repro.vm import (
    Opcode,
    OpKind,
    VirtualMachine,
    VMEngine,
    VMInterpEngine,
    calibrate_cycle_model,
    execute_op_interp,
    execute_op_turbo,
    hybrid_cycles_per_sample,
    lower_layer,
    lower_model,
    lower_op_layer,
    remask_program,
    traced_cycles_per_sample,
    uniform_tau_configs,
    verify_designs,
    verify_dse,
)
from repro.workflow import CalibrateStage, Experiment, SignificanceStage, UnpackStage, VerifyStage

#: The acceptance sweep: exact plus moderate and aggressive uniform designs.
SWEEP_TAUS = [0.01, 0.05, 0.2]


@pytest.fixture(scope="module")
def lenet_setup(small_split):
    """An (untrained) quantized LeNet + pipeline artifacts on 32x32 inputs.

    Training is irrelevant for bit-identity; random weights exercise the
    same instruction streams at a fraction of the fixture cost.
    """
    rng = np.random.default_rng(11)
    images = rng.random((48, 32, 32, 3)).astype(np.float32)
    model = build_lenet(input_shape=(32, 32, 3), n_classes=10, rng=5)
    model.eval()
    qmodel = quantize_model(model, images[:32], name="lenet")
    unpacked = unpack_model(qmodel)
    calibration = ActivationCalibrator(qmodel).calibrate(images[:32])
    significance = compute_significance(qmodel, calibration)
    return qmodel, unpacked, significance, images


class TestLowering:
    def test_ir_matches_plan(self, tiny_qmodel, tiny_unpacked):
        name, layer = next(iter(tiny_unpacked.items()))
        program = lower_layer(tiny_qmodel.get_layer(name), layer)
        plan = plan_layer(layer)
        smlads = [i for i in program.instructions if i.op is Opcode.SMLAD]
        mlas = [i for i in program.instructions if i.op is Opcode.MLA]
        assert len(smlads) == sum(len(ch.pairs) for ch in plan.channels)
        assert len(mlas) == sum(1 for ch in plan.channels if ch.odd is not None)
        # Every channel carries the INIT/REQUANT/CLAMP/STORE epilogue.
        for op in (Opcode.INIT, Opcode.REQUANT, Opcode.CLAMP, Opcode.STORE):
            assert sum(1 for i in program.instructions if i.op is op) == layer.out_channels

    def test_ir_operands_mirror_c_text(self, tiny_unpacked):
        """The SMLAD operand pairs of the IR are the pairs the C text emits."""
        layer = next(iter(tiny_unpacked.values()))
        plan = plan_layer(layer)
        first = plan.channels[0]
        assert first.pairs[0][0] == 0 and first.pairs[0][1] == 1  # exact: adjacent operands

    def test_masked_lowering_skips_operands(self, tiny_qmodel, tiny_unpacked, tiny_significance):
        name, layer = next(iter(tiny_unpacked.items()))
        mask = build_skip_mask(tiny_significance[name], 0.05)
        exact = lower_layer(tiny_qmodel.get_layer(name), layer)
        masked = lower_layer(tiny_qmodel.get_layer(name), layer, mask)
        assert masked.retained_operands == int(mask.sum())
        assert masked.instructions_per_position < exact.instructions_per_position
        # Skipped operands are zero in the fused weight matrix.
        assert np.all(masked.dense_weights[~np.asarray(mask, dtype=bool)] == 0)

    def test_trace_counts_match_isa_trace_model(self, tiny_qmodel, tiny_unpacked):
        """The lowered opcode counts equal trace_unpacked_conv's first-principles model."""
        program = lower_model(tiny_qmodel, tiny_unpacked)
        for name, layer in tiny_unpacked.items():
            reference = trace_unpacked_conv(layer.weights, 1, name=name)
            assert +program[name].opcode_counts() == +reference.opcode_counts
            assert program[name].code_bytes() == reference.code_bytes

    def test_init_acc_folds_input_offset(self, tiny_qmodel, tiny_unpacked):
        name, layer = next(iter(tiny_unpacked.items()))
        qlayer = tiny_qmodel.get_layer(name)
        program = lower_layer(qlayer, layer)
        zp = qlayer.input_params.scalar_zero_point()
        expected = qlayer.bias - zp * layer.weights.astype(np.int64).sum(axis=1)
        np.testing.assert_array_equal(program.init_acc, expected)


class TestOpLowering:
    """Lowering of the library-style ops: pooling, ReLU, flatten."""

    def test_max_pool_instruction_structure(self, tiny_qmodel):
        from repro.quant.qlayers import QMaxPool2D

        pool = next(l for l in tiny_qmodel.layers if isinstance(l, QMaxPool2D))
        shape = tiny_qmodel.layer_input_shapes()[pool.name]
        program = lower_op_layer(pool, shape)
        channels, window = shape[-1], pool.kernel[0] * pool.kernel[1]
        assert program.kind is OpKind.MAX_POOL
        # Per channel: first-element load, window-1 compare/selects, store.
        ops = [i.op for i in program.instructions]
        assert ops.count(Opcode.PLOAD) == channels
        assert ops.count(Opcode.PMAX) == channels * (window - 1)
        assert ops.count(Opcode.STORE) == channels
        assert program.instructions_per_position == channels * (window + 1)
        # The comparison count mirrors the analytic kernel stats model
        # (the spatial loop adds its own bookkeeping CMP on top).
        counts = program.opcode_counts(include_loop_overhead=False)
        assert counts["CMP"] == channels * (window - 1)
        assert program.code_bytes() > 0

    def test_flatten_is_free(self, tiny_qmodel):
        from repro.quant.qlayers import QFlatten

        flatten = next(l for l in tiny_qmodel.layers if isinstance(l, QFlatten))
        shape = tiny_qmodel.layer_input_shapes()[flatten.name]
        program = lower_op_layer(flatten, shape)
        assert program.kind is OpKind.FLATTEN
        assert program.instructions == ()
        assert program.code_bytes() == 0
        assert program.cycles_per_sample(shape) == 0.0

    def test_relu_program_matches_kernel(self, tiny_qmodel, rng):
        """A standalone QReLU lowers and executes bit-identically to relu_s8."""
        from repro.kernels.activations_s8 import relu_s8
        from repro.quant.qlayers import QReLU

        params = tiny_qmodel.layers[0].input_params
        relu = QReLU("relu_standalone", params)
        x = rng.integers(-128, 128, size=(5, 6, 6, 7), dtype=np.int8)
        program = lower_op_layer(relu, (6, 6, 7))
        reference = relu_s8(x, params.scalar_zero_point())
        np.testing.assert_array_equal(execute_op_interp(program, x), reference)
        np.testing.assert_array_equal(execute_op_turbo(program, x), reference)
        assert program.instructions_per_position == 2 * 7  # RELU + STORE per channel

    def test_avg_pool_program_matches_kernel(self, tiny_qmodel, rng):
        from repro.kernels.pooling_s8 import avg_pool_s8
        from repro.quant.qlayers import QAvgPool2D

        params = tiny_qmodel.layers[0].input_params
        pool = QAvgPool2D("avg_standalone", params, kernel=(2, 2), stride=(2, 2))
        x = rng.integers(-128, 128, size=(4, 8, 8, 5), dtype=np.int8)
        program = lower_op_layer(pool, (8, 8, 5))
        assert program.kind is OpKind.AVG_POOL
        reference = avg_pool_s8(x, (2, 2), (2, 2))
        np.testing.assert_array_equal(execute_op_interp(program, x), reference)
        np.testing.assert_array_equal(execute_op_turbo(program, x), reference)

    def test_max_pool_program_matches_kernel(self, tiny_qmodel, rng):
        from repro.kernels.pooling_s8 import max_pool_s8
        from repro.quant.qlayers import QMaxPool2D

        pool = next(l for l in tiny_qmodel.layers if isinstance(l, QMaxPool2D))
        shape = tiny_qmodel.layer_input_shapes()[pool.name]
        program = lower_op_layer(pool, shape)
        x = rng.integers(-128, 128, size=(6, *shape), dtype=np.int8)
        reference = max_pool_s8(x, pool.kernel, pool.stride)
        np.testing.assert_array_equal(execute_op_interp(program, x), reference)
        np.testing.assert_array_equal(execute_op_turbo(program, x), reference)

    def test_whole_graph_coverage(self, tiny_qmodel, tiny_unpacked):
        program = lower_model(tiny_qmodel, tiny_unpacked)
        assert program.is_total
        assert program.coverage == 1.0
        assert program.unlowered_layers() == ()
        assert len(program) == len(tiny_qmodel.layers)
        # The dense classifier lowers even though `unpacked` excludes it.
        assert "fc1" in program and "fc1" not in tiny_unpacked

    def test_partial_lowering_keeps_fallback(self, tiny_qmodel, tiny_unpacked, small_split):
        """Layers excluded from lowering run through the library kernels."""
        subset = sorted(tiny_unpacked)[:1]
        program = lower_model(tiny_qmodel, tiny_unpacked, layers=subset)
        assert not program.is_total
        assert set(program.programs) == set(subset)
        images = small_split.test.images[:8]
        q_in = tiny_qmodel.quantize_input(images)
        reference = tiny_qmodel.forward_quantized(q_in)
        for mode in ("interp", "turbo"):
            machine = VirtualMachine(tiny_qmodel, program=program, mode=mode)
            np.testing.assert_array_equal(machine.forward_quantized(q_in), reference)

    def test_remask_shares_unmasked_programs(self, tiny_qmodel, tiny_unpacked,
                                             tiny_significance):
        config = ApproxConfig.uniform(tiny_qmodel.name, sorted(tiny_unpacked), 0.05)
        masks = config.build_masks(tiny_significance, unpacked=tiny_unpacked)
        base = lower_model(tiny_qmodel, tiny_unpacked)
        remasked = remask_program(base, tiny_qmodel, tiny_unpacked, masks)
        direct = lower_model(tiny_qmodel, tiny_unpacked, masks=masks)
        # Masked conv layers are re-lowered; everything else is shared.
        for name in masks:
            assert remasked[name] is not base[name]
            assert remasked[name].retained_operands == direct[name].retained_operands
        for layer in tiny_qmodel.layers:
            if layer.name not in masks:
                assert remasked[layer.name] is base[layer.name]
        # And the re-masked program is the program a direct lowering builds.
        assert remasked.code_bytes() == direct.code_bytes()
        # No-mask remask is the identity.
        assert remask_program(base, tiny_qmodel, tiny_unpacked, None) is base


class TestExecution:
    @pytest.mark.parametrize("mode", ["interp", "turbo"])
    def test_exact_bit_identical_tiny(self, tiny_qmodel, small_split, mode):
        images = small_split.test.images[:16]
        q_in = tiny_qmodel.quantize_input(images)
        machine = VirtualMachine(tiny_qmodel, mode=mode)
        np.testing.assert_array_equal(
            machine.forward_quantized(q_in), tiny_qmodel.forward_quantized(q_in)
        )

    @pytest.mark.parametrize("tau", SWEEP_TAUS)
    def test_masked_bit_identical_tiny(self, tiny_qmodel, tiny_unpacked, tiny_significance,
                                       small_split, tau):
        config = ApproxConfig.uniform(tiny_qmodel.name, sorted(tiny_unpacked), tau)
        masks = config.build_masks(tiny_significance, unpacked=tiny_unpacked)
        images = small_split.test.images[:16]
        q_in = tiny_qmodel.quantize_input(images)
        reference = tiny_qmodel.forward_quantized(q_in, masks=masks)
        for mode in ("interp", "turbo"):
            machine = VirtualMachine(tiny_qmodel, masks=masks, mode=mode)
            np.testing.assert_array_equal(machine.forward_quantized(q_in), reference)

    def test_lenet_sweep_bit_identical(self, lenet_setup):
        """Acceptance: LeNet through exact + moderate + aggressive designs."""
        qmodel, unpacked, significance, images = lenet_setup
        configs = uniform_tau_configs(qmodel, unpacked, SWEEP_TAUS)
        assert len(configs) == 4  # exact + 3 skip configurations
        report = verify_designs(
            qmodel, configs, images[:8], significance=significance, unpacked=unpacked
        )
        assert report.all_match
        # The sweep covers genuinely different aggressiveness levels.
        retained = [d.retained_fraction for d in report.designs]
        assert retained[0] == 1.0 and retained[-1] < 0.7

    def test_all_skipped_layer_executes(self, tiny_qmodel, tiny_unpacked, small_split):
        """A fully skipped conv degenerates to requantized bias -- still bit-identical."""
        name, layer = next(iter(tiny_unpacked.items()))
        masks = {name: np.zeros_like(layer.weights, dtype=bool)}
        images = small_split.test.images[:8]
        q_in = tiny_qmodel.quantize_input(images)
        reference = tiny_qmodel.forward_quantized(q_in, masks=masks)
        for mode in ("interp", "turbo"):
            machine = VirtualMachine(tiny_qmodel, masks=masks, mode=mode)
            np.testing.assert_array_equal(machine.forward_quantized(q_in), reference)

    def test_predict_classes_matches_kernel_path(self, tiny_qmodel, small_split):
        images = small_split.test.images[:32]
        machine = VirtualMachine(tiny_qmodel, mode="turbo")
        np.testing.assert_array_equal(
            machine.predict_classes(images), tiny_qmodel.predict_classes(images)
        )

    def test_trace_records_every_model_layer(self, tiny_qmodel, tiny_unpacked):
        """Whole-model lowering: the trace covers the entire graph, not just convs."""
        machine = VirtualMachine(tiny_qmodel, mode="interp")
        trace = machine.trace()
        assert set(trace.layers) == {layer.name for layer in tiny_qmodel.layers}
        assert set(tiny_unpacked) < set(trace.layers)
        assert trace.total_cycles > 0
        for name in trace.layers:
            record = trace.layers[name]
            assert record.instructions_executed == (
                machine.program[name].instructions_per_position * record.spatial_positions
            )
        by_class = trace.cycles_by_op_class()
        assert by_class["conv"] > by_class["max_pool"] > 0
        assert by_class["flatten"] == 0.0
        assert by_class["dense"] > 0

    def test_unknown_mode_rejected(self, tiny_qmodel):
        with pytest.raises(ValueError):
            VirtualMachine(tiny_qmodel, mode="warp")


class TestCalibration:
    def test_report_covers_every_lowered_layer(self, tiny_qmodel, tiny_unpacked):
        program = lower_model(tiny_qmodel, tiny_unpacked)
        report = calibrate_cycle_model(tiny_qmodel, program)
        assert {layer.name for layer in report.layers} == {
            layer.name for layer in tiny_qmodel.layers
        }
        assert report.traced_cycles > 0 and report.analytic_lowered_cycles > 0
        # Whole-graph lowering: nothing falls back to the analytic model.
        assert report.is_fully_traced and report.unlowered_layers == ()
        assert report.coverage == pytest.approx(1.0)
        # hybrid = analytic total with the lowered layers' share swapped for traced.
        expected = (
            report.analytic_total_cycles
            - report.analytic_lowered_cycles
            + report.traced_cycles
        )
        assert report.hybrid_total_cycles == pytest.approx(expected)

    def test_per_op_class_breakdown(self, tiny_qmodel, tiny_unpacked):
        program = lower_model(tiny_qmodel, tiny_unpacked)
        report = calibrate_cycle_model(tiny_qmodel, program)
        classes = report.by_op_class()
        assert {"conv", "dense", "max_pool", "flatten"} <= set(classes)
        assert classes["conv"]["traced_cycles"] > classes["max_pool"]["traced_cycles"] > 0
        # Flatten is free on both sides and must not distort any ratio.
        assert classes["flatten"]["traced_cycles"] == 0.0
        assert classes["flatten"]["ratio"] == 1.0
        for entry in classes.values():
            assert entry["layers"] >= 1

    def test_missing_analytic_layer_raises(self, tiny_qmodel, tiny_unpacked, monkeypatch):
        """A lowered layer with traced cycles but no analytic section is an
        error naming the layer, not a silent analytic_cycles=0.0 that
        corrupts the ratio and every override derived from it."""
        import repro.vm.verify as vm_verify

        program = lower_model(tiny_qmodel, tiny_unpacked)
        original = vm_verify.traced_layer_cycles

        def with_ghost(qmodel, prog, *args, **kwargs):
            cycles = original(qmodel, prog, *args, **kwargs)
            cycles["ghost"] = 123.0
            return cycles

        monkeypatch.setattr(vm_verify, "traced_layer_cycles", with_ghost)
        with pytest.raises(ValueError, match="ghost"):
            calibrate_cycle_model(tiny_qmodel, program)

    def test_zero_cost_layer_missing_from_analytic_is_fine(self, tiny_qmodel, tiny_unpacked):
        """Flatten has no analytic section and zero traced cycles: recorded,
        excluded from the ratio, no error."""
        program = lower_model(tiny_qmodel, tiny_unpacked)
        report = calibrate_cycle_model(tiny_qmodel, program)
        flatten = next(layer for layer in report.layers if layer.op_class == "flatten")
        assert flatten.traced_cycles == 0.0 and flatten.analytic_cycles == 0.0
        assert flatten.ratio == 1.0
        assert np.isfinite(report.ratio)

    def test_traced_and_analytic_same_order_of_magnitude(self, tiny_qmodel, tiny_unpacked):
        """The two models must agree to well within 2x (they are calibrated together)."""
        program = lower_model(tiny_qmodel, tiny_unpacked)
        report = calibrate_cycle_model(tiny_qmodel, program)
        assert 0.5 < report.ratio < 2.0

    def test_masks_shrink_traced_cycles(self, tiny_qmodel, tiny_unpacked, tiny_significance):
        config = ApproxConfig.uniform(tiny_qmodel.name, sorted(tiny_unpacked), 0.1)
        masks = config.build_masks(tiny_significance, unpacked=tiny_unpacked)
        exact = hybrid_cycles_per_sample(tiny_qmodel, tiny_unpacked, None)
        approx = hybrid_cycles_per_sample(tiny_qmodel, tiny_unpacked, masks)
        assert approx < exact


class TestWholeModelTrace:
    """Whole-model traced costing and the calibration round trip."""

    def test_hybrid_equals_trace_when_all_lowered(self, tiny_qmodel, tiny_unpacked):
        """With total coverage the hybrid figure IS the execution trace."""
        program = lower_model(tiny_qmodel, tiny_unpacked)
        assert program.is_total
        machine = VirtualMachine(tiny_qmodel, program=program, mode="turbo")
        trace = machine.trace()
        hybrid = hybrid_cycles_per_sample(tiny_qmodel, tiny_unpacked, None)
        assert hybrid == pytest.approx(trace.cycles_per_sample())

    def test_partial_program_falls_back_to_hybrid(self, tiny_qmodel, tiny_unpacked):
        subset = sorted(tiny_unpacked)[:1]
        partial = lower_model(tiny_qmodel, tiny_unpacked, layers=subset)
        full = lower_model(tiny_qmodel, tiny_unpacked)
        hybrid = traced_cycles_per_sample(tiny_qmodel, partial)
        pure = traced_cycles_per_sample(tiny_qmodel, full)
        # The hybrid figure carries the analytic remainder (and the fixed
        # per-inference overhead); the pure trace does not.
        assert hybrid != pure
        report = calibrate_cycle_model(tiny_qmodel, partial)
        assert hybrid == pytest.approx(report.hybrid_total_cycles)
        assert not report.is_fully_traced
        assert set(report.unlowered_layers) == {
            layer.name
            for layer in tiny_qmodel.layers
            if layer.name not in subset and layer.name != "flatten"
        }

    @pytest.mark.parametrize("model_fixture", ["tiny", "lenet"])
    def test_calibration_round_trip_within_5pct(self, model_fixture, tiny_qmodel,
                                                tiny_unpacked, lenet_setup):
        """suggested_cost_overrides must bring analytic/traced within +-5%."""
        from repro.isa.cost_model import (
            ExecutionStyle,
            apply_cost_calibration,
            clear_cost_param_overrides,
        )

        if model_fixture == "tiny":
            qmodel, unpacked = tiny_qmodel, tiny_unpacked
        else:
            qmodel, unpacked = lenet_setup[0], lenet_setup[1]
        program = lower_model(qmodel, unpacked)
        base = calibrate_cycle_model(qmodel, program)
        assert abs(base.ratio - 1.0) > 0.05  # the miscalibration being fixed
        try:
            apply_cost_calibration(base, ExecutionStyle.UNPACKED)
            after = calibrate_cycle_model(qmodel, program)
            assert abs(after.ratio - 1.0) <= 0.05
        finally:
            clear_cost_param_overrides(ExecutionStyle.UNPACKED)

    def test_traced_deployment_lowers_once(self, tiny_qmodel, tiny_unpacked,
                                           tiny_significance, monkeypatch):
        """Building a traced deployment must lower the full model exactly once,
        however many service levels it builds."""
        from repro.serving import Deployment
        from repro.vm import lower as vm_lower

        calls = {"lower_model": 0}
        original = vm_lower.lower_model

        def counting_lower_model(*args, **kwargs):
            calls["lower_model"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(vm_lower, "lower_model", counting_lower_model)
        conv_names = sorted(tiny_unpacked)
        points = [
            {"label": "exact", "taus": {}, "accuracy": 1.0},
            {"label": "mid", "taus": {n: 0.05 for n in conv_names}, "accuracy": 0.9},
            {"label": "aggressive", "taus": {n: 0.2 for n in conv_names}, "accuracy": 0.8},
        ]
        deployment = Deployment.from_points(
            tiny_qmodel, points, tiny_significance, unpacked=tiny_unpacked,
            cycle_source="traced",
        )
        assert len(deployment.levels) == 3
        assert calls["lower_model"] == 1
        # Escalation still sheds cycles under the pure traced costing.
        cycles = [level.cycles_per_sample for level in deployment.levels]
        assert cycles == sorted(cycles, reverse=True)

    def test_verify_stage_calibration_artifact(self, tiny_qmodel, small_split):
        stages = [
            UnpackStage(),
            CalibrateStage(),
            SignificanceStage(),
            VerifyStage(taus=[0.02], n_samples=8, calibrate_cost_model=True),
        ]
        inputs = {
            "qmodel": tiny_qmodel,
            "calibration_images": small_split.calibration.images,
            "eval_images": small_split.test.images,
        }
        result = Experiment(stages, inputs=inputs).run()
        calibration = result["cost_calibration"]
        assert calibration["report"].is_fully_traced
        overrides = calibration["overrides"]
        assert set(overrides) >= {"cycles_per_mac", "cycles_per_output"}
        assert all(value > 0 for value in overrides.values())


class TestVerifyHarness:
    def test_verify_dse_covers_pareto(self, tiny_qmodel, tiny_unpacked, tiny_significance,
                                      tiny_pipeline_result, small_split):
        report = verify_dse(
            tiny_qmodel,
            tiny_pipeline_result.dse,
            small_split.test.images[:8],
            significance=tiny_significance,
            unpacked=tiny_unpacked,
            max_designs=3,
        )
        assert report.all_match
        assert any(not d.taus for d in report.designs)  # exact design included
        assert report.as_dict()["all_match"] is True

    def test_partial_config_counts_exact_layers_as_retained(
        self, tiny_qmodel, tiny_unpacked, tiny_significance, small_split
    ):
        """A design masking only one conv (greedy-DSE shape) must not report
        the untouched layers' operands as skipped."""
        from repro.vm.verify import verify_design

        name = sorted(tiny_unpacked)[0]
        config = ApproxConfig.uniform(tiny_qmodel.name, [name], 0.5)
        verification = verify_design(
            tiny_qmodel, config, small_split.test.images[:4],
            significance=tiny_significance, unpacked=tiny_unpacked,
        )
        assert verification.match
        other_operands = sum(
            layer.total_operands for n, layer in tiny_unpacked.items() if n != name
        )
        total = sum(layer.total_operands for layer in tiny_unpacked.values())
        assert verification.retained_fraction >= other_operands / total

    def test_detects_divergence(self, tiny_qmodel, tiny_unpacked, small_split):
        """Corrupting one hard-wired weight must flip the design to a mismatch."""
        from repro.vm.verify import verify_design

        config = ApproxConfig.exact(tiny_qmodel.name)
        program = lower_model(tiny_qmodel, tiny_unpacked)
        name = next(iter(tiny_unpacked))
        program[name].dense_weights[0, 0] += 64  # corrupt the turbo path
        images = small_split.test.images[:4]
        q_in = tiny_qmodel.quantize_input(images)
        machine = VirtualMachine(tiny_qmodel, program=program, mode="turbo")
        assert not np.array_equal(
            machine.forward_quantized(q_in), tiny_qmodel.forward_quantized(q_in)
        )

    def test_verify_stage_in_graph_and_cached(self, tiny_qmodel, small_split):
        from repro.workflow.artifacts import ArtifactStore

        store = ArtifactStore()
        stages = [
            UnpackStage(),
            CalibrateStage(),
            SignificanceStage(),
            VerifyStage(taus=[0.02], n_samples=8),
        ]
        inputs = {
            "qmodel": tiny_qmodel,
            "calibration_images": small_split.calibration.images,
            "eval_images": small_split.test.images,
        }
        result = Experiment(stages, inputs=inputs, store=store).run()
        report = result["verification"]
        assert report.all_match
        assert "verify" in result.executed_stages
        rerun = Experiment(stages, inputs=inputs, store=store).run()
        assert "verify" in rerun.cached_stages

    def test_verify_stage_config_invalidates_cache(self, tiny_qmodel, small_split):
        a = VerifyStage(taus=[0.02], n_samples=8)
        b = VerifyStage(taus=[0.05], n_samples=8)
        digests = {name: "x" for name in a.requires}
        assert a.signature(digests) != b.signature(digests)


class TestEngines:
    def test_registered(self):
        assert "vm" in ENGINES and "vm-interp" in ENGINES
        assert ENGINES.resolve("vm") is VMEngine
        assert ENGINES.resolve("vm-interp") is VMInterpEngine

    def test_same_predictions_as_ataman(self, tiny_qmodel, tiny_unpacked, tiny_significance,
                                        small_split):
        from repro.frameworks import AtamanEngine

        config = ApproxConfig.uniform(tiny_qmodel.name, sorted(tiny_unpacked), 0.05)
        kwargs = dict(config=config, significance=tiny_significance, unpacked=tiny_unpacked)
        images = small_split.test.images[:16]
        np.testing.assert_array_equal(
            VMEngine(tiny_qmodel, **kwargs).predict_classes(images),
            AtamanEngine(tiny_qmodel, **kwargs).predict_classes(images),
        )

    def test_traced_latency_positive_and_near_analytic(self, tiny_qmodel):
        from repro.frameworks import AtamanEngine
        from repro.isa import STM32U575

        vm_latency = VMEngine(tiny_qmodel).latency_ms(STM32U575)
        analytic = AtamanEngine(tiny_qmodel).latency_ms(STM32U575)
        assert vm_latency > 0
        assert 0.5 < vm_latency / analytic < 2.0

    def test_supports_approx_flags(self):
        from repro.frameworks import AtamanEngine, CMSISNNEngine

        assert AtamanEngine.supports_approx and VMEngine.supports_approx
        assert not CMSISNNEngine.supports_approx


class TestServingIntegration:
    def test_traced_cycle_source_levels(self, tiny_qmodel, tiny_unpacked, tiny_significance,
                                        tiny_pipeline_result):
        from repro.serving import Deployment

        analytic = Deployment.from_dse(
            tiny_qmodel, tiny_pipeline_result.dse, tiny_significance, tiny_unpacked
        )
        traced = Deployment.from_dse(
            tiny_qmodel, tiny_pipeline_result.dse, tiny_significance, tiny_unpacked,
            cycle_source="traced",
        )
        assert all(level.cycles_per_sample > 0 for level in traced.levels)
        # Escalation still sheds cycles under the traced costing.
        cycles = [level.cycles_per_sample for level in traced.levels]
        assert cycles == sorted(cycles, reverse=True)
        # Traced and analytic agree within the calibration band.
        ratio = traced.levels[0].cycles_per_sample / analytic.levels[0].cycles_per_sample
        assert 0.5 < ratio < 2.0

    def test_invalid_cycle_source_rejected(self, tiny_qmodel, tiny_unpacked, tiny_significance,
                                           tiny_pipeline_result):
        from repro.serving import Deployment

        with pytest.raises(ValueError):
            Deployment.from_dse(
                tiny_qmodel, tiny_pipeline_result.dse, tiny_significance, tiny_unpacked,
                cycle_source="measured",
            )


class TestCLI:
    def test_verify_codegen_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["verify-codegen", "--qmodel", "q"])
        assert args.func.__name__ == "cmd_verify_codegen"
        assert args.taus == "0.0,0.01,0.05"
        assert args.modes == "interp,turbo"

    def test_deploy_accepts_vm_engine(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["deploy", "--qmodel", "q", "--engine", "vm"])
        assert args.engine == "vm"

    def test_serve_cycle_source_choice(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--qmodel", "q", "--cycle-source", "traced"])
        assert args.cycle_source == "traced"
