"""Tests for the experiment drivers (report formatting, context, table/figure builders).

The drivers are exercised on a deliberately tiny custom :class:`ScaleConfig`
so the whole file runs in well under a minute while covering the same code
paths the paper-scale benchmarks use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    ExperimentContext,
    ScaleConfig,
    build_claims,
    build_figure2,
    build_table1,
    build_table2,
    format_claims,
    format_figure2,
    format_table,
    format_table1,
    format_table2,
    get_scale,
)
from repro.evaluation.context import ModelScale
from repro.evaluation.figure2 import _ascii_scatter
from repro.evaluation.reports import format_comparison


class TestReports:
    def test_format_table_alignment_and_values(self):
        rows = [
            {"name": "a", "value": 1.2345, "count": 10},
            {"name": "bb", "value": 1234.5, "count": 2_000_000},
        ]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "name" in text and "value" in text
        assert "2,000,000" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="x")

    def test_format_table_nan(self):
        text = format_table([{"v": float("nan")}])
        assert "n/a" in text

    def test_format_comparison(self):
        text = format_comparison({"m": 1.0}, {"m": 0.9}, title="cmp")
        assert "cmp" in text and "paper" in text and "measured" in text

    def test_format_table_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestScales:
    def test_get_scale_known_and_env(self, monkeypatch):
        assert get_scale("ci").name == "ci"
        monkeypatch.setenv("REPRO_SCALE", "fast")
        assert get_scale().name == "fast"
        with pytest.raises(ValueError):
            get_scale("gigantic")

    def test_all_scales_define_both_models(self):
        for name in ("ci", "fast", "full"):
            scale = get_scale(name)
            assert {"lenet", "alexnet"} <= set(scale.models)
            for model_scale in scale.models.values():
                assert model_scale.train_samples > 0
                assert len(list(model_scale.tau_values)) >= 3


@pytest.fixture(scope="module")
def micro_context(tmp_path_factory):
    """An ExperimentContext with an ultra-small custom scale (seconds, not minutes)."""
    scale = ScaleConfig(
        name="micro",
        n_samples=360,
        test_fraction=0.25,
        calibration_size=48,
        table_eval_samples=64,
        models={
            "lenet": ModelScale(0.25, 240, 2, 32, 2e-3, [0.0, 0.005, 0.03], 64),
            "alexnet": ModelScale(0.2, 200, 1, 32, 2e-3, [0.0, 0.01], 48),
        },
    )
    cache_dir = tmp_path_factory.mktemp("repro_cache")
    return ExperimentContext(scale=scale, cache_dir=cache_dir, seed=5)


class TestExperimentContext:
    def test_split_and_eval_set(self, micro_context):
        split = micro_context.split
        assert len(split.train) + len(split.test) == 360
        images, labels = micro_context.eval_set(32)
        assert images.shape[0] == 32 and labels.shape[0] == 32

    def test_build_model_artifacts(self, micro_context):
        artifacts = micro_context.build_model("lenet")
        assert artifacts.qmodel.total_macs() > 0
        assert 0.0 <= artifacts.quant_accuracy <= 1.0
        assert len(artifacts.result.dse.points) >= 3

    def test_cache_roundtrip(self, micro_context):
        first = micro_context.build_model("lenet")
        # A fresh context pointed at the same cache directory loads instead of retraining.
        clone = ExperimentContext(scale=micro_context.scale, cache_dir=micro_context.cache_dir, seed=5)
        loaded = clone.build_model("lenet")
        assert loaded.quant_accuracy == pytest.approx(first.quant_accuracy)
        np.testing.assert_array_equal(
            loaded.qmodel.conv_layers()[0].weights, first.qmodel.conv_layers()[0].weights
        )

    def test_unknown_model_rejected(self, micro_context):
        with pytest.raises(ValueError):
            micro_context.build_model("mobilenet")


class TestDrivers:
    def test_table1(self, micro_context):
        rows = build_table1(micro_context)
        assert {row["CNN"] for row in rows} == {"lenet", "alexnet"}
        text = format_table1(rows)
        assert "Table I" in text and "lenet" in text

    def test_table2(self, micro_context):
        rows = build_table2(micro_context, loss_budgets=(0.0, 0.10))
        engines = {row["Engine"] for row in rows}
        assert {"cmsis-nn", "x-cube-ai"} <= engines
        assert any(e.startswith("ataman@") for e in engines)
        text = format_table2(rows)
        assert "Table II" in text

    def test_figure2(self, micro_context):
        figure = build_figure2(micro_context, model_names=("lenet",))
        assert "lenet" in figure
        data = figure["lenet"]
        assert len(data["points"]) == data["n_designs"]
        text = format_figure2(figure)
        assert "Figure 2" in text and "Pareto" in text

    def test_claims(self, micro_context):
        measured = build_claims(micro_context, model_names=("lenet",))
        assert set(measured) >= {
            "avg_conv_mac_reduction_at_0pct",
            "avg_latency_reduction_at_0pct",
            "utvm_overhead_vs_cmsis",
        }
        assert 0 < measured["utvm_overhead_vs_cmsis"] < 0.5
        text = format_claims(measured)
        assert "paper" in text and "measured" in text

    def test_ascii_scatter_renders(self):
        points = [(0.0, 0.7), (0.3, 0.65), (0.6, 0.4)]
        text = _ascii_scatter(points, points[1:2], baseline_accuracy=0.7, width=30, height=8)
        assert "x" in text and "o" in text
        assert _ascii_scatter([], [], 0.5) == "(no points)"

    def test_larger_network_comparison(self, micro_context):
        from repro.evaluation import (
            build_larger_network_comparison,
            format_larger_network_comparison,
        )

        rows = build_larger_network_comparison(micro_context, loss_budgets=(0.10,))
        designs = [row["design"] for row in rows]
        assert any("lenet (exact" in d for d in designs)
        assert any("alexnet (exact" in d for d in designs)
        assert any("approx" in d for d in designs)
        text = format_larger_network_comparison(rows)
        assert "contribution 3" in text
