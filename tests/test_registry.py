"""Tests for the plugin registries (repro.registry)."""

from __future__ import annotations

import pytest

from repro.registry import (
    BOARDS,
    ENGINES,
    GRANULARITIES,
    SEARCH_STRATEGIES,
    SIGNIFICANCE_METRICS,
    Registry,
    RegistryError,
)


class TestRegistry:
    def test_register_and_resolve_direct(self):
        reg = Registry("widget")
        reg.register("a", object_a := object())
        assert reg.resolve("a") is object_a
        assert "a" in reg
        assert reg.names() == ["a"]

    def test_register_as_decorator(self):
        reg = Registry("widget")

        @reg.register("thing")
        class Thing:
            pass

        assert reg.resolve("thing") is Thing

    def test_resolve_is_case_insensitive(self):
        reg = Registry("widget")
        reg.register("MiXeD", 1)
        assert reg.resolve("mixed") == 1
        assert reg.resolve("MIXED") == 1

    def test_unknown_name_lists_registered(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(RegistryError, match=r"unknown widget 'nope'.*\['a'\]"):
            reg.resolve("nope")

    def test_get_returns_default(self):
        reg = Registry("widget")
        assert reg.get("missing") is None
        assert reg.get("missing", 42) == 42

    def test_duplicate_rejected_unless_override(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(RegistryError):
            reg.register("a", 2)
        reg.register("a", 2, override=True)
        assert reg.resolve("a") == 2

    def test_aliases(self):
        reg = Registry("widget")
        reg.register("canonical", 7, aliases=("alt", "other"))
        assert reg.resolve("alt") == 7
        assert reg.resolve("other") == 7

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.unregister("a")
        assert "a" not in reg


class TestBuiltinRegistries:
    """The built-in components register themselves lazily on first access."""

    def test_search_strategies(self):
        assert {"exhaustive", "greedy", "latency-aware"} <= set(SEARCH_STRATEGIES.names())

    def test_engines(self):
        assert {"ataman", "cmsis-nn", "x-cube-ai", "utvm", "cmix-nn", "tflite-micro",
                "vm", "vm-interp"} == set(ENGINES.names())

    def test_boards(self):
        assert {"stm32u575", "stm32h743", "stm32l4"} <= set(BOARDS.names())

    def test_significance_metrics(self):
        assert {
            "expected_contribution",
            "product_magnitude",
            "weight_magnitude",
            "random",
        } <= set(SIGNIFICANCE_METRICS.names())

    def test_granularities(self):
        assert {"operand", "input_channel", "kernel_position"} <= set(GRANULARITIES.names())

    def test_engine_classes_resolve(self):
        from repro.frameworks import AtamanEngine, CMSISNNEngine

        assert ENGINES.resolve("ataman") is AtamanEngine
        assert ENGINES.resolve("cmsis-nn") is CMSISNNEngine


class TestRegistryIntegration:
    def test_custom_significance_metric_flows_through(self, tiny_qmodel, tiny_calibration):
        import numpy as np

        from repro.core import compute_significance

        @SIGNIFICANCE_METRICS.register("uniform-test")
        def _uniform(weights, mean_inputs, rng):
            return np.full(weights.shape, 1.0 / weights.shape[1])

        try:
            result = compute_significance(tiny_qmodel, tiny_calibration, metric="uniform-test")
            for name in result.layer_names():
                np.testing.assert_allclose(result[name].sum(axis=1), 1.0)
        finally:
            SIGNIFICANCE_METRICS.unregister("uniform-test")

    def test_unknown_strategy_raises(self, tiny_qmodel, tiny_significance, small_split):
        from repro.core import DSEConfig, run_dse

        with pytest.raises(RegistryError, match="search strategy"):
            run_dse(
                tiny_qmodel,
                tiny_significance,
                small_split.test.images[:8],
                small_split.test.labels[:8],
                dse_config=DSEConfig(strategy="simulated-annealing"),
            )

    def test_cli_choices_come_from_registries(self):
        from repro.cli import board_choices, engine_choices, strategy_choices

        assert "ataman" in engine_choices()
        assert {"exhaustive", "greedy", "latency-aware"} <= set(strategy_choices())
        assert "stm32u575" in board_choices()
