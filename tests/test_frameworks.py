"""Tests for the inference engines (CMSIS-NN, X-CUBE-AI, uTVM, CMix-NN, ATAMAN)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_model_masks
from repro.frameworks import (
    AtamanEngine,
    CMSISNNEngine,
    CMixNNEngine,
    MicroTVMEngine,
    XCubeAIEngine,
)
from repro.isa import STM32U575, ExecutionStyle
from repro.mcu import deploy

EXACT_ENGINES = [CMSISNNEngine, XCubeAIEngine, MicroTVMEngine, CMixNNEngine]


class TestExactEngines:
    @pytest.mark.parametrize("engine_cls", EXACT_ENGINES)
    def test_identical_predictions(self, engine_cls, tiny_qmodel, small_split):
        """All exact engines execute the same kernels, so predictions are identical."""
        images = small_split.test.images[:32]
        reference = CMSISNNEngine(tiny_qmodel).predict_classes(images)
        np.testing.assert_array_equal(engine_cls(tiny_qmodel).predict_classes(images), reference)

    @pytest.mark.parametrize("engine_cls", EXACT_ENGINES)
    def test_reject_masks(self, engine_cls, tiny_qmodel):
        with pytest.raises(ValueError):
            engine_cls(tiny_qmodel, masks={"conv1": np.ones((1, 1), bool)})

    @pytest.mark.parametrize("engine_cls", EXACT_ENGINES)
    def test_macs_equal_model_macs(self, engine_cls, tiny_qmodel):
        assert engine_cls(tiny_qmodel).total_macs() == tiny_qmodel.total_macs()

    def test_relative_latency_ordering(self, tiny_qmodel):
        """X-CUBE-AI < CMSIS-NN < uTVM < CMix-NN, as in the paper's comparisons."""
        latencies = {
            cls.engine_name: cls(tiny_qmodel).latency_ms(STM32U575)
            for cls in (XCubeAIEngine, CMSISNNEngine, MicroTVMEngine, CMixNNEngine)
        }
        assert latencies["x-cube-ai"] < latencies["cmsis-nn"] < latencies["utvm"] < latencies["cmix-nn"]

    def test_utvm_overhead_close_to_paper(self, tiny_qmodel):
        """The paper quotes ~13% uTVM overhead versus CMSIS-NN."""
        cmsis = CMSISNNEngine(tiny_qmodel).latency_ms(STM32U575)
        utvm = MicroTVMEngine(tiny_qmodel).latency_ms(STM32U575)
        assert 1.05 < utvm / cmsis < 1.30

    def test_profile_is_cached(self, tiny_qmodel):
        engine = CMSISNNEngine(tiny_qmodel)
        first = engine.profile()
        second = engine.profile()
        assert first is second
        fresh = engine.profile(np.zeros((1,) + tiny_qmodel.input_shape, np.float32))
        assert fresh is not first

    def test_layer_latency_breakdown(self, tiny_qmodel):
        engine = CMSISNNEngine(tiny_qmodel)
        breakdown = engine.layer_latency_ms(STM32U575)
        # Every layer that performs work appears; pure reshapes (flatten) cost nothing.
        assert {layer.name for layer in tiny_qmodel.mac_layers()} <= set(breakdown)
        assert set(breakdown) <= {layer.name for layer in tiny_qmodel.layers}
        assert sum(breakdown.values()) <= engine.latency_ms(STM32U575)

    def test_memory_layouts(self, tiny_qmodel):
        cmsis = CMSISNNEngine(tiny_qmodel).memory_layout(STM32U575)
        xcube = XCubeAIEngine(tiny_qmodel).memory_layout(STM32U575)
        assert cmsis.fits(STM32U575) and xcube.fits(STM32U575)
        # X-CUBE-AI compresses weights, so its flash is smaller (Table II).
        assert xcube.flash.total < cmsis.flash.total
        assert cmsis.ram.im2col_buffer > 0

    def test_base_engine_styles(self):
        assert CMSISNNEngine.style == ExecutionStyle.CMSIS_PACKED
        assert XCubeAIEngine.style == ExecutionStyle.XCUBE_AI
        assert MicroTVMEngine.style == ExecutionStyle.UTVM
        assert CMixNNEngine.style == ExecutionStyle.CMIX_NN
        assert AtamanEngine.style == ExecutionStyle.UNPACKED


class TestAtamanEngine:
    def _masks(self, tiny_qmodel, tiny_significance, tau=0.05):
        return build_model_masks(
            tiny_significance, {name: tau for name in tiny_significance.layer_names()}
        )

    def test_exact_unpacked_predictions_match_cmsis(self, tiny_qmodel, small_split):
        images = small_split.test.images[:32]
        ataman = AtamanEngine(tiny_qmodel)
        cmsis = CMSISNNEngine(tiny_qmodel)
        np.testing.assert_array_equal(ataman.predict_classes(images), cmsis.predict_classes(images))

    def test_masked_engine_reduces_macs_and_latency(self, tiny_qmodel, tiny_significance):
        masks = self._masks(tiny_qmodel, tiny_significance)
        exact = AtamanEngine(tiny_qmodel)
        approx = AtamanEngine(tiny_qmodel, masks=masks)
        assert approx.total_macs() < exact.total_macs()
        assert approx.latency_ms(STM32U575) < exact.latency_ms(STM32U575)
        assert approx.skipped_operand_fraction() > 0
        assert exact.skipped_operand_fraction() == 0.0

    def test_engine_from_config(self, tiny_qmodel, tiny_significance, tiny_unpacked):
        from repro.core import ApproxConfig

        config = ApproxConfig.uniform(
            tiny_qmodel.name, tiny_significance.layer_names(), tau=0.05
        )
        engine = AtamanEngine(
            tiny_qmodel, config=config, significance=tiny_significance, unpacked=tiny_unpacked
        )
        masks = self._masks(tiny_qmodel, tiny_significance)
        assert engine.total_macs() == tiny_qmodel.total_macs(masks=masks)

    def test_engine_from_config_requires_significance(self, tiny_qmodel):
        from repro.core import ApproxConfig

        config = ApproxConfig.uniform(tiny_qmodel.name, ["conv1"], tau=0.05)
        with pytest.raises(ValueError):
            AtamanEngine(tiny_qmodel, config=config)

    def test_exact_config_builds_exact_engine(self, tiny_qmodel):
        from repro.core import ApproxConfig

        engine = AtamanEngine(tiny_qmodel, config=ApproxConfig.exact(tiny_qmodel.name))
        assert engine.masks is None

    def test_memory_layout_moves_conv_weights_into_code(self, tiny_qmodel):
        ataman_layout = AtamanEngine(tiny_qmodel).memory_layout(STM32U575)
        cmsis_layout = CMSISNNEngine(tiny_qmodel).memory_layout(STM32U575)
        assert ataman_layout.flash.unpacked_code > 0
        assert ataman_layout.flash.weights < cmsis_layout.flash.weights
        assert ataman_layout.ram.im2col_buffer == 0

    def test_masks_shrink_unpacked_code(self, tiny_qmodel, tiny_significance):
        masks = self._masks(tiny_qmodel, tiny_significance)
        assert (
            AtamanEngine(tiny_qmodel, masks=masks).unpacked_code_bytes()
            < AtamanEngine(tiny_qmodel).unpacked_code_bytes()
        )

    def test_deployment_report(self, tiny_qmodel, tiny_significance, small_split):
        masks = self._masks(tiny_qmodel, tiny_significance)
        engine = AtamanEngine(tiny_qmodel, masks=masks)
        report = deploy(engine, STM32U575, small_split.test.images[:48], small_split.test.labels[:48])
        assert report.engine == "ataman"
        assert report.fits
        assert 0.0 <= report.top1_accuracy <= 1.0
        assert report.mac_ops == engine.total_macs()

    def test_accuracy_degrades_gracefully_with_aggressive_skipping(
        self, tiny_qmodel, tiny_significance, small_split
    ):
        images, labels = small_split.test.images[:96], small_split.test.labels[:96]
        baseline = CMSISNNEngine(tiny_qmodel).evaluate_accuracy(images, labels)
        mild = AtamanEngine(tiny_qmodel, masks=self._masks(tiny_qmodel, tiny_significance, tau=0.002))
        harsh = AtamanEngine(tiny_qmodel, masks=self._masks(tiny_qmodel, tiny_significance, tau=0.5))
        assert mild.evaluate_accuracy(images, labels) >= baseline - 0.10
        # Skipping (nearly) everything must hurt badly -- accuracy falls towards chance.
        assert harsh.evaluate_accuracy(images, labels) <= baseline
        assert harsh.total_macs() < mild.total_macs()
