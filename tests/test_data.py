"""Tests for datasets, the synthetic CIFAR generator and augmentation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Dataset,
    SyntheticCifar10,
    SyntheticCifarConfig,
    add_gaussian_noise,
    augment_batch,
    load_synthetic_cifar10,
    random_crop,
    random_horizontal_flip,
    train_val_test_split,
)


class TestDataset:
    def _make(self, n=20, n_classes=4):
        rng = np.random.default_rng(0)
        images = rng.random((n, 8, 8, 3)).astype(np.float32)
        labels = rng.integers(0, n_classes, size=n)
        return Dataset(images=images, labels=labels, n_classes=n_classes, name="toy")

    def test_basic_properties(self):
        ds = self._make()
        assert len(ds) == 20
        assert ds.image_shape == (8, 8, 3)
        assert ds.class_counts().sum() == 20

    def test_subset_and_take(self):
        ds = self._make()
        sub = ds.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.images[1], ds.images[2])
        assert len(ds.take(5)) == 5
        assert len(ds.take(100)) == 20

    def test_shuffled_preserves_pairs(self):
        ds = self._make()
        shuffled = ds.shuffled(rng=0)
        # Every (image, label) pair must still exist.
        for i in range(len(shuffled)):
            matches = np.where((ds.images == shuffled.images[i]).all(axis=(1, 2, 3)))[0]
            assert shuffled.labels[i] in ds.labels[matches]

    def test_batches_cover_everything(self):
        ds = self._make()
        seen = 0
        for images, labels in ds.batches(batch_size=6):
            assert images.shape[0] == labels.shape[0]
            seen += images.shape[0]
        assert seen == len(ds)

    def test_batches_invalid_size(self):
        with pytest.raises(ValueError):
            list(self._make().batches(0))

    def test_validation_errors(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Dataset(images=rng.random((4, 8, 8)), labels=np.zeros(4, int), n_classes=2)
        with pytest.raises(ValueError):
            Dataset(images=rng.random((4, 8, 8, 3)), labels=np.zeros(3, int), n_classes=2)
        with pytest.raises(ValueError):
            Dataset(images=rng.random((4, 8, 8, 3)), labels=np.array([0, 1, 2, 5]), n_classes=3)


class TestSplits:
    def test_split_sizes_and_disjointness(self, small_dataset):
        split = train_val_test_split(small_dataset, val_fraction=0.1, test_fraction=0.2, calibration_size=32, rng=0)
        total = len(split.train) + len(split.val) + len(split.test)
        assert total == len(small_dataset)
        assert len(split.calibration) == 32
        assert split.n_classes == small_dataset.n_classes
        assert "train=" in split.summary()

    def test_calibration_subset_of_train(self, small_dataset):
        split = train_val_test_split(small_dataset, calibration_size=16, rng=1)
        for img in split.calibration.images[:4]:
            assert (split.train.images == img).all(axis=(1, 2, 3)).any()

    def test_invalid_fractions(self, small_dataset):
        with pytest.raises(ValueError):
            train_val_test_split(small_dataset, val_fraction=0.6, test_fraction=0.6)
        with pytest.raises(ValueError):
            train_val_test_split(small_dataset, test_fraction=0.0)


class TestSyntheticCifar:
    def test_determinism(self):
        a = load_synthetic_cifar10(64, seed=5)
        b = load_synthetic_cifar10(64, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = load_synthetic_cifar10(32, seed=1)
        b = load_synthetic_cifar10(32, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_geometry_and_range(self):
        ds = load_synthetic_cifar10(40, seed=0)
        assert ds.images.shape == (40, 32, 32, 3)
        assert ds.images.dtype == np.float32
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0
        assert ds.labels.min() >= 0 and ds.labels.max() < 10

    def test_rough_class_balance(self):
        ds = load_synthetic_cifar10(500, seed=0)
        counts = ds.class_counts()
        # Label noise moves some samples around but the distribution stays roughly balanced.
        assert counts.min() > 20 and counts.max() < 110

    def test_label_noise_rate(self):
        clean_cfg = SyntheticCifarConfig(label_noise=0.0, seed=9)
        noisy_cfg = SyntheticCifarConfig(label_noise=0.3, seed=9)
        clean = SyntheticCifar10(clean_cfg).generate(600, seed=9)
        noisy = SyntheticCifar10(noisy_cfg).generate(600, seed=9)
        flip_rate = (clean.labels != noisy.labels).mean()
        assert 0.2 < flip_rate < 0.4

    def test_classes_are_visually_distinct(self):
        """Mean images of different classes should differ measurably (signal exists)."""
        cfg = SyntheticCifarConfig(label_noise=0.0, noise_std=0.1, occlusion_prob=0.0, seed=3)
        ds = SyntheticCifar10(cfg).generate(400, seed=3)
        means = np.stack([ds.images[ds.labels == c].mean(axis=0) for c in range(10)])
        distances = []
        for i in range(10):
            for j in range(i + 1, 10):
                distances.append(np.abs(means[i] - means[j]).mean())
        assert np.mean(distances) > 0.02

    def test_smaller_image_size(self):
        cfg = SyntheticCifarConfig(image_size=16, seed=0)
        ds = SyntheticCifar10(cfg).generate(20)
        assert ds.images.shape[1:] == (16, 16, 3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticCifarConfig(image_size=4)
        with pytest.raises(ValueError):
            SyntheticCifarConfig(noise_std=-1)
        with pytest.raises(ValueError):
            SyntheticCifarConfig(label_noise=1.5)
        with pytest.raises(ValueError):
            SyntheticCifarConfig(n_classes=11)
        with pytest.raises(ValueError):
            SyntheticCifar10(SyntheticCifarConfig()).generate(0)


class TestAugmentation:
    def _images(self, n=16):
        return np.random.default_rng(0).random((n, 8, 8, 3)).astype(np.float32)

    def test_flip_prob_one_reverses(self):
        images = self._images()
        flipped = random_horizontal_flip(images, prob=1.0, rng=0)
        np.testing.assert_array_equal(flipped, images[:, :, ::-1, :])

    def test_flip_prob_zero_identity(self):
        images = self._images()
        np.testing.assert_array_equal(random_horizontal_flip(images, prob=0.0, rng=0), images)

    def test_flip_invalid_prob(self):
        with pytest.raises(ValueError):
            random_horizontal_flip(self._images(), prob=1.5)

    def test_random_crop_preserves_shape(self):
        images = self._images()
        cropped = random_crop(images, padding=2, rng=0)
        assert cropped.shape == images.shape
        assert not np.array_equal(cropped, images)

    def test_random_crop_zero_padding_is_copy(self):
        images = self._images()
        out = random_crop(images, padding=0)
        np.testing.assert_array_equal(out, images)
        assert out is not images

    def test_random_crop_invalid(self):
        with pytest.raises(ValueError):
            random_crop(self._images(), padding=-1)

    def test_gaussian_noise_clipped(self):
        images = self._images()
        noisy = add_gaussian_noise(images, std=0.5, rng=0)
        assert noisy.min() >= 0.0 and noisy.max() <= 1.0
        assert not np.array_equal(noisy, images)

    def test_gaussian_noise_invalid(self):
        with pytest.raises(ValueError):
            add_gaussian_noise(self._images(), std=-0.1)

    def test_augment_batch_shape_and_range(self):
        images = self._images()
        out = augment_batch(images, rng=0)
        assert out.shape == images.shape
        assert out.min() >= 0.0 and out.max() <= 1.0


@given(n=st.integers(1, 40))
@settings(max_examples=10, deadline=None)
def test_synthetic_dataset_size_property(n):
    ds = SyntheticCifar10(SyntheticCifarConfig(image_size=8, seed=1)).generate(n, seed=1)
    assert len(ds) == n
    assert ds.images.shape == (n, 8, 8, 3)
