"""Confidence cascading: calibration sweep, cascade policy, escalation path.

Covers the offline half (threshold sweep + cached `CascadeCalibration`
artifact, budget edge cases), the policy (gate resolution, registry), the
scheduler's per-request escalation (re-enqueue under one trace id, no
double-counted queue wait, shed-vs-escalate near deadlines) and the cascade
telemetry block.
"""

import time

import numpy as np
import pytest

from repro.registry import POLICIES
from repro.serving import (
    CascadePolicy,
    Deployment,
    LatencySLOPolicy,
    MetricsSnapshot,
    Observability,
    Request,
    RequestQueue,
    Scheduler,
)
from repro.workflow import (
    ArtifactStore,
    CascadeCalibration,
    CascadeLevelPoint,
    CascadeStage,
    Experiment,
    ServeStage,
    calibrate_cascade,
    softmax_margins,
)


@pytest.fixture(scope="module")
def deployment(tiny_qmodel, tiny_pipeline_result):
    """A three-level deployment spanning the exact-to-aggressive range."""
    points = [
        {"label": "exact", "taus": {}, "accuracy": 0.9},
        {"label": "mid", "taus": {"conv1": 0.05, "conv2": 0.05}, "accuracy": 0.85},
        {"label": "aggressive", "taus": {"conv1": 0.2, "conv2": 0.2}, "accuracy": 0.7},
    ]
    return Deployment.from_points(
        tiny_qmodel,
        points,
        tiny_pipeline_result.significance,
        unpacked=tiny_pipeline_result.unpacked,
    )


@pytest.fixture(scope="module")
def holdout(small_split):
    """Held-out images/labels for the calibration sweep."""
    return small_split.test.images[:96], small_split.test.labels[:96]


@pytest.fixture(scope="module")
def calibration(deployment, holdout):
    images, labels = holdout
    return calibrate_cascade(deployment, images, labels, accuracy_budget=0.05)


def _manual_calibration(deployment, threshold, chosen=None, budget=0.05):
    """A hand-built calibration pinning the cheapest level at `threshold`."""
    exact = deployment.levels[0]
    cheap = deployment.levels[-1]
    chosen = cheap.name if chosen is None else chosen
    point = CascadeLevelPoint(
        level=cheap.name,
        threshold=threshold,
        escalation_rate=0.2,
        blended_accuracy=0.88,
        accept_accuracy=0.9,
        expected_cycles_per_sample=cheap.cycles_per_sample + 0.2 * exact.cycles_per_sample,
        cycles_saved_frac=0.4,
        within_budget=True,
    )
    return CascadeCalibration(
        model_name="tiny_cnn",
        exact_level=exact.name,
        exact_accuracy=0.9,
        exact_cycles_per_sample=exact.cycles_per_sample,
        accuracy_budget=budget,
        n_samples=96,
        points=[point],
        chosen=chosen,
    )


# --------------------------------------------------------------------------- margins
class TestSoftmaxMargins:
    def test_range_and_shape(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(32, 10))
        margins = softmax_margins(logits)
        assert margins.shape == (32,)
        assert np.all(margins >= 0.0) and np.all(margins <= 1.0)

    def test_confident_row_beats_ambiguous_row(self):
        confident = np.array([10.0, 0.0, 0.0])
        ambiguous = np.array([1.0, 1.0, 0.0])
        m = softmax_margins(np.stack([confident, ambiguous]))
        assert m[0] > 0.9
        assert m[1] < 0.1


# --------------------------------------------------------------------------- calibration
class TestCalibration:
    def test_sweep_structure(self, calibration, deployment):
        assert calibration.exact_level == deployment.levels[0].name
        assert len(calibration.points) == len(deployment.levels) - 1
        for point in calibration.points:
            assert 0.0 <= point.escalation_rate <= 1.0
            if point.within_budget:
                assert point.blended_accuracy >= calibration.exact_accuracy - 0.05 - 1e-9

    def test_chosen_point_beats_exact_cycles(self, calibration):
        # The tiny CNN is well-calibrated enough that some cheap level wins.
        assert calibration.chosen is not None
        point = calibration.chosen_point
        assert point.expected_cycles_per_sample < calibration.exact_cycles_per_sample
        assert point.cycles_saved_frac > 0.0

    def test_budget_zero_is_always_exact(self, deployment, holdout):
        images, labels = holdout
        calibration = calibrate_cascade(deployment, images, labels, accuracy_budget=0.0)
        assert calibration.chosen is None
        assert calibration.chosen_point is None
        policy = CascadePolicy(calibration=calibration)
        assert policy.select(deployment.levels, MetricsSnapshot()) == 0
        assert policy.cascade_gate(deployment.levels) is None

    def test_budget_inf_never_escalates(self, deployment, holdout):
        images, labels = holdout
        calibration = calibrate_cascade(
            deployment, images, labels, accuracy_budget=float("inf")
        )
        assert calibration.chosen is not None
        point = calibration.chosen_point
        assert point.threshold == 0.0
        assert point.escalation_rate == 0.0

    def test_no_calibration_degrades_to_exact(self, deployment):
        policy = CascadePolicy(calibration=None)
        assert policy.select(deployment.levels, MetricsSnapshot()) == 0
        assert policy.cascade_gate(deployment.levels) is None

    def test_mismatched_level_names_raise(self, deployment):
        calibration = _manual_calibration(deployment, 0.5, chosen="no-such-level")
        policy = CascadePolicy(calibration=calibration)
        with pytest.raises(ValueError, match="not found in deployment levels"):
            policy.select(deployment.levels, MetricsSnapshot())


# --------------------------------------------------------------------------- stage caching
class TestCascadeStageCaching:
    def _experiment(self, tiny_qmodel, tiny_pipeline_result, holdout, store, budget=0.05):
        images, labels = holdout
        points = [
            {"label": "exact", "taus": {}, "accuracy": 0.9},
            {"label": "mid", "taus": {"conv1": 0.05, "conv2": 0.05}, "accuracy": 0.85},
        ]
        return Experiment(
            stages=[
                ServeStage(points=points),
                CascadeStage(accuracy_budget=budget, n_samples=64),
            ],
            inputs={
                "qmodel": tiny_qmodel,
                "significance": tiny_pipeline_result.significance,
                "unpacked": tiny_pipeline_result.unpacked,
                "eval_images": images,
                "eval_labels": labels,
            },
            store=store,
        )

    def test_same_inputs_hit_the_cache(self, tiny_qmodel, tiny_pipeline_result, holdout, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = self._experiment(tiny_qmodel, tiny_pipeline_result, holdout, store).run()
        assert "cascade" in first.executed_stages
        second = self._experiment(tiny_qmodel, tiny_pipeline_result, holdout, store).run()
        assert "cascade" in second.cached_stages
        assert second["cascade"].as_dict() == first["cascade"].as_dict()

    def test_budget_change_invalidates_the_cache(
        self, tiny_qmodel, tiny_pipeline_result, holdout, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        self._experiment(tiny_qmodel, tiny_pipeline_result, holdout, store).run()
        rerun = self._experiment(
            tiny_qmodel, tiny_pipeline_result, holdout, store, budget=0.01
        ).run()
        assert "cascade" in rerun.executed_stages


# --------------------------------------------------------------------------- policy + registry
class TestCascadePolicy:
    def test_registered(self):
        assert POLICIES.resolve("cascade") is CascadePolicy

    def test_gate_matches_chosen_point(self, deployment, calibration):
        policy = CascadePolicy(calibration=calibration, escalation_headroom_ms=10.0)
        gate = policy.cascade_gate(deployment.levels)
        point = calibration.chosen_point
        assert gate.cheap_level == calibration.chosen
        assert gate.exact_index == 0
        assert gate.threshold == point.threshold
        assert gate.escalation_headroom_ms == 10.0
        assert policy.select(deployment.levels, MetricsSnapshot()) == gate.cheap_index


# --------------------------------------------------------------------------- requeue semantics
class TestRequeueSemantics:
    def test_requeue_preserves_deadline_and_submitted_at(self, small_split):
        request = Request(small_split.test.images[0], timeout_ms=1000.0)
        queue = RequestQueue()
        queue.put(request)
        deadline, submitted = request.deadline, request.submitted_at
        time.sleep(0.01)
        queue.put(request, requeue=True)
        assert request.deadline == deadline  # no fresh timeout budget
        assert request.submitted_at == submitted  # end-to-end clock keeps running
        assert request.enqueued_at > submitted  # second wait measured from here

    def test_fresh_put_still_rearms(self, small_split):
        request = Request(small_split.test.images[0], timeout_ms=1000.0)
        first = request.deadline
        time.sleep(0.01)
        RequestQueue().put(request)
        assert request.deadline > first


# --------------------------------------------------------------------------- escalation path
class TestEscalation:
    def _scheduler(self, deployment, threshold, headroom_ms=10.0):
        policy = CascadePolicy(
            calibration=_manual_calibration(deployment, threshold),
            escalation_headroom_ms=headroom_ms,
        )
        return Scheduler(deployment, policy=policy, max_batch_size=8, max_wait_ms=1.0)

    def test_high_margin_requests_accept_cheap(self, deployment, small_split):
        scheduler = self._scheduler(deployment, threshold=0.0)
        cheap = deployment.levels[-1].name
        with scheduler:
            requests = scheduler.submit_many(small_split.test.images[:8])
            for request in requests:
                request.result(timeout=30.0)
        assert all(r.level_name == cheap for r in requests)
        assert all(not r.escalated and r.attempts == 1 for r in requests)
        snapshot = scheduler.metrics.snapshot()
        assert snapshot.cascade["escalations"] == 0
        assert snapshot.cascade["escalation_rate"] == 0.0
        assert snapshot.cascade["attempts_per_level"] == {cheap: 8}
        assert snapshot.cascade["cycles_saved"] > 0

    def test_low_margin_requests_escalate_to_exact(self, deployment, small_split):
        # threshold 2.0 sits above every possible margin: everything escalates.
        scheduler = self._scheduler(deployment, threshold=2.0)
        exact = deployment.levels[0].name
        cheap = deployment.levels[-1].name
        with scheduler:
            requests = scheduler.submit_many(small_split.test.images[:6])
            predictions = [request.result(timeout=30.0) for request in requests]
        exact_preds = deployment.predict(small_split.test.images[:6], level=0)
        assert predictions == [int(p) for p in exact_preds]
        assert all(r.level_name == exact for r in requests)
        assert all(r.escalated and r.attempts == 2 for r in requests)
        assert all(r.margin is not None for r in requests)
        snapshot = scheduler.metrics.snapshot()
        assert snapshot.cascade["escalations"] == 6
        assert snapshot.cascade["escalation_rate"] == 1.0
        assert snapshot.cascade["attempts_per_level"][cheap] == 6
        assert snapshot.cascade["attempts_per_level"][exact] == 6
        # Escalating everything costs cheap + exact cycles: a net loss.
        assert snapshot.cascade["cycles_saved"] < 0

    def test_both_attempts_share_one_trace_with_an_escalate_span(
        self, deployment, small_split
    ):
        scheduler = self._scheduler(deployment, threshold=2.0)
        with scheduler:
            request = scheduler.submit(small_split.test.images[0])
            request.result(timeout=30.0)
        spans = scheduler.obs.tracer.spans(trace_id=request.trace_id)
        names = [span.name for span in spans]
        assert names.count("queue-wait") == 2  # one wait per attempt
        assert names.count("execute") == 2
        assert names.count("escalate") == 1
        escalate = next(span for span in spans if span.name == "escalate")
        assert escalate.attrs["from_level"] == deployment.levels[-1].name
        assert escalate.attrs["to_level"] == deployment.levels[0].name
        assert escalate.attrs["margin"] < escalate.attrs["threshold"]

    def test_wait_and_service_accumulate_without_double_counting(
        self, deployment, small_split
    ):
        scheduler = self._scheduler(deployment, threshold=2.0)
        with scheduler:
            request = scheduler.submit(small_split.test.images[0])
            request.result(timeout=30.0)
            finished = time.monotonic()
        total_ms = (finished - request.submitted_at) * 1e3
        # Accumulated wait + service must fit inside the end-to-end clock;
        # double-counting either attempt's wait would overshoot it.
        assert request.wait_ms + request.service_ms <= total_ms + 1.0

    def test_shed_vs_escalate_keeps_cheap_answer_near_deadline(
        self, deployment, small_split
    ):
        # Huge headroom requirement: any armed deadline suppresses escalation.
        scheduler = self._scheduler(deployment, threshold=2.0, headroom_ms=1e9)
        cheap = deployment.levels[-1].name
        request = Request(
            small_split.test.images[0], timeout_ms=10_000.0, priority="interactive"
        )
        scheduler.queue.put(request)
        # Drive the core synchronously: deterministic, no thread needed.
        scheduler._execute(scheduler.queue.get_batch(8, 0.0))
        assert request.done
        assert request.level_name == cheap  # answered cheap, not escalated
        assert not request.escalated
        assert request.deadline is not None  # deadline never re-armed
        snapshot = scheduler.metrics.snapshot()
        assert snapshot.cascade["suppressed"] == 1
        assert snapshot.cascade["escalations"] == 0
        assert snapshot.requests_shed == 0

    def test_interactive_with_headroom_still_escalates(self, deployment, small_split):
        scheduler = self._scheduler(deployment, threshold=2.0, headroom_ms=1.0)
        request = Request(
            small_split.test.images[0], timeout_ms=60_000.0, priority="interactive"
        )
        scheduler.queue.put(request)
        scheduler._execute(scheduler.queue.get_batch(8, 0.0))
        assert not request.done  # re-enqueued for the exact pass
        assert request.escalated and request.pinned_level == 0
        scheduler._execute(scheduler.queue.get_batch(8, 0.0))
        assert request.done
        assert request.level_name == deployment.levels[0].name

    def test_prometheus_exposition_carries_cascade_counters(
        self, deployment, small_split
    ):
        scheduler = self._scheduler(deployment, threshold=2.0)
        with scheduler:
            scheduler.submit(small_split.test.images[0]).result(timeout=30.0)
        text = scheduler.metrics.render_prometheus()
        assert "repro_cascade_attempts_total" in text
        assert 'repro_cascade_escalations_total{priority="standard"} 1' in text

    def test_blended_accuracy_proxy_tracks_escalation_rate(self, deployment, small_split):
        scheduler = self._scheduler(deployment, threshold=0.0)
        with scheduler:
            for request in scheduler.submit_many(small_split.test.images[:4]):
                request.result(timeout=30.0)
        cascade = scheduler.metrics.snapshot().cascade
        # Zero escalations: the proxy equals the calibrated accept accuracy.
        assert cascade["blended_accuracy_proxy"] == pytest.approx(0.9)


# --------------------------------------------------------------------------- SLO composition
class TestLatencySLOPriorityComposition:
    def _policy(self, **kwargs):
        defaults = dict(slo_ms=50.0, min_samples=4, alpha=1.0, patience=1, cooldown=0)
        defaults.update(kwargs)
        return LatencySLOPolicy(**defaults)

    def _snapshot(self, global_p95, interactive_p95=None, interactive_completed=10):
        per_priority = {}
        if interactive_p95 is not None:
            per_priority["interactive"] = {
                "completed": interactive_completed,
                "shed": 0,
                "failed": 0,
                "p50_latency_ms": interactive_p95 / 2,
                "p95_latency_ms": interactive_p95,
            }
        return MetricsSnapshot(
            requests_completed=100, p95_latency_ms=global_p95, per_priority=per_priority
        )

    def test_bulk_latency_cannot_mask_an_interactive_breach(self, deployment):
        policy = self._policy(priority_class="interactive")
        # Global p95 healthy, interactive p95 breached: must escalate.
        level = policy.select(deployment.levels, self._snapshot(10.0, interactive_p95=200.0))
        assert level == 1

    def test_bulk_breach_does_not_degrade_interactive(self, deployment):
        policy = self._policy(priority_class="interactive")
        # Global p95 blown up by batch traffic, interactive fine: hold.
        level = policy.select(deployment.levels, self._snapshot(500.0, interactive_p95=5.0))
        assert level == 0

    def test_holds_until_the_class_has_samples(self, deployment):
        policy = self._policy(priority_class="interactive")
        assert policy.select(deployment.levels, self._snapshot(500.0)) == 0
        assert (
            policy.select(
                deployment.levels,
                self._snapshot(500.0, interactive_p95=200.0, interactive_completed=1),
            )
            == 0
        )

    def test_default_global_signal_unchanged(self, deployment):
        policy = self._policy()
        assert policy.select(deployment.levels, self._snapshot(500.0)) == 1
