"""Tests of the load-adaptive serving subsystem."""

from __future__ import annotations

import pickle
import threading
import time

import numpy as np
import pytest

from repro.quant.qlayers import im2col_scratch_enabled, set_im2col_scratch
from repro.registry import POLICIES
from repro.serving import (
    Client,
    Deployment,
    FixedPolicy,
    HTTPClient,
    LatencySLOPolicy,
    PredictionServer,
    QueueDepthPolicy,
    ReplicatedRunner,
    Request,
    RequestError,
    RequestQueue,
    RequestTimedOut,
    Scheduler,
    SchedulerStopped,
    ServerMetrics,
    priority_rank,
    resolve_policy,
)
from repro.serving.metrics import MetricsSnapshot
from repro.workflow import ArtifactStore, Experiment, ServeStage, fingerprint


# --------------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def deployment(tiny_qmodel, tiny_pipeline_result):
    """A three-level deployment spanning the exact-to-aggressive range."""
    points = [
        {"label": "exact", "taus": {}, "accuracy": 0.9},
        {"label": "mid", "taus": {"conv1": 0.05, "conv2": 0.05}, "accuracy": 0.85},
        {"label": "aggressive", "taus": {"conv1": 0.2, "conv2": 0.2}, "accuracy": 0.7},
    ]
    return Deployment.from_points(
        tiny_qmodel,
        points,
        tiny_pipeline_result.significance,
        unpacked=tiny_pipeline_result.unpacked,
    )


def _sample_images(split, n):
    return split.test.images[:n]


# --------------------------------------------------------------------------- priority scheduling
class TestPriorityScheduling:
    def _x(self):
        return np.zeros((4, 4, 1), dtype=np.float32)

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError, match="priority"):
            Request(self._x(), priority="vip")
        assert priority_rank("interactive") < priority_rank("standard") < priority_rank("batch")

    def test_batch_fills_in_priority_order(self):
        # "Coalesce within a class before spilling down": a mixed backlog pops
        # interactive first, then standard, then batch -- FIFO inside a class.
        queue = RequestQueue(starvation_ms=None)
        submitted = [
            Request(self._x(), priority=p)
            for p in ("batch", "standard", "interactive", "batch", "interactive", "standard")
        ]
        for request in submitted:
            queue.put(request)
        batch = queue.get_batch(6, max_wait_ms=0)
        assert [r.priority for r in batch] == [
            "interactive", "interactive", "standard", "standard", "batch", "batch"
        ]
        # FIFO within each class: ids increase inside every priority run.
        interactive = [r.id for r in batch if r.priority == "interactive"]
        assert interactive == sorted(interactive)

    def test_higher_class_drained_before_spilling(self):
        queue = RequestQueue(starvation_ms=None)
        for _ in range(3):
            queue.put(Request(self._x(), priority="interactive"))
        for _ in range(5):
            queue.put(Request(self._x(), priority="batch"))
        # A batch smaller than the backlog takes every interactive request
        # and only then spills into the batch class.
        popped = queue.get_batch(4, max_wait_ms=0)
        assert [r.priority for r in popped] == ["interactive"] * 3 + ["batch"]
        assert queue.depth_by_priority() == {"interactive": 0, "standard": 0, "batch": 4}

    def test_starved_batch_request_jumps_the_priority_order(self):
        queue = RequestQueue(starvation_ms=40.0)
        old = Request(self._x(), priority="batch")
        queue.put(old)
        time.sleep(0.06)  # let it cross the starvation bound
        for _ in range(4):
            queue.put(Request(self._x(), priority="interactive"))
        batch = queue.get_batch(3, max_wait_ms=0)
        assert batch[0] is old, "aged-out batch request must be served first"
        assert [r.priority for r in batch[1:]] == ["interactive", "interactive"]

    def test_strict_priority_without_aging(self):
        queue = RequestQueue(starvation_ms=None)
        old = Request(self._x(), priority="batch")
        queue.put(old)
        time.sleep(0.02)
        queue.put(Request(self._x(), priority="interactive"))
        assert queue.get_batch(1, max_wait_ms=0)[0].priority == "interactive"
        with pytest.raises(ValueError):
            RequestQueue(starvation_ms=0)

    def test_starvation_bound_under_sustained_interactive_load(self, deployment, small_split):
        # Satellite acceptance: batch-class requests still complete while
        # interactive traffic never lets the high-priority queue drain.
        xs = _sample_images(small_split, 8)
        stop_feeding = threading.Event()

        with Scheduler(
            deployment, max_batch_size=4, max_wait_ms=1, starvation_ms=100.0
        ) as scheduler:
            client = Client(scheduler, timeout_s=30.0)

            def interactive_pressure():
                while not stop_feeding.is_set():
                    client.predict(xs[0], priority="interactive")

            feeders = [threading.Thread(target=interactive_pressure, daemon=True) for _ in range(3)]
            for feeder in feeders:
                feeder.start()
            time.sleep(0.05)  # pressure established before the bulk arrives
            try:
                bulk = [client.submit(x, priority="batch") for x in xs]
                # Every bulk request completes well within a few starvation
                # periods despite the interactive firehose.
                predictions = [request.result(timeout=10.0) for request in bulk]
                assert len(predictions) == len(xs)
            finally:
                stop_feeding.set()
                for feeder in feeders:
                    feeder.join(timeout=5.0)
            snapshot = scheduler.metrics.snapshot()
        assert snapshot.per_priority["batch"]["completed"] == len(xs)
        assert snapshot.per_priority["interactive"]["completed"] > 0

    def test_interactive_overtakes_bulk_backlog(self, deployment, small_split):
        # With a deep batch-class backlog, an interactive arrival rides one of
        # the next few coalesced batches instead of waiting out the queue.
        xs = _sample_images(small_split, 8)
        with Scheduler(deployment, max_batch_size=2, max_wait_ms=1) as scheduler:
            client = Client(scheduler, timeout_s=30.0)
            bulk = [client.submit(xs[i % len(xs)], priority="batch") for i in range(24)]
            urgent = client.submit(xs[0], priority="interactive")
            urgent.result(timeout=30.0)
            for request in bulk:
                request.result(timeout=30.0)
            # The urgent request waited less than the median bulk request.
            bulk_waits = sorted(r.wait_ms for r in bulk)
            assert urgent.wait_ms < bulk_waits[len(bulk_waits) // 2]

    def test_shedding_attributed_to_priority_class(self, deployment, small_split):
        xs = _sample_images(small_split, 3)
        scheduler = Scheduler(deployment, max_batch_size=8, max_wait_ms=1)
        doomed = Request(xs[0], timeout_ms=0.001, priority="batch")
        scheduler.queue.put(doomed)
        live = [Request(x, priority="interactive") for x in xs]
        for request in live:
            scheduler.queue.put(request)
        time.sleep(0.002)
        scheduler.start()
        try:
            for request in live:
                request.result(timeout=10.0)
            with pytest.raises(RequestTimedOut):
                doomed.result(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while scheduler.metrics.snapshot().requests_shed < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            stats = scheduler.metrics.snapshot().per_priority
            assert stats["batch"]["shed"] == 1
            assert stats["batch"]["completed"] == 0
            assert stats["interactive"]["completed"] == len(xs)
            assert stats["interactive"]["shed"] == 0
        finally:
            scheduler.stop()


# --------------------------------------------------------------------------- request queue
class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue()
        requests = [Request(np.zeros((2, 2, 1))) for _ in range(6)]
        for request in requests:
            queue.put(request)
        batch = queue.get_batch(max_batch_size=6, max_wait_ms=0.0)
        assert [r.id for r in batch] == [r.id for r in requests]

    def test_full_batch_pays_no_wait(self):
        queue = RequestQueue()
        for _ in range(8):
            queue.put(Request(np.zeros((2, 2, 1))))
        started = time.monotonic()
        batch = queue.get_batch(max_batch_size=4, max_wait_ms=500.0)
        elapsed = time.monotonic() - started
        assert len(batch) == 4
        assert elapsed < 0.25  # far below the 500 ms window
        assert queue.depth() == 4

    def test_coalescing_deadline(self):
        queue = RequestQueue()
        queue.put(Request(np.zeros((2, 2, 1))))
        started = time.monotonic()
        batch = queue.get_batch(max_batch_size=8, max_wait_ms=60.0)
        elapsed = time.monotonic() - started
        assert len(batch) == 1
        assert elapsed >= 0.05  # waited (most of) the window for co-riders

    def test_coalesces_late_arrivals(self):
        queue = RequestQueue()
        queue.put(Request(np.zeros((2, 2, 1))))

        def late_put():
            time.sleep(0.02)
            queue.put(Request(np.zeros((2, 2, 1))))

        thread = threading.Thread(target=late_put)
        thread.start()
        batch = queue.get_batch(max_batch_size=2, max_wait_ms=500.0)
        thread.join()
        assert len(batch) == 2

    def test_empty_queue_idle_poll(self):
        queue = RequestQueue()
        started = time.monotonic()
        assert queue.get_batch(max_batch_size=4, max_wait_ms=5.0, poll_timeout=0.02) == []
        assert time.monotonic() - started < 1.0

    def test_drain_fails_pending(self):
        queue = RequestQueue()
        request = Request(np.zeros((2, 2, 1)))
        queue.put(request)
        drained = queue.drain(RuntimeError("boom"))
        assert drained == [request]
        with pytest.raises(Exception, match="boom"):
            request.result(timeout=0.1)


# --------------------------------------------------------------------------- policies
def _snapshot(**kwargs) -> MetricsSnapshot:
    return MetricsSnapshot(**kwargs)


class TestPolicies:
    def test_registry_names(self):
        assert {"fixed", "queue-depth", "latency-slo"} <= set(POLICIES.names())
        assert isinstance(resolve_policy("queue-depth"), QueueDepthPolicy)
        assert isinstance(resolve_policy(FixedPolicy), FixedPolicy)
        with pytest.raises(TypeError):
            resolve_policy(42)

    def test_fixed_policy(self, deployment):
        policy = FixedPolicy(level=1)
        assert policy.select(deployment.levels, _snapshot(queue_depth=500)) == 1
        assert FixedPolicy(level=99).select(deployment.levels, _snapshot()) == len(deployment.levels) - 1

    def test_queue_depth_escalates_immediately(self, deployment):
        policy = QueueDepthPolicy(depth_per_level=4, hysteresis=1)
        assert policy.select(deployment.levels, _snapshot(queue_depth=0)) == 0
        assert policy.select(deployment.levels, _snapshot(queue_depth=9)) == 2
        # Way past the last level: clamped.
        assert policy.select(deployment.levels, _snapshot(queue_depth=400)) == 2

    def test_queue_depth_deescalates_stepwise_with_hysteresis(self, deployment):
        policy = QueueDepthPolicy(depth_per_level=4, hysteresis=1)
        policy.select(deployment.levels, _snapshot(queue_depth=9))
        assert policy.current == 2
        # Depth just below the level-2 threshold but inside hysteresis: hold.
        assert policy.select(deployment.levels, _snapshot(queue_depth=7)) == 2
        # Clearly below: one step down per batch, not a jump to the target.
        assert policy.select(deployment.levels, _snapshot(queue_depth=0)) == 1
        assert policy.select(deployment.levels, _snapshot(queue_depth=0)) == 0

    def test_queue_depth_always_relaxes_when_idle(self, deployment):
        # Regression: with depth_per_level <= hysteresis the de-escalation
        # threshold collapsed to 0 and the policy stayed pinned at a degraded
        # level forever, even on an empty queue.
        policy = QueueDepthPolicy(depth_per_level=2, hysteresis=2)
        policy.select(deployment.levels, _snapshot(queue_depth=5))
        assert policy.current == 2
        for _ in range(len(deployment.levels)):
            policy.select(deployment.levels, _snapshot(queue_depth=0))
        assert policy.current == 0

    def test_latency_slo_transitions(self, deployment):
        # alpha=1 (no smoothing) + patience=1 + no cooldown reproduces the
        # plain threshold stepping; the control-loop extras are tested below.
        policy = LatencySLOPolicy(
            slo_ms=50.0, low_watermark=0.5, min_samples=4, alpha=1.0, patience=1, cooldown=0
        )
        # Too few samples: hold at the accurate end.
        assert policy.select(deployment.levels, _snapshot(requests_completed=1, p95_latency_ms=500)) == 0
        # Above the SLO: escalate one level per batch.
        assert policy.select(deployment.levels, _snapshot(requests_completed=10, p95_latency_ms=80)) == 1
        assert policy.select(deployment.levels, _snapshot(requests_completed=20, p95_latency_ms=80)) == 2
        # Between the watermarks: hold.
        assert policy.select(deployment.levels, _snapshot(requests_completed=30, p95_latency_ms=40)) == 2
        # Below the low watermark: relax.
        assert policy.select(deployment.levels, _snapshot(requests_completed=40, p95_latency_ms=10)) == 1

    def test_latency_slo_ewma_ignores_single_spike(self, deployment):
        # One outlier batch must not move the level: the EWMA absorbs it and
        # the patience counter never reaches its threshold.
        policy = LatencySLOPolicy(
            slo_ms=50.0, low_watermark=0.5, min_samples=1, alpha=0.1, patience=2, cooldown=0
        )
        for _ in range(5):  # settle the tracker well inside the dead band
            policy.select(deployment.levels, _snapshot(requests_completed=10, p95_latency_ms=40))
        # A 3x spike moves the tracker to 0.1*120 + 0.9*40 = 48 ms -- still
        # under the SLO, so the level holds (alpha=1.0 would have escalated).
        assert policy.select(deployment.levels, _snapshot(requests_completed=20, p95_latency_ms=120)) == 0
        assert policy.select(deployment.levels, _snapshot(requests_completed=30, p95_latency_ms=40)) == 0
        assert policy.ewma_p95_ms is not None and policy.ewma_p95_ms < 50

    def test_latency_slo_sustained_breach_escalates_once_per_patience(self, deployment):
        policy = LatencySLOPolicy(
            slo_ms=50.0, low_watermark=0.5, min_samples=1, alpha=1.0, patience=2, cooldown=0
        )
        # First breach: patience not yet exhausted -> hold.
        assert policy.select(deployment.levels, _snapshot(requests_completed=10, p95_latency_ms=90)) == 0
        # Second consecutive breach: step one level.
        assert policy.select(deployment.levels, _snapshot(requests_completed=20, p95_latency_ms=90)) == 1
        # The streak reset on the switch: the next breach is #1 again.
        assert policy.select(deployment.levels, _snapshot(requests_completed=30, p95_latency_ms=90)) == 1
        assert policy.select(deployment.levels, _snapshot(requests_completed=40, p95_latency_ms=90)) == 2

    def test_latency_slo_cooldown_blocks_back_to_back_switches(self, deployment):
        policy = LatencySLOPolicy(
            slo_ms=50.0, low_watermark=0.5, min_samples=1, alpha=1.0, patience=1, cooldown=2
        )
        assert policy.select(deployment.levels, _snapshot(requests_completed=10, p95_latency_ms=90)) == 1
        # Inside the cooldown window (two full batches): breaches accumulate
        # but the level holds.
        assert policy.select(deployment.levels, _snapshot(requests_completed=20, p95_latency_ms=90)) == 1
        assert policy.select(deployment.levels, _snapshot(requests_completed=30, p95_latency_ms=90)) == 1
        # Cooldown over: the sustained breach finally steps again.
        assert policy.select(deployment.levels, _snapshot(requests_completed=40, p95_latency_ms=90)) == 2

    def test_latency_slo_cooldown_one_holds_one_batch(self, deployment):
        # Regression: cooldown=1 must hold exactly one batch, not zero.
        policy = LatencySLOPolicy(
            slo_ms=50.0, low_watermark=0.5, min_samples=1, alpha=1.0, patience=1, cooldown=1
        )
        assert policy.select(deployment.levels, _snapshot(requests_completed=10, p95_latency_ms=90)) == 1
        assert policy.select(deployment.levels, _snapshot(requests_completed=20, p95_latency_ms=90)) == 1
        assert policy.select(deployment.levels, _snapshot(requests_completed=30, p95_latency_ms=90)) == 2

    def test_latency_slo_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatencySLOPolicy(alpha=0.0)
        with pytest.raises(ValueError):
            LatencySLOPolicy(alpha=1.5)
        with pytest.raises(ValueError):
            LatencySLOPolicy(patience=0)
        with pytest.raises(ValueError):
            LatencySLOPolicy(cooldown=-1)


# --------------------------------------------------------------------------- deployment
class TestDeployment:
    def test_from_points_drops_dominated_designs(self, tiny_qmodel, tiny_pipeline_result):
        # `explore` JSON contains every explored point; a design that is less
        # accurate but no cheaper than a better one must not become a level.
        points = [
            {"label": "exact", "taus": {}, "accuracy": 0.9},
            {"label": "dup-of-exact", "taus": {"conv1": 0.0, "conv2": 0.0}, "accuracy": 0.8},
            {"label": "aggressive", "taus": {"conv1": 0.2, "conv2": 0.2}, "accuracy": 0.7},
        ]
        dep = Deployment.from_points(
            tiny_qmodel, points, tiny_pipeline_result.significance,
            unpacked=tiny_pipeline_result.unpacked,
        )
        cycles = [level.cycles_per_sample for level in dep.levels]
        assert cycles == sorted(cycles, reverse=True)
        assert len(set(cycles)) == len(cycles)  # strictly decreasing
        assert dep.levels[0].config.is_exact

    def test_unknown_accuracy_never_outranks_exact(self, tiny_qmodel, tiny_pipeline_result):
        # A point without an accuracy (allowed by from_points) must sort after
        # the known-accurate designs, not evict the exact baseline.
        points = [
            {"taus": {"conv1": 0.2, "conv2": 0.2}},
            {"label": "exact", "taus": {}, "accuracy": 0.9},
        ]
        dep = Deployment.from_points(
            tiny_qmodel, points, tiny_pipeline_result.significance,
            unpacked=tiny_pipeline_result.unpacked,
        )
        assert dep.levels[0].config.is_exact
        assert dep.baseline_cycles_per_sample == dep.levels[0].cycles_per_sample

    def test_levels_ordered_and_costed(self, deployment):
        accuracies = [level.accuracy for level in deployment.levels]
        assert accuracies == sorted(accuracies, reverse=True)
        assert deployment.levels[0].masks is None  # exact design
        cycles = [level.cycles_per_sample for level in deployment.levels]
        assert cycles[0] == deployment.baseline_cycles_per_sample
        assert cycles[-1] < cycles[0]  # aggressive level sheds simulated cycles
        assert all(level.mcu_latency_ms > 0 for level in deployment.levels)

    def test_from_dse_uses_pareto_front(self, tiny_qmodel, tiny_pipeline_result):
        dep = Deployment.from_dse(
            tiny_qmodel,
            tiny_pipeline_result.dse,
            tiny_pipeline_result.significance,
            unpacked=tiny_pipeline_result.unpacked,
            max_levels=3,
        )
        assert 1 <= len(dep.levels) <= 3
        assert dep.level_index(dep.levels[-1].name) == len(dep.levels) - 1

    def test_predict_matches_direct_forward(self, deployment, small_split):
        xs = _sample_images(small_split, 16)
        for idx, level in enumerate(deployment.levels):
            expected = deployment.qmodel.predict_classes(xs, masks=level.masks)
            np.testing.assert_array_equal(deployment.predict(xs, level=idx), expected)


# --------------------------------------------------------------------------- scheduler
class TestScheduler:
    def test_round_trip_equivalence(self, deployment, small_split):
        xs = _sample_images(small_split, 24)
        expected = deployment.qmodel.predict_classes(xs, masks=None)
        with Scheduler(deployment, policy="fixed", max_batch_size=8, max_wait_ms=5) as scheduler:
            predictions = Client(scheduler).predict_many(xs)
        np.testing.assert_array_equal(predictions, expected)

    def test_burst_coalesces_into_batches(self, deployment, small_split):
        xs = _sample_images(small_split, 24)
        with Scheduler(deployment, policy="fixed", max_batch_size=8, max_wait_ms=25) as scheduler:
            Client(scheduler).predict_many(xs)
            snapshot = scheduler.metrics.snapshot()
        assert snapshot.requests_completed == 24
        assert snapshot.batches < 24  # definitely coalesced
        assert snapshot.mean_batch_size > 1.0
        assert sum(size * n for size, n in snapshot.batch_size_histogram.items()) == 24

    def test_adaptive_policy_switches_under_burst(self, deployment, small_split):
        xs = _sample_images(small_split, 8)
        policy = QueueDepthPolicy(depth_per_level=8, hysteresis=2)
        with Scheduler(deployment, policy=policy, max_batch_size=4, max_wait_ms=2) as scheduler:
            client = Client(scheduler)
            for x in xs[:4]:  # trickle: queue stays shallow -> L0
                client.predict(x)
            burst = [client.submit(xs[i % len(xs)]) for i in range(48)]
            for request in burst:
                request.result(timeout=60)
            for x in xs[:4]:  # trickle again: policy relaxes
                client.predict(x)
            snapshot = scheduler.metrics.snapshot()
        assert snapshot.per_level_requests.get("L0", 0) > 0
        escalated = sum(
            count for name, count in snapshot.per_level_requests.items() if name != "L0"
        )
        assert escalated > 0
        assert snapshot.level_switches >= 2
        assert snapshot.cycles_saved > 0

    def test_submit_validates_shape(self, deployment):
        with Scheduler(deployment) as scheduler:
            with pytest.raises(ValueError, match="shape"):
                scheduler.submit(np.zeros((3, 3, 3), dtype=np.float32))

    def test_stopped_scheduler_rejects_and_fails_pending(self, deployment, small_split):
        scheduler = Scheduler(deployment).start()
        scheduler.stop()
        with pytest.raises(SchedulerStopped):
            scheduler.submit(_sample_images(small_split, 1)[0])

    def test_idle_scheduler_does_not_spin_or_crash(self, deployment):
        with Scheduler(deployment, max_wait_ms=1) as scheduler:
            time.sleep(0.15)
            snapshot = scheduler.metrics.snapshot()
        assert snapshot.requests_completed == 0
        assert snapshot.batches == 0

    def test_multi_worker_replicas_match_serial(self, deployment, small_split):
        xs = _sample_images(small_split, 24)
        expected = deployment.qmodel.predict_classes(xs, masks=None)
        with ReplicatedRunner(deployment, n_workers=2, min_shard=4) as runner:
            np.testing.assert_array_equal(runner.predict(xs, level=0), expected)


# --------------------------------------------------------------------------- timeout shedding
class TestTimeoutShedding:
    def test_timeout_ms_must_be_positive(self, small_split):
        with pytest.raises(ValueError):
            Request(_sample_images(small_split, 1)[0], timeout_ms=0)
        with pytest.raises(ValueError):
            Request(_sample_images(small_split, 1)[0], timeout_ms=-5)

    def test_no_deadline_never_expires(self, small_split):
        request = Request(_sample_images(small_split, 1)[0])
        assert request.deadline is None and not request.expired

    def test_deadline_rearms_on_enqueue(self, small_split):
        request = Request(_sample_images(small_split, 1)[0], timeout_ms=1000.0)
        first = request.deadline
        time.sleep(0.01)
        RequestQueue().put(request)
        assert request.deadline > first  # counts from enqueue, not construction

    def test_expired_request_is_shed_with_distinct_error(self, deployment, small_split):
        scheduler = Scheduler(deployment, max_wait_ms=1)
        # Arm an already-expired deadline before the core starts, so the shed
        # path is deterministic regardless of scheduling jitter.
        request = Request(_sample_images(small_split, 1)[0], timeout_ms=0.001)
        scheduler.queue.put(request)
        time.sleep(0.002)
        scheduler.start()
        try:
            with pytest.raises(RequestTimedOut, match="deadline"):
                request.result(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while scheduler.metrics.snapshot().requests_shed < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            snapshot = scheduler.metrics.snapshot()
            assert snapshot.requests_shed == 1
            assert snapshot.requests_completed == 0
        finally:
            scheduler.stop()

    def test_live_coriders_still_served(self, deployment, small_split):
        xs = _sample_images(small_split, 4)
        scheduler = Scheduler(deployment, max_batch_size=8, max_wait_ms=1)
        expired = Request(xs[0], timeout_ms=0.001)
        scheduler.queue.put(expired)
        live = [Request(x) for x in xs]
        for request in live:
            scheduler.queue.put(request)
        time.sleep(0.002)
        scheduler.start()
        try:
            predictions = [request.result(timeout=10.0) for request in live]
            assert len(predictions) == len(xs)
            with pytest.raises(RequestTimedOut):
                expired.result(timeout=5.0)
            snapshot = scheduler.metrics.snapshot()
            assert snapshot.requests_shed == 1
            assert snapshot.requests_completed == len(xs)
        finally:
            scheduler.stop()

    def test_generous_timeout_not_shed(self, deployment, small_split):
        with Scheduler(deployment, max_wait_ms=1) as scheduler:
            prediction = Client(scheduler).predict(
                _sample_images(small_split, 1)[0], timeout_ms=30_000.0
            )
            assert isinstance(prediction, int)
            snapshot = scheduler.metrics.snapshot()
        assert snapshot.requests_shed == 0
        assert snapshot.requests_completed == 1

    def test_shed_counter_in_snapshot_dict(self):
        metrics = ServerMetrics()
        metrics.record_shed(3)
        snapshot = metrics.snapshot()
        assert snapshot.requests_shed == 3
        assert snapshot.as_dict()["requests_shed"] == 3
        # Shed is its own counter, not conflated with failures.
        assert snapshot.requests_failed == 0

    def test_shed_is_request_error_subclass(self):
        assert issubclass(RequestTimedOut, RequestError)


# --------------------------------------------------------------------------- metrics
class TestPercentile:
    """Pin the nearest-rank semantics of the metrics percentile helper."""

    def test_empty_window(self):
        from repro.serving.metrics import _percentile

        assert _percentile([], 0.95) == 0.0

    def test_single_sample(self):
        from repro.serving.metrics import _percentile

        assert _percentile([42.0], 0.5) == 42.0
        assert _percentile([42.0], 0.95) == 42.0

    def test_nearest_rank_is_ceil(self):
        """p-th percentile = element ceil(q*n)-1 of the sorted window."""
        from repro.serving.metrics import _percentile

        ordered = [float(i) for i in range(1, 21)]  # 1..20
        assert _percentile(ordered, 0.95) == 19.0  # ceil(19) - 1 -> index 18
        assert _percentile(ordered, 0.50) == 10.0  # ceil(10) - 1 -> index 9
        assert _percentile(ordered, 1.00) == 20.0

    def test_small_window_does_not_underreport_tail(self):
        """The rounded-interpolation index picked rank 12 of 13 for p95;
        true nearest-rank must pick the 13th (the maximum)."""
        from repro.serving.metrics import _percentile

        ordered = [float(i) for i in range(1, 14)]  # 1..13
        assert _percentile(ordered, 0.95) == 13.0  # ceil(12.35) - 1 -> index 12

    def test_p50_of_four_is_second_element(self):
        from repro.serving.metrics import _percentile

        # Nearest rank: ceil(2) - 1 -> index 1 (the rounded index said 2).
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0


class TestServerMetrics:
    def test_counts_and_percentiles(self):
        metrics = ServerMetrics(baseline_cycles_per_sample=1000.0, cycles_to_ms=0.001)
        metrics.record_batch("L0", 4, [10.0, 12.0, 14.0, 16.0], cycles_per_sample=1000.0)
        metrics.record_batch("L1", 2, [20.0, 30.0], cycles_per_sample=600.0)
        metrics.record_failure(3)
        snapshot = metrics.snapshot(queue_depth=5)
        assert snapshot.requests_completed == 6
        assert snapshot.requests_failed == 3
        assert snapshot.queue_depth == 5
        assert snapshot.batches == 2
        assert snapshot.per_level_requests == {"L0": 4, "L1": 2}
        assert snapshot.level_switches == 1
        assert snapshot.current_level == "L1"
        assert snapshot.p50_latency_ms == pytest.approx(14.0)
        assert snapshot.p95_latency_ms == pytest.approx(30.0)
        # Only the L1 batch saved cycles: (1000 - 600) * 2 samples.
        assert snapshot.cycles_saved == pytest.approx(800.0)
        assert snapshot.mcu_ms_saved == pytest.approx(0.8)
        assert snapshot.as_dict()["per_level_requests"] == {"L0": 4, "L1": 2}

    def test_per_priority_stats(self):
        metrics = ServerMetrics()
        metrics.record_batch(
            "L0", 3, [10.0, 20.0, 30.0], priorities=["interactive", "batch", "batch"]
        )
        metrics.record_shed(2, priority="batch")
        snapshot = metrics.snapshot()
        stats = snapshot.per_priority
        assert stats["interactive"]["completed"] == 1
        assert stats["interactive"]["p95_latency_ms"] == pytest.approx(10.0)
        assert stats["batch"]["completed"] == 2
        assert stats["batch"]["shed"] == 2
        assert stats["batch"]["p50_latency_ms"] == pytest.approx(20.0)
        # Classes with no traffic stay out of the snapshot entirely.
        assert "standard" not in stats
        assert snapshot.as_dict()["per_priority"]["batch"]["shed"] == 2

    def test_record_batch_without_priorities_counts_standard(self):
        metrics = ServerMetrics()
        metrics.record_batch("L0", 2, [5.0, 7.0])
        stats = metrics.snapshot().per_priority
        assert stats["standard"]["completed"] == 2


# --------------------------------------------------------------------------- HTTP front
class TestHTTPServer:
    def test_http_round_trip_and_introspection(self, deployment, small_split):
        xs = _sample_images(small_split, 6)
        expected = deployment.qmodel.predict_classes(xs, masks=None)
        with Scheduler(deployment, policy="fixed", max_batch_size=8, max_wait_ms=5) as scheduler:
            with PredictionServer(scheduler, port=0) as server:
                client = HTTPClient(server.url)
                assert client.health() == "ok"
                np.testing.assert_array_equal(client.predict_classes(xs), expected)
                # A single un-batched sample is accepted too.
                single = client.predict(xs[0])
                assert single["classes"] == [int(expected[0])]
                metrics = client.metrics()
                assert metrics["requests_completed"] >= 7
                levels = client.levels()
                assert [entry["name"] for entry in levels] == [
                    level.name for level in deployment.levels
                ]

    def test_http_rejects_bad_inputs(self, deployment):
        with Scheduler(deployment) as scheduler:
            with PredictionServer(scheduler, port=0) as server:
                import json
                import urllib.error
                import urllib.request

                def post(body: bytes):
                    request = urllib.request.Request(
                        server.url + "/predict", data=body,
                        headers={"Content-Type": "application/json"}, method="POST",
                    )
                    try:
                        with urllib.request.urlopen(request, timeout=10) as response:
                            return response.status, json.loads(response.read())
                    except urllib.error.HTTPError as error:
                        return error.code, json.loads(error.read())

                assert post(b"not json")[0] == 400
                assert post(b"{}")[0] == 400
                status, payload = post(json.dumps({"inputs": [[1, 2], [3, 4]]}).encode())
                assert status == 400 and "shape" in payload["error"]


# --------------------------------------------------------------------------- workflow integration
class TestServeStage:
    def test_serve_stage_from_points_is_cached(self, tiny_qmodel, small_split):
        from repro.workflow import CalibrateStage, SignificanceStage, UnpackStage

        points = [
            {"label": "exact", "taus": {}, "accuracy": 0.9},
            {"label": "skip", "taus": {"conv1": 0.1, "conv2": 0.1}, "accuracy": 0.8},
        ]
        stages = [
            UnpackStage(),
            CalibrateStage(),
            SignificanceStage(),
            ServeStage(points=points, max_levels=4),
        ]
        inputs = {"qmodel": tiny_qmodel, "calibration_images": small_split.calibration.images}
        store = ArtifactStore()
        first = Experiment(stages, inputs=inputs, store=store).run()
        assert "serve" in first.executed_stages
        deployment = first["serving"]
        assert isinstance(deployment, Deployment)
        assert len(deployment.levels) == 2
        second = Experiment(stages, inputs=inputs, store=store).run()
        assert "serve" in second.cached_stages
        # The cached deployment still serves.
        with Scheduler(second["serving"]) as scheduler:
            assert isinstance(
                Client(scheduler).predict(small_split.test.images[0]), int
            )

    def test_serve_stage_requires_dse_only_without_points(self):
        assert "dse" in ServeStage().requires
        assert "dse" not in ServeStage(points=[{"taus": {}}]).requires


# --------------------------------------------------------------------------- hot-path satellites
class TestScratchBuffers:
    def test_forward_identical_with_and_without_scratch(self, tiny_qmodel, small_split):
        xs = _sample_images(small_split, 9)
        assert not im2col_scratch_enabled()  # allocator recycling is the default
        without = tiny_qmodel.predict_classes(xs, batch_size=4)
        previous = set_im2col_scratch(True)
        try:
            with_scratch_1 = tiny_qmodel.predict_classes(xs, batch_size=4)
            with_scratch_2 = tiny_qmodel.predict_classes(xs, batch_size=4)  # reused buffers
            assert any(layer._cols_scratch is not None for layer in tiny_qmodel.conv_layers())
        finally:
            set_im2col_scratch(previous)
        np.testing.assert_array_equal(with_scratch_1, with_scratch_2)
        np.testing.assert_array_equal(with_scratch_1, without)

    def test_scratch_survives_shape_changes(self, tiny_qmodel, small_split):
        xs = _sample_images(small_split, 10)
        previous = set_im2col_scratch(True)
        try:
            a = tiny_qmodel.predict_classes(xs, batch_size=8)  # chunks of 8 then 2
            b = tiny_qmodel.predict_classes(xs, batch_size=10)
        finally:
            set_im2col_scratch(previous)
        np.testing.assert_array_equal(a, b)

    def test_fingerprint_stable_across_forward(self, tiny_qmodel, small_split):
        before = fingerprint(tiny_qmodel)
        previous = set_im2col_scratch(True)
        try:
            tiny_qmodel.predict_classes(_sample_images(small_split, 5))
        finally:
            set_im2col_scratch(previous)
        assert fingerprint(tiny_qmodel) == before

    def test_scratch_not_pickled(self, tiny_qmodel, small_split):
        previous = set_im2col_scratch(True)
        try:
            tiny_qmodel.predict_classes(_sample_images(small_split, 5))
        finally:
            set_im2col_scratch(previous)
        clone = pickle.loads(pickle.dumps(tiny_qmodel))
        for layer in clone.conv_layers():
            assert layer._cols_scratch is None


# --------------------------------------------------------------------------- artifact store concurrency
class TestArtifactStoreConcurrency:
    def test_concurrent_readers_and_writers(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        errors = []

        def writer(worker: int):
            try:
                for i in range(25):
                    store.save(f"{worker:02d}{i:038x}"[:40].ljust(40, "a"), {"worker": worker, "i": i})
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        def reader():
            try:
                for _ in range(50):
                    for key in store.keys()[:5]:
                        store.get(key)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(store.keys()) == 100

    def test_two_stores_share_one_root(self, tmp_path):
        a = ArtifactStore(tmp_path / "shared")
        b = ArtifactStore(tmp_path / "shared")
        a.save("k" * 40, {"x": 1})
        assert b.load("k" * 40) == {"x": 1}

    def test_partial_write_degrades_to_cache_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = "ab" + "c" * 38
        path = store._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x80\x04garbage-truncated")
        with pytest.raises(KeyError, match="unreadable"):
            store.load(key)
        # A later complete write repairs the entry.
        store2 = ArtifactStore(tmp_path / "store")
        store2.save(key, 42)
        assert store2.load(key) == 42

    def test_no_stale_tmp_files_after_save(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for i in range(5):
            store.save(f"{i:040d}", i)
        assert not list((tmp_path / "store").rglob("*.tmp"))
