"""Tests for the Sequential model container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_micro_cnn, build_tiny_cnn, build_tiny_mlp
from repro.nn import Dense, ReLU, Sequential


@pytest.fixture
def micro_model():
    return build_micro_cnn(input_shape=(8, 8, 1), n_classes=4, rng=0)


class TestSequentialBasics:
    def test_len_iter_getitem(self, micro_model):
        assert len(micro_model) == 5
        assert micro_model[0].name == "conv1"
        assert [layer.name for layer in micro_model][-1] == "fc1"

    def test_unique_layer_names(self):
        model = Sequential([ReLU(name="act"), ReLU(name="act"), ReLU(name="act")], input_shape=(4,))
        names = [layer.name for layer in model]
        assert len(set(names)) == 3

    def test_add(self):
        model = Sequential([Dense(4, 4, rng=0)], input_shape=(4,))
        model.add(ReLU())
        assert len(model) == 2

    def test_train_eval_propagates(self, micro_model):
        micro_model.eval()
        assert all(not layer.training for layer in micro_model)
        micro_model.train()
        assert all(layer.training for layer in micro_model)


class TestForwardBackward:
    def test_forward_shape(self, micro_model, rng):
        x = rng.normal(size=(3, 8, 8, 1)).astype(np.float32)
        out = micro_model.forward(x)
        assert out.shape == (3, 4)

    def test_backward_produces_grads(self, micro_model, rng):
        x = rng.normal(size=(2, 8, 8, 1)).astype(np.float32)
        out = micro_model.forward(x)
        grad_in = micro_model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert all(p.grad is not None for p in micro_model.parameters())
        micro_model.zero_grad()
        assert all(p.grad is None for p in micro_model.parameters())

    def test_predict_batches_match_single_pass(self, micro_model, rng):
        x = rng.normal(size=(10, 8, 8, 1)).astype(np.float32)
        micro_model.eval()
        full = micro_model.forward(x)
        batched = micro_model.predict(x, batch_size=3)
        np.testing.assert_allclose(full, batched, rtol=1e-6)

    def test_predict_classes_shape(self, micro_model, rng):
        x = rng.normal(size=(6, 8, 8, 1)).astype(np.float32)
        classes = micro_model.predict_classes(x)
        assert classes.shape == (6,)
        assert ((classes >= 0) & (classes < 4)).all()


class TestShapeAnalysis:
    def test_layer_shapes_chain(self, micro_model):
        shapes = micro_model.layer_shapes()
        assert shapes[0][1] == (8, 8, 1)
        assert shapes[-1][2] == (4,)
        # Output of each layer is the input of the next.
        for (_, _, out_shape), (_, next_in, _) in zip(shapes, shapes[1:]):
            assert out_shape == next_in

    def test_total_and_conv_macs(self):
        model = build_tiny_cnn(input_shape=(16, 16, 3), rng=0)
        assert model.total_macs() > model.conv_macs() > 0

    def test_topology_counts(self):
        model = build_tiny_cnn(input_shape=(16, 16, 3), rng=0)
        assert model.topology() == {"conv": 2, "pool": 1, "fc": 1}

    def test_requires_input_shape(self):
        model = Sequential([Dense(4, 2, rng=0)])
        with pytest.raises(ValueError):
            model.layer_shapes()

    def test_summary_contains_layers(self, micro_model):
        text = micro_model.summary()
        assert "conv1" in text and "total params" in text

    def test_summary_without_input_shape(self):
        model = Sequential([Dense(4, 2, rng=0)])
        assert "fc" in model.summary() or "Dense" in model.summary()


class TestStateDict:
    def test_roundtrip_preserves_outputs(self, rng):
        model_a = build_tiny_mlp(in_features=8, n_classes=3, rng=1)
        model_b = build_tiny_mlp(in_features=8, n_classes=3, rng=2)
        x = rng.normal(size=(5, 8)).astype(np.float32)
        assert not np.allclose(model_a.forward(x), model_b.forward(x))
        model_b.load_state_dict(model_a.state_dict())
        np.testing.assert_allclose(model_a.forward(x), model_b.forward(x), rtol=1e-6)

    def test_missing_layer_raises(self):
        model = build_tiny_mlp(rng=0)
        state = model.state_dict()
        state.pop("fc1")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = build_tiny_mlp(rng=0)
        state = model.state_dict()
        state["fc1"]["weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_config_serialisable(self, micro_model):
        import json

        config = micro_model.config()
        text = json.dumps(config)
        assert "conv1" in text
        assert config["input_shape"] == [8, 8, 1]
