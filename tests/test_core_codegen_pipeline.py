"""Tests for code generation (stage 4) and the end-to-end pipeline orchestration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AtamanPipeline,
    DSEConfig,
    estimate_code_bytes,
    generate_layer_code,
    generate_model_code,
)
from repro.core.codegen import flash_report
from repro.frameworks import AtamanEngine
from repro.isa import STM32U575
from repro.mcu.deploy import DeploymentReport


class TestCodegen:
    def test_layer_code_contains_smlad_and_constants(self, tiny_unpacked):
        layer = next(iter(tiny_unpacked.values()))
        code = generate_layer_code(layer, max_channels=1)
        assert "__SMLAD" in code
        assert "requantize(" in code
        assert layer.name in code
        assert "0x" in code  # hard-wired packed weight constants

    def test_layer_code_reports_skipping(self, tiny_unpacked, tiny_significance):
        name, layer = next(iter(tiny_unpacked.items()))
        from repro.core import build_skip_mask

        mask = build_skip_mask(tiny_significance[name], 0.05)
        code = generate_layer_code(layer, mask, max_channels=1)
        skipped = layer.total_operands - int(mask.sum())
        assert f"{skipped} skipped" in code

    def test_layer_code_mask_shape_validation(self, tiny_unpacked):
        layer = next(iter(tiny_unpacked.values()))
        with pytest.raises(ValueError):
            generate_layer_code(layer, np.ones((1, 1), dtype=bool))

    def test_mask_shape_error_is_diagnosable(self, tiny_unpacked):
        """The mismatch error must name the layer and both shapes -- not a
        NumPy broadcasting traceback from deep inside the emitter."""
        name, layer = next(iter(tiny_unpacked.items()))
        bad = np.ones((layer.out_channels, layer.operands_per_channel + 1), dtype=bool)
        with pytest.raises(ValueError) as excinfo:
            generate_layer_code(layer, bad)
        message = str(excinfo.value)
        assert name in message
        assert str(bad.shape) in message and str(layer.weights.shape) in message

    def test_model_code_mask_shape_error_names_layer(self, tiny_unpacked):
        """A wrong-shaped mask buried in the model-level dict fails the same way."""
        name = next(iter(tiny_unpacked))
        with pytest.raises(ValueError, match=name):
            generate_model_code(tiny_unpacked, masks={name: np.ones((2, 3), dtype=bool)})

    def test_transposed_mask_rejected(self, tiny_unpacked):
        layer = next(iter(tiny_unpacked.values()))
        transposed = np.ones(layer.weights.shape[::-1], dtype=bool)
        if transposed.shape != layer.weights.shape:  # guard for square layers
            with pytest.raises(ValueError):
                generate_layer_code(layer, transposed)

    def test_model_code_has_dispatch(self, tiny_unpacked):
        code = generate_model_code(tiny_unpacked, model_name="tiny_cnn")
        assert "tiny_cnn_run" in code
        for name in tiny_unpacked:
            assert f"{name}_unpacked" in code

    def test_estimate_code_bytes_consistent_with_layers(self, tiny_unpacked):
        total = estimate_code_bytes(tiny_unpacked)
        assert total == sum(layer.code_bytes() for layer in tiny_unpacked.values())

    def test_masks_shrink_code(self, tiny_unpacked, tiny_significance):
        masks = {
            name: tiny_significance[name] > 0.05 for name in tiny_unpacked if name in tiny_significance
        }
        assert estimate_code_bytes(tiny_unpacked, masks) < estimate_code_bytes(tiny_unpacked)

    def test_flash_report_totals(self, tiny_qmodel, tiny_unpacked):
        report = flash_report(tiny_qmodel, tiny_unpacked)
        assert report["total"] == report["total_unpacked_code"] + report["remaining_weights"]
        assert report["remaining_weights"] > 0  # the dense classifier stays as data


class TestCodegenEdgeCases:
    """Edge cases asserted on both renderings: C text and IR lowering."""

    def test_padded_conv_emits_and_lowers(self, tiny_qmodel, tiny_unpacked):
        """The tiny CNN convs are padded; text and IR must agree on geometry."""
        from repro.vm import lower_layer

        for name, layer in tiny_unpacked.items():
            qlayer = tiny_qmodel.get_layer(name)
            assert qlayer.padding != (0, 0)
            code = generate_layer_code(layer, max_channels=1)
            assert f"{name}_unpacked" in code
            program = lower_layer(qlayer, layer)
            assert program.padding == qlayer.padding
            # Positions follow the *padded* output geometry.
            in_shape = tiny_qmodel.layer_input_shapes()[name]
            out_h, out_w, _ = qlayer.output_shape(in_shape)
            assert program.spatial_positions(in_shape) == out_h * out_w

    def test_max_channels_caps_text_but_not_ir(self, tiny_qmodel, tiny_unpacked):
        from repro.vm import lower_layer

        name, layer = next(iter(tiny_unpacked.items()))
        code = generate_layer_code(layer, max_channels=1)
        assert f"{layer.out_channels - 1} further output channels elided" in code
        assert code.count("requantize(") == 1
        # The capped emission is presentation only: the full code size stays
        # in the header and the IR always lowers every channel.
        assert f"estimated code size: {layer.code_bytes()} bytes" in code
        program = lower_layer(tiny_qmodel.get_layer(name), layer)
        stores = [i for i in program.instructions if i.op.value == "store"]
        assert len(stores) == layer.out_channels

    def test_all_skipped_layer_text_and_ir(self, tiny_qmodel, tiny_unpacked):
        from repro.vm import Opcode, lower_layer

        name, layer = next(iter(tiny_unpacked.items()))
        mask = np.zeros_like(layer.weights, dtype=bool)
        code = generate_layer_code(layer, mask, max_channels=2)
        assert "__SMLAD" not in code  # no MAC instructions remain
        assert f"0 retained ({layer.total_operands} skipped)" in code
        assert "requantize(" in code  # the epilogue survives
        program = lower_layer(tiny_qmodel.get_layer(name), layer, mask)
        ops = {i.op for i in program.instructions}
        assert Opcode.SMLAD not in ops and Opcode.MLA not in ops
        assert program.retained_operands == 0
        # init_acc degenerates to the raw bias (no retained-weight correction).
        np.testing.assert_array_equal(
            program.init_acc, tiny_qmodel.get_layer(name).bias.astype(np.int64)
        )

    def test_odd_retained_count_emits_mla_tail(self, tiny_qmodel, tiny_unpacked):
        """An odd retained count pairs all but one operand and emits the
        scalar-MAC tail in both renderings."""
        from repro.vm import Opcode, lower_layer

        name, layer = next(iter(tiny_unpacked.items()))
        mask = np.ones_like(layer.weights, dtype=bool)
        # Force an odd retained count on channel 0 regardless of K's parity.
        drop = 3 if layer.operands_per_channel % 2 == 0 else 4
        mask[0, :drop] = False
        code = generate_layer_code(layer, mask, max_channels=1)
        assert "* (int32_t)in[" in code  # the odd-tail scalar MAC
        program = lower_layer(tiny_qmodel.get_layer(name), layer, mask)
        channel0 = [i for i in program.instructions if i.channel == 0]
        assert sum(1 for i in channel0 if i.op is Opcode.MLA) == 1


class TestPipeline:
    def test_result_contains_all_stages(self, tiny_pipeline_result, tiny_qmodel):
        result = tiny_pipeline_result
        assert set(result.unpacked) == {layer.name for layer in tiny_qmodel.conv_layers()}
        assert set(result.significance.layer_names()) == set(result.unpacked)
        assert result.baseline_accuracy == result.dse.baseline_accuracy
        assert len(result.pareto_points()) >= 1

    def test_select_respects_budget(self, tiny_pipeline_result):
        design = tiny_pipeline_result.select(0.05)
        assert design is not None
        assert design.accuracy >= tiny_pipeline_result.baseline_accuracy - 0.05

    def test_build_engine_exact_and_approximate(self, tiny_qmodel, tiny_pipeline_result):
        pipeline = AtamanPipeline(tiny_qmodel)
        exact_engine = pipeline.build_engine(tiny_pipeline_result)
        assert isinstance(exact_engine, AtamanEngine)
        assert exact_engine.masks is None

        design = tiny_pipeline_result.select(0.10)
        approx_engine = pipeline.build_engine(tiny_pipeline_result, design=design)
        if not design.config.is_exact:
            assert approx_engine.masks is not None
            assert approx_engine.total_macs() <= exact_engine.total_macs()

    def test_build_engine_rejects_both_args(self, tiny_qmodel, tiny_pipeline_result):
        pipeline = AtamanPipeline(tiny_qmodel)
        design = tiny_pipeline_result.select(0.10)
        with pytest.raises(ValueError):
            pipeline.build_engine(tiny_pipeline_result, design=design, config=design.config)

    def test_deploy_returns_report(self, tiny_qmodel, tiny_pipeline_result, small_split):
        pipeline = AtamanPipeline(tiny_qmodel, board=STM32U575)
        report = pipeline.deploy(
            tiny_pipeline_result,
            max_accuracy_loss=0.10,
            eval_images=small_split.test.images[:64],
            eval_labels=small_split.test.labels[:64],
        )
        assert isinstance(report, DeploymentReport)
        assert report.latency_ms > 0
        assert report.fits

    def test_deploy_impossible_budget(self, tiny_qmodel, small_split):
        pipeline = AtamanPipeline(tiny_qmodel)
        # Build a result whose points all miss an absurd accuracy bar by
        # faking the baseline accuracy.
        result = pipeline.run(
            small_split.calibration.images,
            small_split.test.images[:48],
            small_split.test.labels[:48],
            dse_config=DSEConfig(tau_values=[0.05]),
        )
        result.dse.baseline_accuracy = 2.0  # nothing can be within 0 loss of this
        with pytest.raises(ValueError):
            pipeline.deploy(result, max_accuracy_loss=0.0)

    def test_generate_code_for_design(self, tiny_qmodel, tiny_pipeline_result):
        pipeline = AtamanPipeline(tiny_qmodel)
        design = tiny_pipeline_result.select(0.10)
        code = pipeline.generate_code(tiny_pipeline_result, design=design)
        assert "__SMLAD" in code
        assert tiny_qmodel.name + "_run" in code

    def test_from_float_model(self, trained_tiny_model, small_split):
        pipeline = AtamanPipeline.from_float_model(
            trained_tiny_model, small_split.calibration.images
        )
        assert len(pipeline.qmodel.conv_layers()) == 2

    def test_include_dense_extension(self, tiny_qmodel, small_split):
        pipeline = AtamanPipeline(tiny_qmodel, include_dense=True)
        unpacked = pipeline.unpack()
        assert any(not layer.is_conv for layer in unpacked.values())
        calibration = pipeline.calibrate(small_split.calibration.images[:16])
        significance = pipeline.significance(calibration)
        assert set(significance.layer_names()) == set(unpacked)
