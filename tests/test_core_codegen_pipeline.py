"""Tests for code generation (stage 4) and the end-to-end pipeline orchestration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ApproxConfig,
    AtamanPipeline,
    DSEConfig,
    estimate_code_bytes,
    generate_layer_code,
    generate_model_code,
)
from repro.core.codegen import flash_report
from repro.frameworks import AtamanEngine
from repro.isa import STM32U575
from repro.mcu.deploy import DeploymentReport


class TestCodegen:
    def test_layer_code_contains_smlad_and_constants(self, tiny_unpacked):
        layer = next(iter(tiny_unpacked.values()))
        code = generate_layer_code(layer, max_channels=1)
        assert "__SMLAD" in code
        assert "requantize(" in code
        assert layer.name in code
        assert "0x" in code  # hard-wired packed weight constants

    def test_layer_code_reports_skipping(self, tiny_unpacked, tiny_significance):
        name, layer = next(iter(tiny_unpacked.items()))
        from repro.core import build_skip_mask

        mask = build_skip_mask(tiny_significance[name], 0.05)
        code = generate_layer_code(layer, mask, max_channels=1)
        skipped = layer.total_operands - int(mask.sum())
        assert f"{skipped} skipped" in code

    def test_layer_code_mask_shape_validation(self, tiny_unpacked):
        layer = next(iter(tiny_unpacked.values()))
        with pytest.raises(ValueError):
            generate_layer_code(layer, np.ones((1, 1), dtype=bool))

    def test_model_code_has_dispatch(self, tiny_unpacked):
        code = generate_model_code(tiny_unpacked, model_name="tiny_cnn")
        assert "tiny_cnn_run" in code
        for name in tiny_unpacked:
            assert f"{name}_unpacked" in code

    def test_estimate_code_bytes_consistent_with_layers(self, tiny_unpacked):
        total = estimate_code_bytes(tiny_unpacked)
        assert total == sum(layer.code_bytes() for layer in tiny_unpacked.values())

    def test_masks_shrink_code(self, tiny_unpacked, tiny_significance):
        masks = {
            name: tiny_significance[name] > 0.05 for name in tiny_unpacked if name in tiny_significance
        }
        assert estimate_code_bytes(tiny_unpacked, masks) < estimate_code_bytes(tiny_unpacked)

    def test_flash_report_totals(self, tiny_qmodel, tiny_unpacked):
        report = flash_report(tiny_qmodel, tiny_unpacked)
        assert report["total"] == report["total_unpacked_code"] + report["remaining_weights"]
        assert report["remaining_weights"] > 0  # the dense classifier stays as data


class TestPipeline:
    def test_result_contains_all_stages(self, tiny_pipeline_result, tiny_qmodel):
        result = tiny_pipeline_result
        assert set(result.unpacked) == {layer.name for layer in tiny_qmodel.conv_layers()}
        assert set(result.significance.layer_names()) == set(result.unpacked)
        assert result.baseline_accuracy == result.dse.baseline_accuracy
        assert len(result.pareto_points()) >= 1

    def test_select_respects_budget(self, tiny_pipeline_result):
        design = tiny_pipeline_result.select(0.05)
        assert design is not None
        assert design.accuracy >= tiny_pipeline_result.baseline_accuracy - 0.05

    def test_build_engine_exact_and_approximate(self, tiny_qmodel, tiny_pipeline_result):
        pipeline = AtamanPipeline(tiny_qmodel)
        exact_engine = pipeline.build_engine(tiny_pipeline_result)
        assert isinstance(exact_engine, AtamanEngine)
        assert exact_engine.masks is None

        design = tiny_pipeline_result.select(0.10)
        approx_engine = pipeline.build_engine(tiny_pipeline_result, design=design)
        if not design.config.is_exact:
            assert approx_engine.masks is not None
            assert approx_engine.total_macs() <= exact_engine.total_macs()

    def test_build_engine_rejects_both_args(self, tiny_qmodel, tiny_pipeline_result):
        pipeline = AtamanPipeline(tiny_qmodel)
        design = tiny_pipeline_result.select(0.10)
        with pytest.raises(ValueError):
            pipeline.build_engine(tiny_pipeline_result, design=design, config=design.config)

    def test_deploy_returns_report(self, tiny_qmodel, tiny_pipeline_result, small_split):
        pipeline = AtamanPipeline(tiny_qmodel, board=STM32U575)
        report = pipeline.deploy(
            tiny_pipeline_result,
            max_accuracy_loss=0.10,
            eval_images=small_split.test.images[:64],
            eval_labels=small_split.test.labels[:64],
        )
        assert isinstance(report, DeploymentReport)
        assert report.latency_ms > 0
        assert report.fits

    def test_deploy_impossible_budget(self, tiny_qmodel, small_split):
        pipeline = AtamanPipeline(tiny_qmodel)
        # Build a result whose points all miss an absurd accuracy bar by
        # faking the baseline accuracy.
        result = pipeline.run(
            small_split.calibration.images,
            small_split.test.images[:48],
            small_split.test.labels[:48],
            dse_config=DSEConfig(tau_values=[0.05]),
        )
        result.dse.baseline_accuracy = 2.0  # nothing can be within 0 loss of this
        with pytest.raises(ValueError):
            pipeline.deploy(result, max_accuracy_loss=0.0)

    def test_generate_code_for_design(self, tiny_qmodel, tiny_pipeline_result):
        pipeline = AtamanPipeline(tiny_qmodel)
        design = tiny_pipeline_result.select(0.10)
        code = pipeline.generate_code(tiny_pipeline_result, design=design)
        assert "__SMLAD" in code
        assert tiny_qmodel.name + "_run" in code

    def test_from_float_model(self, trained_tiny_model, small_split):
        pipeline = AtamanPipeline.from_float_model(
            trained_tiny_model, small_split.calibration.images
        )
        assert len(pipeline.qmodel.conv_layers()) == 2

    def test_include_dense_extension(self, tiny_qmodel, small_split):
        pipeline = AtamanPipeline(tiny_qmodel, include_dense=True)
        unpacked = pipeline.unpack()
        assert any(not layer.is_conv for layer in unpacked.values())
        calibration = pipeline.calibrate(small_split.calibration.images[:16])
        significance = pipeline.significance(calibration)
        assert set(significance.layer_names()) == set(unpacked)
