"""Tests for the instruction-level trace model of the unpacked kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    COST_PARAMS,
    ExecutionStyle,
    OPCODE_CYCLES,
    effective_cycles_per_mac,
    trace_model_cycles,
    trace_unpacked_conv,
)


def _weights(out_c=4, k=27, seed=0):
    return np.random.default_rng(seed).integers(-127, 128, size=(out_c, k), dtype=np.int8)


class TestTraceConstruction:
    def test_opcode_counts_exact_layer(self):
        weights = _weights(out_c=2, k=6)
        trace = trace_unpacked_conv(weights, spatial_positions=10)
        # 3 SMLAD pairs per channel, 2 channels.
        assert trace.opcode_counts["SMLAD"] == 6
        assert trace.opcode_counts["MOVW"] == 6
        assert trace.opcode_counts["MOVT"] == 6
        # One activation load per pair + one bias load per channel.
        assert trace.opcode_counts["LDR"] == 6 + 2
        assert trace.opcode_counts["MLA"] == 0
        assert trace.opcode_counts["STRB"] == 2
        assert trace.spatial_positions == 10

    def test_odd_operand_uses_single_mac(self):
        weights = _weights(out_c=1, k=5)
        trace = trace_unpacked_conv(weights, spatial_positions=1)
        assert trace.opcode_counts["SMLAD"] == 2
        assert trace.opcode_counts["MLA"] == 1
        assert trace.opcode_counts["LDRB"] == 1

    def test_mask_removes_instructions(self):
        weights = _weights(out_c=3, k=20)
        full = trace_unpacked_conv(weights, spatial_positions=4)
        mask = np.zeros_like(weights, dtype=bool)
        mask[:, :10] = True
        masked = trace_unpacked_conv(weights, spatial_positions=4, mask=mask)
        assert masked.opcode_counts["SMLAD"] == full.opcode_counts["SMLAD"] // 2
        assert masked.instructions_per_position < full.instructions_per_position
        assert masked.code_bytes < full.code_bytes

    def test_empty_mask_keeps_epilogue_only(self):
        weights = _weights(out_c=2, k=8)
        mask = np.zeros_like(weights, dtype=bool)
        trace = trace_unpacked_conv(weights, spatial_positions=1, mask=mask)
        assert trace.opcode_counts["SMLAD"] == 0
        assert trace.opcode_counts["STRB"] == 2  # outputs still produced (bias only)

    def test_validation(self):
        weights = _weights()
        with pytest.raises(ValueError):
            trace_unpacked_conv(weights, spatial_positions=0)
        with pytest.raises(ValueError):
            trace_unpacked_conv(np.zeros(5, np.int8), spatial_positions=1)
        with pytest.raises(ValueError):
            trace_unpacked_conv(weights, spatial_positions=1, mask=np.ones((1, 1), bool))


class TestTraceCosting:
    def test_cycles_positive_and_scale_with_positions(self):
        weights = _weights()
        t1 = trace_unpacked_conv(weights, spatial_positions=1)
        t10 = trace_unpacked_conv(weights, spatial_positions=10)
        assert t10.total_cycles() == pytest.approx(10 * t1.total_cycles(), rel=1e-9)
        assert t1.cycles_per_position() > 0

    def test_flash_wait_states_increase_cycles(self):
        weights = _weights()
        trace = trace_unpacked_conv(weights, spatial_positions=1)
        assert trace.cycles_per_position(flash_wait_per_word=0.5) > trace.cycles_per_position(0.0)

    def test_all_opcodes_have_costs(self):
        weights = _weights(out_c=3, k=7)
        trace = trace_unpacked_conv(weights, spatial_positions=2)
        for opcode in trace.opcode_counts:
            assert opcode in OPCODE_CYCLES

    def test_trace_model_cycles_sums(self):
        traces = [trace_unpacked_conv(_weights(seed=s), spatial_positions=3) for s in range(3)]
        assert trace_model_cycles(traces) == pytest.approx(sum(t.total_cycles() for t in traces))

    def test_effective_cycles_per_mac_consistent_with_cost_model(self):
        """The trace-implied per-MAC cost should be in the neighbourhood of the
        aggregate UNPACKED cost-model constant (same order, within ~2x)."""
        weights = _weights(out_c=32, k=400, seed=3)
        trace = trace_unpacked_conv(weights, spatial_positions=1)
        per_mac = effective_cycles_per_mac(trace, retained_macs_per_position=32 * 400)
        analytic = COST_PARAMS[ExecutionStyle.UNPACKED].cycles_per_mac
        assert 0.5 * analytic < per_mac < 2.0 * analytic

    def test_effective_cycles_validation(self):
        trace = trace_unpacked_conv(_weights(), spatial_positions=1)
        with pytest.raises(ValueError):
            effective_cycles_per_mac(trace, 0)

    def test_as_dict(self):
        trace = trace_unpacked_conv(_weights(), spatial_positions=2, name="conv_x")
        payload = trace.as_dict()
        assert payload["name"] == "conv_x"
        assert payload["total_cycles"] == pytest.approx(trace.total_cycles())


@given(out_c=st.integers(1, 8), k=st.integers(1, 64), positions=st.integers(1, 50))
@settings(max_examples=40, deadline=None)
def test_trace_instruction_count_property(out_c, k, positions):
    """Instruction counts grow linearly with retained operands and channels."""
    weights = np.random.default_rng(0).integers(-127, 128, size=(out_c, k), dtype=np.int8)
    trace = trace_unpacked_conv(weights, spatial_positions=positions)
    pairs, odd = divmod(k, 2)
    assert trace.opcode_counts["SMLAD"] == out_c * pairs
    assert trace.opcode_counts["MLA"] == out_c * odd
    assert trace.spatial_positions == positions
    assert trace.code_bytes == 4 * trace.instructions_per_position
