"""Tests for repro.utils (rng, serialization, validation, parallel, logging)."""

from __future__ import annotations

import logging

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    as_rng,
    check_choice,
    check_dtype,
    check_in_range,
    check_positive,
    check_shape,
    get_logger,
    load_json,
    load_npz,
    parallel_map,
    save_json,
    save_npz,
    set_verbosity,
    spawn_rngs,
)
from repro.utils.rng import deterministic_hash, permutation_batches


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        a, b = as_rng(42), as_rng(42)
        assert np.array_equal(a.integers(0, 100, 10), b.integers(0, 100, 10))

    def test_as_rng_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_from_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        gen = as_rng(ss)
        assert isinstance(gen, np.random.Generator)

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(0, 3)
        assert len(children) == 3
        draws = [c.integers(0, 1_000_000) for c in children]
        assert len(set(draws)) > 1

    def test_spawn_rngs_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_rngs_from_generator(self):
        children = spawn_rngs(np.random.default_rng(3), 2)
        assert len(children) == 2

    @pytest.mark.parametrize("n_items,batch_size", [(10, 3), (9, 3), (1, 4), (20, 20)])
    def test_permutation_batches_cover_all(self, n_items, batch_size):
        batches = list(permutation_batches(n_items, batch_size, rng=0))
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(n_items))

    def test_permutation_batches_drop_last(self):
        batches = list(permutation_batches(10, 3, rng=0, drop_last=True))
        assert all(len(b) == 3 for b in batches)
        assert len(batches) == 3

    def test_permutation_batches_invalid_batch(self):
        with pytest.raises(ValueError):
            list(permutation_batches(10, 0))

    def test_deterministic_hash_stable(self):
        assert deterministic_hash(["a", 1, 2.5]) == deterministic_hash(["a", 1, 2.5])
        assert deterministic_hash(["a"]) != deterministic_hash(["b"])


class TestSerialization:
    def test_json_roundtrip_with_numpy_types(self, tmp_path):
        payload = {
            "int": np.int64(3),
            "float": np.float32(1.5),
            "bool": np.bool_(True),
            "array": np.arange(4),
            "nested": {"x": [1, 2, 3]},
        }
        path = save_json(tmp_path / "sub" / "payload.json", payload)
        loaded = load_json(path)
        assert loaded["int"] == 3
        assert loaded["float"] == pytest.approx(1.5)
        assert loaded["bool"] is True
        assert loaded["array"] == [0, 1, 2, 3]
        assert loaded["nested"]["x"] == [1, 2, 3]

    def test_npz_roundtrip(self, tmp_path):
        arrays = {"a": np.arange(6).reshape(2, 3), "b": np.ones(4, dtype=np.float32)}
        path = save_npz(tmp_path / "arrays.npz", arrays)
        loaded = load_npz(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])

    def test_npz_uncompressed(self, tmp_path):
        path = save_npz(tmp_path / "raw.npz", {"x": np.zeros(3)}, compress=False)
        assert load_npz(path)["x"].shape == (3,)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5
        assert check_positive("x", 0.0, strict=False) == 0.0

    @pytest.mark.parametrize("value,strict", [(0, True), (-1, True), (-0.5, False)])
    def test_check_positive_rejects(self, value, strict):
        with pytest.raises(ValueError):
            check_positive("x", value, strict=strict)

    def test_check_in_range(self):
        assert check_in_range("x", 0.5, 0, 1) == 0.5
        with pytest.raises(ValueError):
            check_in_range("x", 1.5, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0, 1, inclusive=(False, True))

    def test_check_shape(self):
        arr = np.zeros((2, 3))
        check_shape("x", arr, (2, 3))
        check_shape("x", arr, (None, 3))
        with pytest.raises(ValueError):
            check_shape("x", arr, (3, 2))
        with pytest.raises(ValueError):
            check_shape("x", arr, (2, 3, 1))

    def test_check_dtype(self):
        arr = np.zeros(3, dtype=np.int8)
        check_dtype("x", arr, [np.int8, np.int16])
        with pytest.raises(TypeError):
            check_dtype("x", arr, [np.float32])

    def test_check_choice(self):
        assert check_choice("x", "a", ["a", "b"]) == "a"
        with pytest.raises(ValueError):
            check_choice("x", "c", ["a", "b"])


def _square(x):
    return x * x


class TestParallel:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], n_workers=1) == [1, 4, 9]

    def test_small_inputs_stay_serial(self):
        assert parallel_map(_square, [2], n_workers=8) == [4]

    def test_pool_path_preserves_order(self):
        items = list(range(40))
        result = parallel_map(_square, items, n_workers=2, min_items_for_pool=2)
        assert result == [x * x for x in items]

    def test_generator_input(self):
        assert parallel_map(_square, (x for x in range(5)), n_workers=1) == [0, 1, 4, 9, 16]


class TestLogging:
    def test_get_logger_namespaced(self):
        logger = get_logger("unit.test")
        assert logger.name == "repro.unit.test"

    def test_set_verbosity_accepts_strings(self):
        set_verbosity("DEBUG")
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(logging.WARNING)
        assert logging.getLogger("repro").level == logging.WARNING


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20))
@settings(max_examples=25, deadline=None)
def test_deterministic_hash_property(values):
    assert deterministic_hash(values) == deterministic_hash(list(values))
    assert 0 <= deterministic_hash(values) < 2**32
