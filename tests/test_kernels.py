"""Tests for the CMSIS-NN-style int8 kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    CycleCounter,
    KernelStats,
    avg_pool_s8,
    convolve_s8,
    fully_connected_s8,
    im2col_s8,
    max_pool_s8,
    pack_weight_pair,
    pack_weight_vector,
    relu_s8,
    smlad,
    softmax_s8,
    unpack_weight_pair,
)
from repro.kernels.accumulate import exact_matmul_dtype, integer_matmul
from repro.kernels.smlad import smlad_dot


def naive_convolve_s8(x, weights, bias, in_zp, out_zp, multipliers, stride, padding, act_min, act_max, mask=None):
    """Loop-based reference of the s8 convolution (slow, unquestionably correct)."""
    n, in_h, in_w, in_c = x.shape
    out_c, kh, kw, _ = weights.shape
    sh, sw = stride
    ph, pw = padding
    xp = np.full((n, in_h + 2 * ph, in_w + 2 * pw, in_c), in_zp, dtype=np.int64)
    xp[:, ph : ph + in_h, pw : pw + in_w, :] = x
    out_h = (in_h + 2 * ph - kh) // sh + 1
    out_w = (in_w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, out_h, out_w, out_c), dtype=np.int64)
    w_mat = weights.reshape(out_c, -1).astype(np.int64)
    if mask is not None:
        w_mat = w_mat * mask
    for b in range(n):
        for i in range(out_h):
            for j in range(out_w):
                patch = xp[b, i * sh : i * sh + kh, j * sw : j * sw + kw, :].reshape(-1)
                for c in range(out_c):
                    acc = int(((patch - in_zp) * w_mat[c]).sum())
                    if bias is not None:
                        acc += int(bias[c])
                    value = int(np.rint(acc * multipliers[c])) + out_zp
                    out[b, i, j, c] = np.clip(value, act_min, act_max)
    return out.astype(np.int8)


class TestSmlad:
    def test_paper_example(self):
        """Section II-B: w1=64, w2=20 packs to 4194324."""
        assert pack_weight_pair(64, 20) == 64 * 2**16 + 20 == 4194324

    @pytest.mark.parametrize("hi,lo", [(0, 0), (127, -128), (-1, 1), (-128, -128), (5, -7)])
    def test_pack_unpack_roundtrip(self, hi, lo):
        assert unpack_weight_pair(pack_weight_pair(hi, lo)) == (hi, lo)

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_weight_pair(200, 0)

    def test_smlad_accumulates_both_lanes(self):
        packed_w = pack_weight_pair(3, -2)
        packed_x = pack_weight_pair(10, 5)
        assert smlad(packed_w, packed_x, acc=7) == 7 + 3 * 10 + (-2) * 5

    def test_smlad_dot_matches_plain_dot(self, rng):
        w = rng.integers(-127, 128, size=11).astype(np.int8)
        x = rng.integers(-128, 128, size=11).astype(np.int8)
        assert smlad_dot(w, x) == int(w.astype(np.int64) @ x.astype(np.int64))

    def test_pack_weight_vector_pads_odd_lengths(self):
        packed = pack_weight_vector(np.array([1, 2, 3], dtype=np.int8))
        assert packed.shape == (2,)
        assert unpack_weight_pair(int(packed[1])) == (3, 0)

    @given(st.integers(-128, 127), st.integers(-128, 127))
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_property(self, hi, lo):
        assert unpack_weight_pair(pack_weight_pair(hi, lo)) == (hi, lo)


class TestAccumulate:
    def test_dtype_selection(self):
        assert exact_matmul_dtype(10) == np.float32
        assert exact_matmul_dtype(5000) == np.float64

    def test_integer_matmul_exact_large_k(self, rng):
        a = rng.integers(-128, 128, size=(4, 3000)).astype(np.int64)
        b = rng.integers(-127, 128, size=(3000, 5)).astype(np.int64)
        np.testing.assert_array_equal(integer_matmul(a, b), a @ b)

    def test_integer_matmul_exact_small_k(self, rng):
        a = rng.integers(-128, 128, size=(7, 64)).astype(np.int64)
        b = rng.integers(-127, 128, size=(64, 3)).astype(np.int64)
        np.testing.assert_array_equal(integer_matmul(a, b), a @ b)


class TestIm2colS8:
    def test_pads_with_zero_point(self):
        x = np.full((1, 2, 2, 1), 5, dtype=np.int8)
        cols = im2col_s8(x, (3, 3), (1, 1), (1, 1), input_zero_point=-9)
        assert (cols[0, 0, 0] == -9).sum() == 5

    def test_requires_int8(self):
        with pytest.raises(TypeError):
            im2col_s8(np.zeros((1, 2, 2, 1), np.int32), (2, 2), (1, 1), (0, 0), 0)

    def test_zero_point_range(self):
        with pytest.raises(ValueError):
            im2col_s8(np.zeros((1, 2, 2, 1), np.int8), (2, 2), (1, 1), (0, 0), 300)


class TestConvolveS8:
    def _setup(self, rng, n=2, h=5, w=5, cin=3, cout=4, k=3, stride=(1, 1), padding=(1, 1)):
        x = rng.integers(-128, 128, size=(n, h, w, cin), dtype=np.int8)
        weights = rng.integers(-127, 128, size=(cout, k, k, cin), dtype=np.int8)
        bias = rng.integers(-500, 500, size=cout).astype(np.int64)
        multipliers = rng.uniform(1e-4, 5e-3, size=cout)
        return x, weights, bias, multipliers, stride, padding

    @pytest.mark.parametrize("stride,padding", [((1, 1), (1, 1)), ((1, 1), (0, 0)), ((2, 2), (1, 1))])
    def test_matches_naive_reference(self, rng, stride, padding):
        x, weights, bias, multipliers, *_ = self._setup(rng)
        out = convolve_s8(x, weights, bias, -3, 4, multipliers, stride, padding, -128, 127)
        expected = naive_convolve_s8(x, weights, bias, -3, 4, multipliers, stride, padding, -128, 127)
        np.testing.assert_array_equal(out, expected)

    def test_masked_matches_naive_masked(self, rng):
        x, weights, bias, multipliers, stride, padding = self._setup(rng)
        mask = rng.random((4, 27)) > 0.5
        out = convolve_s8(x, weights, bias, -3, 4, multipliers, stride, padding, -128, 127, weight_mask=mask)
        expected = naive_convolve_s8(x, weights, bias, -3, 4, multipliers, stride, padding, -128, 127, mask=mask)
        np.testing.assert_array_equal(out, expected)

    def test_all_true_mask_equals_no_mask(self, rng):
        x, weights, bias, multipliers, stride, padding = self._setup(rng)
        full_mask = np.ones((4, 27), dtype=bool)
        a = convolve_s8(x, weights, bias, -3, 4, multipliers, stride, padding)
        b = convolve_s8(x, weights, bias, -3, 4, multipliers, stride, padding, weight_mask=full_mask)
        np.testing.assert_array_equal(a, b)

    def test_fused_relu_clamps_at_zero_point(self, rng):
        x, weights, bias, multipliers, stride, padding = self._setup(rng)
        out_zp = -4
        out = convolve_s8(x, weights, bias, -3, out_zp, multipliers, stride, padding,
                          activation_min=out_zp, activation_max=127)
        assert out.min() >= out_zp

    def test_counter_records_mac_split(self, rng):
        x, weights, bias, multipliers, stride, padding = self._setup(rng, n=1)
        mask = np.zeros((4, 27), dtype=bool)
        mask[:, :10] = True
        counter = CycleCounter()
        convolve_s8(x, weights, bias, -3, 4, multipliers, stride, padding, weight_mask=mask,
                    counter=counter, section="conv_test")
        stats = counter.get("conv_test")
        patches = 1 * 5 * 5
        assert stats.macs == patches * 4 * 10
        assert stats.macs_skipped == patches * 4 * 17
        assert stats.total_mac_slots == patches * 4 * 27
        assert stats.output_elements == patches * 4

    def test_input_validation(self, rng):
        x, weights, bias, multipliers, stride, padding = self._setup(rng)
        with pytest.raises(TypeError):
            convolve_s8(x.astype(np.int32), weights, bias, 0, 0, multipliers)
        with pytest.raises(ValueError):
            convolve_s8(x, weights[:, :, :, :2], bias, 0, 0, multipliers)
        with pytest.raises(ValueError):
            convolve_s8(x, weights, bias[:2], 0, 0, multipliers)
        with pytest.raises(ValueError):
            convolve_s8(x, weights, bias, 0, 0, multipliers, weight_mask=np.ones((2, 2), bool))

    def test_saturation_behaviour(self):
        x = np.full((1, 3, 3, 1), 127, dtype=np.int8)
        weights = np.full((1, 3, 3, 1), 127, dtype=np.int8)
        out = convolve_s8(x, weights, None, 0, 0, np.array([1.0]), (1, 1), (0, 0))
        assert out[0, 0, 0, 0] == 127  # saturated, not wrapped


class TestFullyConnectedS8:
    def test_matches_manual_computation(self, rng):
        x = rng.integers(-128, 128, size=(3, 6), dtype=np.int8)
        weights = rng.integers(-127, 128, size=(6, 4), dtype=np.int8)
        bias = rng.integers(-100, 100, size=4).astype(np.int64)
        multipliers = np.full(4, 2e-3)
        out = fully_connected_s8(x, weights, bias, -2, 1, multipliers)
        acc = (x.astype(np.int64) - (-2)) @ weights.astype(np.int64) + bias
        expected = np.clip(np.rint(acc * multipliers) + 1, -128, 127).astype(np.int8)
        np.testing.assert_array_equal(out, expected)

    def test_mask_equivalent_to_zeroed_weights(self, rng):
        x = rng.integers(-128, 128, size=(2, 8), dtype=np.int8)
        weights = rng.integers(-127, 128, size=(8, 3), dtype=np.int8)
        multipliers = np.full(3, 1e-3)
        mask = rng.random((3, 8)) > 0.4
        masked = fully_connected_s8(x, weights, None, 0, 0, multipliers, weight_mask=mask)
        zeroed = (weights.astype(np.int64) * mask.T).astype(np.int8)
        reference = fully_connected_s8(x, zeroed, None, 0, 0, multipliers)
        np.testing.assert_array_equal(masked, reference)

    def test_counter(self, rng):
        x = rng.integers(-128, 128, size=(5, 8), dtype=np.int8)
        weights = rng.integers(-127, 128, size=(8, 3), dtype=np.int8)
        counter = CycleCounter()
        fully_connected_s8(x, weights, None, 0, 0, np.full(3, 1e-3), counter=counter, section="fc")
        stats = counter.get("fc")
        assert stats.macs == 5 * 24
        assert stats.output_elements == 15

    def test_validation(self, rng):
        x = rng.integers(-128, 128, size=(2, 8), dtype=np.int8)
        weights = rng.integers(-127, 128, size=(8, 3), dtype=np.int8)
        with pytest.raises(TypeError):
            fully_connected_s8(x.astype(np.float32), weights, None, 0, 0, np.ones(3))
        with pytest.raises(ValueError):
            fully_connected_s8(x[:, :4], weights, None, 0, 0, np.ones(3))
        with pytest.raises(ValueError):
            fully_connected_s8(x[0], weights, None, 0, 0, np.ones(3))


class TestPoolingS8:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.int8).reshape(1, 4, 4, 1)
        out = max_pool_s8(x, (2, 2), (2, 2))
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_avg_pool_rounds(self):
        x = np.array([[1, 2], [3, 5]], dtype=np.int8).reshape(1, 2, 2, 1)
        out = avg_pool_s8(x, (2, 2), (2, 2))
        assert out[0, 0, 0, 0] == 3  # round(11/4) = 3

    @pytest.mark.parametrize("func", [max_pool_s8, avg_pool_s8])
    def test_requires_int8(self, func):
        with pytest.raises(TypeError):
            func(np.zeros((1, 4, 4, 1), np.float32), (2, 2), (2, 2))

    @pytest.mark.parametrize("func", [max_pool_s8, avg_pool_s8])
    def test_counter_populated(self, func, rng):
        x = rng.integers(-128, 128, size=(2, 8, 8, 3), dtype=np.int8)
        counter = CycleCounter()
        func(x, (2, 2), (2, 2), counter=counter, section="pool")
        assert counter.get("pool").output_elements == 2 * 4 * 4 * 3


class TestActivationKernels:
    def test_relu_clamps_to_zero_point(self, rng):
        x = rng.integers(-128, 128, size=(4, 4), dtype=np.int8)
        out = relu_s8(x, zero_point=-5)
        assert out.min() >= -5
        np.testing.assert_array_equal(out[x >= -5], x[x >= -5])

    def test_relu_validation(self):
        with pytest.raises(TypeError):
            relu_s8(np.zeros((2, 2), np.float32), 0)
        with pytest.raises(ValueError):
            relu_s8(np.zeros((2, 2), np.int8), 500)

    def test_softmax_argmax_preserved(self, rng):
        x = rng.integers(-128, 128, size=(6, 10), dtype=np.int8)
        out = softmax_s8(x, input_scale=0.1)
        np.testing.assert_array_equal(out.argmax(axis=-1), x.argmax(axis=-1))

    def test_softmax_validation(self):
        with pytest.raises(ValueError):
            softmax_s8(np.zeros((2, 3), np.int8), input_scale=0)
        with pytest.raises(TypeError):
            softmax_s8(np.zeros((2, 3), np.float32), input_scale=0.1)


class TestCycleCounter:
    def test_merge_and_total(self):
        counter = CycleCounter()
        counter.record("a", KernelStats(macs=10, output_elements=2))
        counter.record("a", KernelStats(macs=5, macs_skipped=3))
        counter.record("b", KernelStats(comparisons=7))
        assert counter.get("a").macs == 15
        assert counter.get("a").macs_skipped == 3
        assert counter.total().macs == 15
        assert counter.total().comparisons == 7
        assert len(counter) == 2
        assert "a" in counter and "c" not in counter

    def test_sections_preserve_order(self):
        counter = CycleCounter()
        for name in ("conv1", "pool1", "conv2"):
            counter.record(name, KernelStats(macs=1))
        assert [name for name, _ in counter.sections()] == ["conv1", "pool1", "conv2"]

    def test_reset(self):
        counter = CycleCounter()
        counter.record("a", KernelStats(macs=1))
        counter.reset()
        assert len(counter) == 0
        assert counter.get("a") is None

    def test_stats_as_dict(self):
        stats = KernelStats(macs=3, macs_skipped=1)
        payload = stats.as_dict()
        assert payload["macs"] == 3 and payload["macs_skipped"] == 1
        assert stats.total_mac_slots == 4
