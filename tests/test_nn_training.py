"""Tests for losses, optimizers, metrics, initialisers and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_tiny_mlp
from repro.nn import Adam, CrossEntropyLoss, MSELoss, SGD, Trainer
from repro.nn.init import get_initializer, glorot_uniform, he_normal, he_uniform, normal, uniform, zeros
from repro.nn.layers.base import Parameter
from repro.nn.metrics import accuracy, confusion_matrix, per_class_accuracy, top_k_accuracy
from repro.nn.optim import LRScheduler
from repro.nn import functional as F


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(6, 4)).astype(np.float32)
        labels = rng.integers(0, 4, size=6)
        value = loss.forward(logits, labels)
        manual = -np.log(F.softmax(logits)[np.arange(6), labels]).mean()
        assert value == pytest.approx(manual, rel=1e-5)

    def test_gradient_matches_softmax_minus_onehot(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(5, 3)).astype(np.float32)
        labels = rng.integers(0, 3, size=5)
        loss.forward(logits, labels)
        grad = loss.backward()
        expected = (F.softmax(logits) - F.one_hot(labels, 3)) / 5
        np.testing.assert_allclose(grad, expected, rtol=1e-5)

    def test_perfect_prediction_low_loss(self):
        loss = CrossEntropyLoss()
        logits = np.array([[20.0, -20.0], [-20.0, 20.0]], dtype=np.float32)
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_label_smoothing_increases_loss_on_confident_predictions(self):
        logits = np.array([[20.0, -20.0]], dtype=np.float32)
        labels = np.array([0])
        plain = CrossEntropyLoss().forward(logits, labels)
        smoothed = CrossEntropyLoss(label_smoothing=0.1).forward(logits, labels)
        assert smoothed > plain

    def test_invalid_inputs(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3, 4), np.float32), np.zeros(2, np.int64))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3), np.float32), np.zeros(3, np.int64))
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)


class TestMSE:
    def test_value_and_gradient(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(4, 3)).astype(np.float32)
        target = rng.normal(size=(4, 3)).astype(np.float32)
        value = loss.forward(pred, target)
        assert value == pytest.approx(np.mean((pred - target) ** 2), rel=1e-6)
        np.testing.assert_allclose(loss.backward(), 2 * (pred - target) / pred.size, rtol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((3, 2)))


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0], dtype=np.float32), name="w")

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.1, "momentum": 0.9}),
        (SGD, {"lr": 0.1, "momentum": 0.9, "nesterov": True}),
        (Adam, {"lr": 0.2}),
    ])
    def test_minimises_quadratic(self, optimizer_cls, kwargs):
        param = self._quadratic_param()
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(200):
            optimizer.zero_grad()
            param.accumulate_grad(2 * param.value)  # gradient of ||w||^2
            optimizer.step()
        assert np.abs(param.value).max() < 0.05

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.accumulate_grad(np.zeros(1, dtype=np.float32))
        optimizer.step()
        assert param.value[0] < 1.0

    def test_skips_non_trainable(self):
        frozen = Parameter(np.ones(2, dtype=np.float32), trainable=False)
        optimizer = SGD([frozen], lr=0.1)
        assert optimizer.parameters == []

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.ones(2, dtype=np.float32))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no gradient accumulated -> unchanged
        np.testing.assert_array_equal(param.value, np.ones(2))

    def test_invalid_hyperparameters(self):
        param = Parameter(np.ones(1, dtype=np.float32))
        with pytest.raises(ValueError):
            SGD([param], lr=-1)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            Adam([param], lr=0.1, betas=(1.2, 0.9))

    def test_lr_scheduler_decays(self):
        param = Parameter(np.ones(1, dtype=np.float32))
        optimizer = SGD([param], lr=1.0)
        scheduler = LRScheduler(optimizer, step_size=2, gamma=0.5)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_lr_scheduler_validation(self):
        param = Parameter(np.ones(1, dtype=np.float32))
        optimizer = SGD([param], lr=1.0)
        with pytest.raises(ValueError):
            LRScheduler(optimizer, step_size=0)
        with pytest.raises(ValueError):
            LRScheduler(optimizer, step_size=1, gamma=2.0)


class TestMetrics:
    def test_accuracy_from_logits_and_classes(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)
        assert accuracy(np.array([0, 1, 1]), labels) == pytest.approx(1.0)

    def test_accuracy_empty(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0

    def test_accuracy_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_top_k(self):
        logits = np.array([[0.1, 0.5, 0.4], [0.7, 0.2, 0.1]])
        labels = np.array([2, 1])
        assert top_k_accuracy(logits, labels, k=1) == pytest.approx(0.0)
        assert top_k_accuracy(logits, labels, k=2) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            top_k_accuracy(logits, labels, k=0)

    def test_confusion_matrix(self):
        predictions = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predictions, labels, 3)
        assert matrix[0, 0] == 1 and matrix[1, 1] == 1 and matrix[2, 1] == 1 and matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_per_class_accuracy(self):
        predictions = np.array([0, 0, 1, 1])
        labels = np.array([0, 0, 1, 0])
        recalls = per_class_accuracy(predictions, labels, 2)
        assert recalls[0] == pytest.approx(2 / 3)
        assert recalls[1] == pytest.approx(1.0)


class TestInitializers:
    @pytest.mark.parametrize("name", ["zeros", "glorot_uniform", "he_normal", "he_uniform"])
    def test_registry(self, name):
        init = get_initializer(name)
        values = init((8, 4), rng=0) if name != "zeros" else init((8, 4))
        assert values.shape == (8, 4)
        assert values.dtype == np.float32

    def test_unknown_initializer(self):
        with pytest.raises(ValueError):
            get_initializer("does_not_exist")

    def test_he_normal_scale(self):
        values = he_normal((1000, 100), rng=0)
        expected_std = np.sqrt(2.0 / 1000)
        assert values.std() == pytest.approx(expected_std, rel=0.1)

    def test_glorot_bounds(self):
        values = glorot_uniform((50, 30), rng=0)
        limit = np.sqrt(6.0 / 80)
        assert np.abs(values).max() <= limit + 1e-6

    def test_conv_fan_computation(self):
        values = he_uniform((16, 3, 3, 8), rng=0)
        limit = np.sqrt(6.0 / (8 * 9))
        assert np.abs(values).max() <= limit + 1e-6

    def test_zeros_and_uniform_and_normal(self):
        assert zeros((3,)).sum() == 0
        u = uniform((100,), -1, 1, rng=0)
        assert (u >= -1).all() and (u < 1).all()
        n = normal((100,), 0.5, rng=0)
        assert n.std() == pytest.approx(0.5, rel=0.3)


class TestTrainer:
    def _toy_problem(self, rng, n=200, features=8, classes=3):
        x = rng.normal(size=(n, features)).astype(np.float32)
        true_w = rng.normal(size=(features, classes))
        labels = (x @ true_w).argmax(axis=1)
        return x, labels

    def test_loss_decreases_and_history_filled(self, rng):
        x, y = self._toy_problem(rng)
        model = build_tiny_mlp(in_features=8, n_classes=3, hidden=16, rng=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=5e-3), rng=1)
        history = trainer.fit(x, y, epochs=5, batch_size=32, x_val=x, y_val=y)
        assert history.epochs == 5
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.val_accuracy[-1] > 0.6
        assert history.best_val_accuracy() == max(history.val_accuracy)
        assert set(history.as_dict()) == {"train_loss", "train_accuracy", "val_loss", "val_accuracy"}

    def test_evaluate_returns_loss_and_accuracy(self, rng):
        x, y = self._toy_problem(rng, n=64)
        model = build_tiny_mlp(in_features=8, n_classes=3, rng=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05), rng=1)
        loss, acc = trainer.evaluate(x, y)
        assert loss > 0 and 0 <= acc <= 1

    def test_callback_invoked_each_epoch(self, rng):
        x, y = self._toy_problem(rng, n=60)
        model = build_tiny_mlp(in_features=8, n_classes=3, rng=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05), rng=1)
        calls = []
        trainer.fit(x, y, epochs=3, batch_size=16, callback=lambda e, h: calls.append(e))
        assert calls == [0, 1, 2]

    def test_invalid_epochs(self, rng):
        x, y = self._toy_problem(rng, n=30)
        model = build_tiny_mlp(in_features=8, n_classes=3, rng=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        with pytest.raises(ValueError):
            trainer.fit(x, y, epochs=0)
