"""Shared fixtures for the test suite.

The expensive artefacts (a trained tiny CNN, its quantized counterpart and
the ATAMAN pipeline outputs) are built once per session on a small synthetic
dataset; they are deliberately small so the whole suite stays fast while
still exercising every pipeline stage end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ActivationCalibrator, AtamanPipeline, DSEConfig, compute_significance, unpack_model
from repro.data import SyntheticCifarConfig, SyntheticCifar10, train_val_test_split
from repro.models import build_tiny_cnn
from repro.nn import Adam, Trainer
from repro.quant import quantize_model


@pytest.fixture(scope="session")
def rng():
    """A deterministic NumPy generator for ad-hoc random data."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset():
    """A small synthetic CIFAR-like dataset (600 images, 16 px to stay fast)."""
    config = SyntheticCifarConfig(image_size=16, noise_std=0.25, occlusion_prob=0.3, label_noise=0.05, seed=3)
    return SyntheticCifar10(config).generate(600, seed=3)


@pytest.fixture(scope="session")
def small_split(small_dataset):
    """Train/test/calibration split of the small dataset."""
    return train_val_test_split(small_dataset, val_fraction=0.1, test_fraction=0.2, calibration_size=64, rng=0)


@pytest.fixture(scope="session")
def trained_tiny_model(small_split):
    """A tiny CNN trained for a few epochs on the small dataset."""
    model = build_tiny_cnn(input_shape=small_split.train.image_shape, n_classes=10, rng=1)
    trainer = Trainer(model, Adam(model.parameters(), lr=2e-3), rng=5)
    trainer.fit(small_split.train.images, small_split.train.labels, epochs=4, batch_size=32)
    model.eval()
    return model


@pytest.fixture(scope="session")
def tiny_qmodel(trained_tiny_model, small_split):
    """The int8 quantized counterpart of the trained tiny model."""
    return quantize_model(trained_tiny_model, small_split.calibration.images, name="tiny_cnn")


@pytest.fixture(scope="session")
def tiny_unpacked(tiny_qmodel):
    """Unpacked conv layers of the tiny quantized model."""
    return unpack_model(tiny_qmodel)


@pytest.fixture(scope="session")
def tiny_calibration(tiny_qmodel, small_split):
    """Activation calibration statistics of the tiny quantized model."""
    return ActivationCalibrator(tiny_qmodel).calibrate(small_split.calibration.images)


@pytest.fixture(scope="session")
def tiny_significance(tiny_qmodel, tiny_calibration):
    """Significance matrices of the tiny quantized model."""
    return compute_significance(tiny_qmodel, tiny_calibration)


@pytest.fixture(scope="session")
def tiny_pipeline_result(tiny_qmodel, small_split):
    """Full ATAMAN pipeline result on the tiny model (small DSE)."""
    pipeline = AtamanPipeline(tiny_qmodel)
    return pipeline.run(
        small_split.calibration.images,
        small_split.test.images[:96],
        small_split.test.labels[:96],
        dse_config=DSEConfig(tau_values=[0.0, 0.01, 0.05, 0.1]),
    )
