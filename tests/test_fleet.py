"""The serving fleet: routing, trace propagation, federated observability.

A module-scoped fleet (router + 2 replica processes over the session's tiny
deployment) backs the non-destructive tests; health/failover/drain tests
spawn their own short-lived fleets because they kill replicas.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.exposition import parse_prometheus, sum_samples
from repro.serving import Deployment, HTTPClient
from repro.serving.fleet import Fleet, ReplicaConfig
from repro.serving.server import sanitize_trace_id


@pytest.fixture(scope="module")
def deployment(tiny_qmodel, tiny_pipeline_result):
    """A two-level deployment shared by every fleet in this module."""
    points = [
        {"label": "exact", "taus": {}, "accuracy": 0.9},
        {"label": "aggressive", "taus": {"conv1": 0.2, "conv2": 0.2}, "accuracy": 0.7},
    ]
    return Deployment.from_points(
        tiny_qmodel,
        points,
        tiny_pipeline_result.significance,
        unpacked=tiny_pipeline_result.unpacked,
    )


@pytest.fixture(scope="module")
def fleet(deployment):
    """Router + two replica processes, fixed policy, fast health probes."""
    config = ReplicaConfig(policy="fixed", max_batch_size=16, max_wait_ms=2.0)
    with Fleet(deployment, n_replicas=2, config=config, health_interval_s=0.2) as fleet:
        yield fleet


@pytest.fixture(scope="module")
def images(small_split):
    return small_split.test.images[:16]


def _wait_for(predicate, timeout_s=10.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


# --------------------------------------------------------------------------- routing
class TestRouting:
    def test_round_trip_through_router(self, fleet, images):
        client = HTTPClient(fleet.url, timeout_s=60.0)
        body, headers = client.predict_with_headers(images[:4])
        assert len(body["classes"]) == 4
        assert all(isinstance(c, int) for c in body["classes"])
        assert headers.get("X-Routed-To") in ("0", "1")
        assert body["trace_id"] == headers["X-Trace-Id"]

    def test_trace_covers_router_and_replica_stages(self, fleet, images):
        # Acceptance criterion: one X-Trace-Id whose merged /trace shows the
        # router's route span and the replica's queue-wait/execute spans.
        client = HTTPClient(fleet.url, timeout_s=60.0)
        _, headers = client.predict_with_headers(images[0])
        trace_id = headers["X-Trace-Id"]
        spans = client.trace(trace_id)
        by_name = {span["name"]: span for span in spans}
        assert {"route", "parse", "queue-wait", "execute", "respond"} <= set(by_name)
        assert by_name["route"]["replica"] == "router"
        replica = by_name["route"]["attrs"]["target"]
        assert by_name["queue-wait"]["replica"] == replica
        assert by_name["execute"]["replica"] == replica
        # Wall-clock merge order: the route span starts before (or with) the
        # replica-side spans it encloses.
        assert spans[0]["name"] in ("route", "parse")

    def test_client_supplied_trace_id_propagates(self, fleet, images):
        client = HTTPClient(fleet.url, timeout_s=60.0)
        payload = json.dumps({"inputs": images[0].tolist()}).encode("utf-8")
        request = urllib.request.Request(
            fleet.url + "/predict",
            data=payload,
            headers={"Content-Type": "application/json", "X-Trace-Id": "caller-supplied.01"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60.0) as response:
            body = json.loads(response.read().decode("utf-8"))
            assert response.headers["X-Trace-Id"] == "caller-supplied.01"
        assert body["trace_id"] == "caller-supplied.01"
        names = {span["name"] for span in client.trace("caller-supplied.01")}
        assert {"route", "queue-wait", "execute"} <= names

    def test_burst_spreads_over_both_replicas(self, fleet, images):
        client = HTTPClient(fleet.url, timeout_s=60.0)

        def call(i):
            return client.predict(images[i % len(images)])

        with ThreadPoolExecutor(max_workers=16) as pool:
            bodies = list(pool.map(call, range(48)))
        assert all(len(body["classes"]) == 1 for body in bodies)
        rollup = client.metrics()
        per_replica = {
            name: snapshot["requests_completed"]
            for name, snapshot in rollup["replicas"].items()
        }
        assert set(per_replica) == {"0", "1"}
        assert all(count > 0 for count in per_replica.values()), per_replica
        assert rollup["fleet"]["requests_completed"] == sum(per_replica.values())


# --------------------------------------------------------------------------- federation
class TestFederatedObservability:
    def test_fleet_prometheus_equals_per_replica_sum(self, fleet, images):
        # Acceptance criterion: fleet series equal the sum of the
        # per-replica series, verified through the exposition parser.
        client = HTTPClient(fleet.url, timeout_s=60.0)
        client.predict(images[:8])  # guarantee traffic on the scrape
        fed = parse_prometheus(client.metrics(format="prometheus"))
        sources = [
            parse_prometheus(HTTPClient(r.url, timeout_s=30.0).metrics(format="prometheus"))
            for r in fleet.replicas
        ]
        for family in (
            "repro_requests_completed_total",
            "repro_batches_total",
            "repro_request_latency_ms",  # histogram: observation counts sum
        ):
            fleet_total = sum_samples(fed, family)
            replica_total = sum(sum_samples(source, family) for source in sources)
            assert fleet_total == replica_total, family
        assert sum_samples(fed, "repro_requests_completed_total") > 0

    def test_gauges_stay_attributed_counters_do_not(self, fleet, images):
        client = HTTPClient(fleet.url, timeout_s=60.0)
        client.predict(images[0])
        text = client.metrics(format="prometheus")
        for line in text.splitlines():
            if line.startswith("repro_queue_depth{"):
                assert 'replica="' in line
            if line.startswith("repro_requests_completed_total{"):
                assert 'replica="' not in line
        # Per-replica identity survives federation: one build_info per
        # replica plus the router's own.
        replicas = {
            line.split('replica="')[1].split('"')[0]
            for line in text.splitlines()
            if line.startswith("repro_build_info{")
        }
        assert replicas == {"0", "1", "router"}

    def test_router_metrics_present_in_federation(self, fleet, images):
        client = HTTPClient(fleet.url, timeout_s=60.0)
        client.predict(images[0])
        fed = parse_prometheus(client.metrics(format="prometheus"))
        assert sum_samples(fed, "repro_router_requests_total") > 0
        up = next(f for f in fed if f.name == "repro_replica_up")
        assert {s.label("target") for s in up.samples} == {"0", "1"}

    def test_events_merge_with_replica_attribution(self, fleet, images):
        client = HTTPClient(fleet.url, timeout_s=60.0)
        # A microscopic deadline forces a shed on whichever replica gets it.
        with pytest.raises(urllib.error.HTTPError) as failure:
            client.predict(images[0], timeout_ms=0.001)
        assert failure.value.code == 504
        events = client.events()
        assert events and all("replica" in event for event in events)
        sheds = [event for event in events if event["kind"] == "shed"]
        assert sheds and sheds[-1]["replica"] in ("0", "1")
        # replica-start events prove both replicas contributed to the merge.
        starters = {e["replica"] for e in events if e["kind"] == "replica-start"}
        assert starters == {"0", "1"}

    def test_trace_merge_orders_on_wall_clock(self, fleet, images):
        client = HTTPClient(fleet.url, timeout_s=60.0)
        client.predict(images[0])
        spans = client.trace()  # unfiltered, default limit
        stamps = [span["ts"] for span in spans]
        assert stamps == sorted(stamps)
        assert {span["replica"] for span in spans} & {"0", "1"}


# --------------------------------------------------------------------------- health / drain
class TestHealthAndDrain:
    @pytest.fixture()
    def small_fleet(self, deployment):
        config = ReplicaConfig(policy="fixed", max_batch_size=8, max_wait_ms=1.0)
        fleet = Fleet(deployment, n_replicas=2, config=config, health_interval_s=0.1)
        fleet.start()
        yield fleet
        fleet.stop()

    def test_degraded_then_down_with_failover(self, small_fleet, images):
        client = HTTPClient(small_fleet.url, timeout_s=60.0)
        assert client.health() == "ok"
        small_fleet.replicas[0].kill()
        # Failover is immediate (connection error -> next replica), even
        # before the probe marks the replica down.
        body = client.predict(images[0])
        assert len(body["classes"]) == 1
        assert _wait_for(lambda: client.health() == "degraded", timeout_s=10.0)
        detail = client.health_detail()
        assert detail["replicas"]["0"]["status"] == "down"
        assert detail["replicas"]["1"]["status"] == "ok"
        assert detail["replicas_up"] == 1
        # The federated scrape keeps working from the survivor.
        fed = parse_prometheus(client.metrics(format="prometheus"))
        assert sum_samples(fed, "repro_requests_completed_total") > 0
        small_fleet.replicas[1].kill()
        assert _wait_for(lambda: client.health() == "down", timeout_s=10.0)
        with pytest.raises(urllib.error.HTTPError) as failure:
            client.predict(images[0])
        assert failure.value.code == 503
        events = {event["kind"] for event in client.events()}
        assert "replica-down" in events

    def test_drain_rejects_new_predictions(self, small_fleet, images):
        client = HTTPClient(small_fleet.url, timeout_s=60.0)
        client.predict(images[0])
        small_fleet.router.begin_drain()
        assert client.health() == "draining"
        with pytest.raises(urllib.error.HTTPError) as failure:
            client.predict(images[0])
        assert failure.value.code == 503
        assert "draining" in failure.value.read().decode("utf-8")

    def test_stop_terminates_replica_processes(self, deployment, images):
        config = ReplicaConfig(policy="fixed", max_batch_size=8, max_wait_ms=1.0)
        fleet = Fleet(deployment, n_replicas=2, config=config, health_interval_s=0.2)
        fleet.start()
        HTTPClient(fleet.url, timeout_s=60.0).predict(images[0])
        pids = [replica.pid for replica in fleet.replicas]
        fleet.stop()
        assert all(pid is not None for pid in pids)
        assert not any(replica.alive for replica in fleet.replicas)
        assert fleet.router is None


# --------------------------------------------------------------------------- trace-id plumbing
class TestTraceIdPlumbing:
    def test_sanitize_trace_id(self):
        assert sanitize_trace_id("abc-123.DEF_x") == "abc-123.DEF_x"
        assert sanitize_trace_id(None) is None
        assert sanitize_trace_id("") is None
        assert sanitize_trace_id("has spaces") is None
        assert sanitize_trace_id("x" * 129) is None
        assert sanitize_trace_id('quo"te') is None

    @pytest.mark.parametrize("front", ["thread", "asyncio"])
    def test_fronts_accept_incoming_trace_id(self, deployment, images, front):
        from repro.registry import FRONTS
        from repro.serving import Scheduler

        scheduler = Scheduler(deployment, policy="fixed", max_batch_size=8, max_wait_ms=1.0)
        scheduler.start()
        try:
            with FRONTS.resolve(front)(scheduler, port=0) as server:
                payload = json.dumps({"inputs": images[0].tolist()}).encode("utf-8")
                request = urllib.request.Request(
                    server.url + "/predict",
                    data=payload,
                    headers={"Content-Type": "application/json", "X-Trace-Id": "upstream-7"},
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=30.0) as response:
                    assert response.headers["X-Trace-Id"] == "upstream-7"
                    body = json.loads(response.read().decode("utf-8"))
            assert body["trace_id"] == "upstream-7"
            names = {span.name for span in scheduler.obs.tracer.spans(trace_id="upstream-7")}
            assert {"parse", "queue-wait", "execute"} <= names
        finally:
            scheduler.stop()

    def test_garbage_trace_header_gets_fresh_id(self, deployment, images):
        from repro.serving import Scheduler
        from repro.serving.server import PredictionServer

        scheduler = Scheduler(deployment, policy="fixed", max_batch_size=8, max_wait_ms=1.0)
        scheduler.start()
        try:
            with PredictionServer(scheduler, port=0) as server:
                payload = json.dumps({"inputs": images[0].tolist()}).encode("utf-8")
                request = urllib.request.Request(
                    server.url + "/predict",
                    data=payload,
                    headers={"Content-Type": "application/json", "X-Trace-Id": "bad id !!"},
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=30.0) as response:
                    issued = response.headers["X-Trace-Id"]
            assert issued and issued != "bad id !!"
        finally:
            scheduler.stop()


# --------------------------------------------------------------------------- trace CLI errors
class TestTraceCliErrors:
    def test_missing_export_is_one_line_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["trace", "--input", str(tmp_path / "nope.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "does not exist" in err
        assert "--trace-export" in err  # points at the fix

    def test_empty_export_is_one_line_error(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["trace", "--input", str(empty)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "is empty" in err

    def test_directory_input_is_one_line_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["trace", "--input", str(tmp_path)])
        assert code == 2
        assert "is a directory" in capsys.readouterr().err

    def test_valid_export_still_renders(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.tracing import Tracer

        tracer = Tracer()
        tracer.record_span("parse", "t-1", 0.0, 0.002)
        tracer.record_span("execute", "t-1", 0.002, 0.010)
        path = tmp_path / "spans.jsonl"
        tracer.export_jsonl(path)
        assert main(["trace", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "t-1" in out
        assert "per-stage latency breakdown" in out


# --------------------------------------------------------------------------- construction guards
class TestConstruction:
    def test_fleet_needs_replicas(self, deployment):
        with pytest.raises(ValueError, match="at least one replica"):
            Fleet(deployment, n_replicas=0)

    def test_router_needs_replicas(self):
        from repro.serving.fleet import FleetRouter

        with pytest.raises(ValueError, match="at least one replica"):
            FleetRouter([])

    def test_url_requires_start(self, deployment):
        fleet = Fleet(deployment, n_replicas=1)
        with pytest.raises(RuntimeError, match="not started"):
            fleet.url

    def test_replica_config_policy_options_round_trip(self):
        config = ReplicaConfig(policy="queue-depth", policy_options={"depth_per_level": 2})
        from repro.serving.fleet.replica import _resolve_policy

        policy = _resolve_policy(config)
        assert policy.depth_per_level == 2

    def test_rollup_snapshots_sums(self):
        from repro.serving.fleet import rollup_snapshots

        rollup = rollup_snapshots({
            "0": {"requests_completed": 3, "batches": 2,
                  "per_level_requests": {"L0": 3},
                  "per_priority": {"standard": {"completed": 3, "shed": 0, "failed": 0}}},
            "1": {"requests_completed": 5, "batches": 1,
                  "per_level_requests": {"L0": 4, "L1": 1},
                  "per_priority": {"standard": {"completed": 5, "shed": 1, "failed": 0}}},
        })
        assert rollup["requests_completed"] == 8
        assert rollup["batches"] == 3
        assert rollup["per_level_requests"] == {"L0": 7, "L1": 1}
        assert rollup["per_priority"]["standard"] == {"completed": 8, "shed": 1, "failed": 0}
        assert rollup["mean_batch_size"] == pytest.approx(8 / 3)
        assert rollup["replicas"] == 2
