"""Tests for float-model and quantized-model persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_tiny_cnn
from repro.nn import BatchNorm, Conv2D, Dense, Flatten, ReLU, Sequential, load_model, save_model
from repro.quant import load_quantized_model, save_quantized_model


class TestFloatModelSerialization:
    def test_roundtrip_preserves_outputs(self, trained_tiny_model, tmp_path, rng):
        stem = tmp_path / "models" / "tiny"
        json_path = save_model(trained_tiny_model, stem)
        assert json_path.exists()
        assert json_path.with_suffix(".npz").exists()

        restored = load_model(stem)
        x = rng.normal(size=(4, 16, 16, 3)).astype(np.float32)
        np.testing.assert_allclose(trained_tiny_model.predict(x), restored.predict(x), rtol=1e-6)
        assert restored.input_shape == trained_tiny_model.input_shape
        assert restored.name == trained_tiny_model.name

    def test_roundtrip_with_batchnorm_and_extras(self, tmp_path, rng):
        model = Sequential(
            [
                Conv2D(3, 4, kernel_size=3, padding=1, rng=0, name="conv"),
                BatchNorm(4, name="bn"),
                ReLU(name="relu"),
                Flatten(name="flatten"),
                Dense(4 * 64, 5, rng=1, name="fc"),
            ],
            input_shape=(8, 8, 3),
            name="bn_model",
        )
        # Populate running statistics so they must survive the round trip.
        model.forward(rng.normal(size=(8, 8, 8, 3)).astype(np.float32))
        model.eval()
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        reference = model.forward(x)
        save_model(model, tmp_path / "bn_model")
        restored = load_model(tmp_path / "bn_model")
        np.testing.assert_allclose(restored.forward(x), reference, rtol=1e-5, atol=1e-6)

    def test_accepts_suffixed_path(self, tmp_path):
        model = build_tiny_cnn(rng=0)
        save_model(model, tmp_path / "m.json")
        restored = load_model(tmp_path / "m.npz")
        assert len(restored) == len(model)

    def test_unknown_layer_type_rejected(self, tmp_path):
        from repro.utils.serialization import save_json

        save_json(tmp_path / "bad.json", {"name": "bad", "input_shape": [4], "layers": [{"type": "Mystery", "name": "x"}]})
        with pytest.raises(ValueError):
            load_model(tmp_path / "bad")


class TestQuantizedModelSerialization:
    def test_roundtrip_bit_exact(self, tiny_qmodel, small_split, tmp_path):
        stem = tmp_path / "q" / "tiny_q"
        save_quantized_model(tiny_qmodel, stem)
        restored = load_quantized_model(stem)

        assert restored.name == tiny_qmodel.name
        assert restored.input_shape == tiny_qmodel.input_shape
        assert restored.n_classes == tiny_qmodel.n_classes
        assert len(restored) == len(tiny_qmodel)
        assert restored.total_macs() == tiny_qmodel.total_macs()

        images = small_split.test.images[:16]
        np.testing.assert_array_equal(
            restored.forward_quantized(restored.quantize_input(images)),
            tiny_qmodel.forward_quantized(tiny_qmodel.quantize_input(images)),
        )

    def test_roundtrip_preserves_quant_params(self, tiny_qmodel, tmp_path):
        save_quantized_model(tiny_qmodel, tmp_path / "q2")
        restored = load_quantized_model(tmp_path / "q2")
        for original, loaded in zip(tiny_qmodel.layers, restored.layers):
            assert original.__class__.__name__ == loaded.__class__.__name__
            np.testing.assert_allclose(original.output_params.scale, loaded.output_params.scale)
            np.testing.assert_array_equal(original.output_params.zero_point, loaded.output_params.zero_point)

    def test_roundtrip_supports_pipeline(self, tiny_qmodel, small_split, tmp_path):
        """A reloaded model is a fully functional input to the approximation pipeline."""
        from repro.core import AtamanPipeline, DSEConfig

        save_quantized_model(tiny_qmodel, tmp_path / "q3")
        restored = load_quantized_model(tmp_path / "q3")
        pipeline = AtamanPipeline(restored)
        result = pipeline.run(
            small_split.calibration.images[:32],
            small_split.test.images[:48],
            small_split.test.labels[:48],
            dse_config=DSEConfig(tau_values=[0.0, 0.05]),
        )
        assert len(result.dse.points) >= 2
