"""Tests for quantization schemes, observers and the QTensor container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    MinMaxObserver,
    PercentileObserver,
    QTensor,
    QuantizationParams,
    dequantize,
    params_from_minmax,
    quantize,
    symmetric_params_from_absmax,
)
from repro.quant.observers import make_observer
from repro.quant.schemes import quantization_error


class TestQuantizationParams:
    def test_per_tensor_scalars(self):
        params = params_from_minmax(-1.0, 1.0)
        assert not params.is_per_channel
        assert params.scalar_scale() > 0
        assert -128 <= params.scalar_zero_point() <= 127
        assert params.qmin == -128 and params.qmax == 127

    def test_per_channel(self):
        params = symmetric_params_from_absmax(np.array([1.0, 2.0, 0.5]))
        assert params.is_per_channel
        assert (params.zero_point == 0).all()
        with pytest.raises(ValueError):
            params.scalar_scale()

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            QuantizationParams(scale=np.array([0.0]), zero_point=np.array([0]))

    def test_only_8bit(self):
        with pytest.raises(ValueError):
            QuantizationParams(scale=np.array([0.1]), zero_point=np.array([0]), bits=4)

    def test_zero_absmax_handled(self):
        params = symmetric_params_from_absmax(np.array([0.0, 1.0]))
        assert (params.scale > 0).all()


class TestQuantizeDequantize:
    def test_roundtrip_error_bound(self, rng):
        values = rng.uniform(-3, 5, size=1000).astype(np.float32)
        params = params_from_minmax(values.min(), values.max())
        error = np.abs(dequantize(quantize(values, params), params) - values)
        assert error.max() <= params.scalar_scale() * 0.5 + 1e-7

    def test_zero_exactly_representable(self):
        params = params_from_minmax(0.1, 6.3)  # range is expanded to include 0
        q_zero = quantize(np.array([0.0]), params)
        assert dequantize(q_zero, params)[0] == pytest.approx(0.0, abs=params.scalar_scale() * 0.5)

    def test_saturation(self):
        params = params_from_minmax(-1.0, 1.0)
        q = quantize(np.array([100.0, -100.0]), params)
        assert q[0] == 127 and q[1] == -128

    def test_output_dtype(self):
        params = params_from_minmax(-1, 1)
        assert quantize(np.zeros(4), params).dtype == np.int8
        assert dequantize(np.zeros(4, np.int8), params).dtype == np.float32

    def test_degenerate_range(self):
        params = params_from_minmax(0.0, 0.0)
        assert params.scalar_scale() > 0

    def test_quantization_error_metric(self, rng):
        values = rng.normal(size=200).astype(np.float32)
        params = params_from_minmax(values.min(), values.max())
        assert 0 <= quantization_error(values, params) < params.scalar_scale()


class TestObservers:
    def test_minmax_tracks_extremes(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, 2.0]))
        obs.observe(np.array([-4.0, 0.5]))
        params = obs.compute_params()
        assert dequantize(np.array([-128], np.int8), params)[0] == pytest.approx(-4.0, abs=0.05)

    def test_minmax_empty_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().compute_params()

    def test_minmax_ignores_empty_batches(self):
        obs = MinMaxObserver()
        obs.observe(np.array([]))
        with pytest.raises(RuntimeError):
            obs.compute_params()

    def test_percentile_clips_outliers(self, rng):
        values = rng.normal(size=10_000).astype(np.float32)
        values[0] = 1000.0
        minmax = MinMaxObserver()
        minmax.observe(values)
        percentile = PercentileObserver(percentile=99.5)
        percentile.observe(values)
        assert percentile.compute_params().scalar_scale() < minmax.compute_params().scalar_scale()

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=40)
        with pytest.raises(RuntimeError):
            PercentileObserver().compute_params()

    def test_percentile_reservoir_bounded(self, rng):
        obs = PercentileObserver(reservoir_size=100)
        for _ in range(5):
            obs.observe(rng.normal(size=1000))
        assert obs._reservoir.size <= 100
        assert obs.count == 5000

    def test_factory(self):
        assert isinstance(make_observer("minmax"), MinMaxObserver)
        assert isinstance(make_observer("percentile", percentile=99.0), PercentileObserver)
        with pytest.raises(ValueError):
            make_observer("nope")


class TestQTensor:
    def test_from_float_and_back(self, rng):
        values = rng.uniform(-1, 1, size=(4, 4)).astype(np.float32)
        params = params_from_minmax(-1, 1)
        qt = QTensor.from_float(values, params)
        assert qt.shape == (4, 4)
        assert qt.nbytes == 16
        assert np.abs(qt.dequantize() - values).max() <= params.scalar_scale()

    def test_requires_int8(self):
        with pytest.raises(TypeError):
            QTensor(values=np.zeros(4, np.int32), params=params_from_minmax(-1, 1))


@given(
    low=st.floats(min_value=-50, max_value=0),
    high=st.floats(min_value=0.01, max_value=50),
)
@settings(max_examples=50, deadline=None)
def test_quantization_roundtrip_property(low, high):
    """Round-trip error is bounded by half a quantization step for in-range values."""
    params = params_from_minmax(low, high)
    rng = np.random.default_rng(0)
    values = rng.uniform(low, high, size=64).astype(np.float64)
    recovered = dequantize(quantize(values, params), params)
    assert np.abs(recovered - values).max() <= params.scalar_scale() * 0.5 + 1e-6


@given(st.lists(st.floats(min_value=1e-3, max_value=100), min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_symmetric_params_property(abs_maxes):
    params = symmetric_params_from_absmax(np.array(abs_maxes))
    # +/- abs_max must be representable without saturation error larger than one step.
    values = np.array(abs_maxes)
    q = np.rint(values / params.scale)
    assert (np.abs(q) <= 127).all()
