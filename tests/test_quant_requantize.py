"""Tests for the fixed-point requantization (arm_nn_requantize emulation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import quantize_multiplier, requantize, requantize_float, saturate_int8


class TestQuantizeMultiplier:
    @pytest.mark.parametrize("value", [1.0, 0.5, 0.25, 3.7e-4, 0.9999, 123.456, 1e-9])
    def test_roundtrip_precision(self, value):
        fp = quantize_multiplier(value)
        assert fp.real_value == pytest.approx(value, rel=1e-8)

    def test_zero(self):
        fp = quantize_multiplier(0.0)
        assert fp.multiplier == 0
        assert fp.real_value == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            quantize_multiplier(-0.5)

    def test_significand_normalised(self):
        fp = quantize_multiplier(0.37)
        assert 2**30 <= fp.multiplier < 2**31


class TestRequantize:
    def test_matches_float_path_closely(self, rng):
        acc = rng.integers(-(2**24), 2**24, size=10_000)
        real = 7.3e-4
        fp = quantize_multiplier(real)
        integer = requantize(acc, fp.multiplier, fp.shift)
        float_path = requantize_float(acc, real)
        assert np.abs(integer - float_path).max() <= 1  # rounding-tie differences only

    def test_identity_multiplier(self):
        acc = np.array([-5, 0, 7, 123])
        fp = quantize_multiplier(1.0)
        np.testing.assert_array_equal(requantize(acc, fp.multiplier, fp.shift), acc)

    def test_halving(self):
        acc = np.array([2, 4, -6, 101])
        fp = quantize_multiplier(0.5)
        np.testing.assert_array_equal(requantize(acc, fp.multiplier, fp.shift), [1, 2, -3, 51])

    def test_scalar_like_behaviour(self):
        fp = quantize_multiplier(0.001)
        out = requantize(np.array([1000]), fp.multiplier, fp.shift)
        assert out[0] == 1

    def test_saturate_int8(self):
        values = np.array([-300, -128, 0, 127, 300])
        out = saturate_int8(values)
        np.testing.assert_array_equal(out, [-128, -128, 0, 127, 127])
        assert out.dtype == np.int8

    def test_requantize_float_per_channel(self):
        acc = np.array([[100, 100], [200, 200]])
        multipliers = np.array([0.01, 0.1])
        out = requantize_float(acc, multipliers[None, :])
        np.testing.assert_array_equal(out, [[1, 10], [2, 20]])


@given(
    real=st.floats(min_value=1e-6, max_value=2.0),
    acc=st.integers(min_value=-(2**27), max_value=2**27),
)
@settings(max_examples=200, deadline=None)
def test_requantize_integer_float_agreement_property(real, acc):
    """The bit-faithful integer path and the float path agree to within 1 LSB."""
    fp = quantize_multiplier(real)
    integer = requantize(np.array([acc]), fp.multiplier, fp.shift)[0]
    float_path = requantize_float(np.array([acc]), fp.real_value)[0]
    assert abs(int(integer) - int(float_path)) <= 1
