"""Tests for the composable experiment API (repro.workflow)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DSEConfig, PipelineResult
from repro.workflow import (
    ArtifactStore,
    CalibrateStage,
    CodegenStage,
    DSEStage,
    Experiment,
    ExperimentError,
    SignificanceStage,
    Stage,
    StageContext,
    UnpackStage,
    fingerprint,
)


# --------------------------------------------------------------------------- fingerprints
class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        assert fingerprint({"a": 1, "b": [1.5, "x"]}) == fingerprint({"b": [1.5, "x"], "a": 1})

    def test_value_change_changes_fingerprint(self):
        assert fingerprint({"tau": 0.01}) != fingerprint({"tau": 0.02})

    def test_ndarray_content_sensitive(self):
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        b = a.copy()
        assert fingerprint(a) == fingerprint(b)
        b[0, 0] += 1
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) != fingerprint(a.astype(np.float64))

    def test_dataclass_fingerprint(self):
        assert fingerprint(DSEConfig(tau_values=[0.0, 0.1])) == fingerprint(
            DSEConfig(tau_values=[0.0, 0.1])
        )
        assert fingerprint(DSEConfig(tau_values=[0.0, 0.1])) != fingerprint(
            DSEConfig(tau_values=[0.0, 0.2])
        )

    def test_stable_across_calls(self, tiny_qmodel):
        assert fingerprint(tiny_qmodel) == fingerprint(tiny_qmodel)


# --------------------------------------------------------------------------- artifact store
class TestArtifactStore:
    def test_memory_round_trip(self):
        store = ArtifactStore()
        assert not store.persistent
        assert not store.has("k")
        store.save("k", {"x": np.arange(4)})
        assert store.has("k")
        np.testing.assert_array_equal(store.load("k")["x"], np.arange(4))

    def test_disk_round_trip_across_instances(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.save("deadbeef", ("value", np.ones(3)))
        reopened = ArtifactStore(tmp_path / "cache")
        assert reopened.persistent
        assert reopened.has("deadbeef")
        value, arr = reopened.load("deadbeef")
        assert value == "value"
        np.testing.assert_array_equal(arr, np.ones(3))

    def test_missing_key_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(KeyError):
            store.load("missing")
        assert store.get("missing", "fallback") == "fallback"

    def test_root_must_be_a_directory(self, tmp_path):
        file_path = tmp_path / "not-a-dir"
        file_path.write_text("x")
        with pytest.raises(ValueError, match="not a directory"):
            ArtifactStore(file_path)

    def test_stale_format_is_a_cache_miss(self, tmp_path):
        import pickle

        store = ArtifactStore(tmp_path)
        store.save("cafe", 123)
        # Rewrite the artifact as if produced by an older store format.
        path = next(tmp_path.glob("*/cafe.pkl"))
        path.write_bytes(pickle.dumps({"format": 0, "value": 123}))
        reopened = ArtifactStore(tmp_path)
        assert reopened.get("cafe", "miss") == "miss"

    def test_keys_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("aa11", 1)
        store.save("bb22", 2)
        assert store.keys() == ["aa11", "bb22"]
        assert len(store) == 2
        store.clear()
        assert len(ArtifactStore(tmp_path)) == 0


# --------------------------------------------------------------------------- toy stage graph
class CountingStage(Stage):
    """A stage that counts how many times its body actually runs."""

    def __init__(self, name, requires, provides, fn, counters, knob=0):
        self.name = name
        self.requires = tuple(requires)
        self.provides = tuple(provides)
        self.fn = fn
        self.counters = counters
        self.knob = knob

    def config(self):
        return {"knob": self.knob}

    def run(self, ctx: StageContext):
        self.counters[self.name] = self.counters.get(self.name, 0) + 1
        return self.fn(ctx)


def _toy_stages(counters, square_knob=0, add_knob=0):
    return [
        CountingStage("square", ("x",), ("sq",), lambda c: {"sq": c["x"] ** 2}, counters,
                      knob=square_knob),
        CountingStage("add", ("sq",), ("out",), lambda c: {"out": c["sq"] + add_knob},
                      counters, knob=add_knob),
    ]


class TestExperimentGraph:
    def test_runs_in_dependency_order_regardless_of_listing_order(self):
        counters = {}
        stages = list(reversed(_toy_stages(counters)))
        result = Experiment(stages, inputs={"x": 3}).run()
        assert result["out"] == 9
        assert result.executed_stages == ["square", "add"]

    def test_missing_input_is_reported(self):
        counters = {}
        with pytest.raises(ExperimentError, match="requires artifact 'x'"):
            Experiment(_toy_stages(counters), inputs={}).run()

    def test_duplicate_provides_rejected(self):
        counters = {}
        a = CountingStage("a", (), ("y",), lambda c: {"y": 1}, counters)
        b = CountingStage("b", (), ("y",), lambda c: {"y": 2}, counters)
        with pytest.raises(ExperimentError, match="provided by both"):
            Experiment([a, b])

    def test_cycle_detected(self):
        counters = {}
        a = CountingStage("a", ("u",), ("v",), lambda c: {"v": 1}, counters)
        b = CountingStage("b", ("v",), ("u",), lambda c: {"u": 1}, counters)
        with pytest.raises(ExperimentError, match="cycle"):
            Experiment([a, b]).run()

    def test_wrong_provides_rejected(self):
        bad = CountingStage("bad", (), ("y",), lambda c: {"z": 1}, {})
        with pytest.raises(ExperimentError, match="declared provides"):
            Experiment([bad]).run()


class TestExperimentCaching:
    def test_rerun_with_unchanged_config_executes_zero_stage_bodies(self):
        counters = {}
        store = ArtifactStore()
        experiment = Experiment(_toy_stages(counters), inputs={"x": 4}, store=store)
        first = experiment.run()
        assert first["out"] == 16
        assert counters == {"square": 1, "add": 1}

        second = experiment.run()
        assert second["out"] == 16
        assert counters == {"square": 1, "add": 1}  # zero bodies executed
        assert second.executed_stages == []
        assert second.cached_stages == ["square", "add"]

    def test_changing_downstream_config_reruns_only_that_stage(self):
        counters = {}
        store = ArtifactStore()
        Experiment(_toy_stages(counters), inputs={"x": 4}, store=store).run()

        changed = Experiment(_toy_stages(counters, add_knob=10), inputs={"x": 4}, store=store)
        result = changed.run()
        assert result["out"] == 26
        assert counters == {"square": 1, "add": 2}
        assert result.executed_stages == ["add"]
        assert result.cached_stages == ["square"]

    def test_changing_input_reruns_everything(self):
        counters = {}
        store = ArtifactStore()
        Experiment(_toy_stages(counters), inputs={"x": 4}, store=store).run()
        Experiment(_toy_stages(counters), inputs={"x": 5}, store=store).run()
        assert counters == {"square": 2, "add": 2}

    def test_disk_store_survives_processes_like_reconstruction(self, tmp_path):
        counters = {}
        Experiment(
            _toy_stages(counters), inputs={"x": 4}, store=ArtifactStore(tmp_path / "s")
        ).run()
        # Fresh store object over the same directory: still a full cache hit.
        result = Experiment(
            _toy_stages(counters), inputs={"x": 4}, store=ArtifactStore(tmp_path / "s")
        ).run()
        assert counters == {"square": 1, "add": 1}
        assert result.executed_stages == []


# --------------------------------------------------------------------------- real stages
@pytest.fixture(scope="module")
def eval_data(small_split):
    return small_split.test.images[:48], small_split.test.labels[:48]


class TestAtamanExperiment:
    def test_standard_flow_produces_pipeline_artifacts(self, tiny_qmodel, small_split, eval_data):
        images, labels = eval_data
        experiment = Experiment.from_quantized(
            tiny_qmodel, small_split.calibration.images, images, labels,
            dse_config=DSEConfig(tau_values=[0.0, 0.05]),
        )
        result = experiment.run()
        assert result.executed_stages == ["unpack", "calibrate", "significance", "dse"]
        assert set(result.dse.points[0].as_dict()) >= {"accuracy", "conv_mac_reduction"}
        assert result.baseline_accuracy == result.dse.baseline_accuracy
        assert "conv" in " ".join(result["unpacked"])

    def test_unchanged_rerun_is_pure_cache_and_dse_change_is_incremental(
        self, tiny_qmodel, small_split, eval_data, tmp_path
    ):
        images, labels = eval_data
        store = ArtifactStore(tmp_path / "cache")

        def build(dse_config):
            return Experiment.from_quantized(
                tiny_qmodel, small_split.calibration.images, images, labels,
                dse_config=dse_config, store=store,
            )

        first = build(DSEConfig(tau_values=[0.0, 0.05])).run()
        assert first.executed_stages == ["unpack", "calibrate", "significance", "dse"]

        rerun = build(DSEConfig(tau_values=[0.0, 0.05])).run()
        assert rerun.executed_stages == []
        assert rerun.cached_stages == ["unpack", "calibrate", "significance", "dse"]
        assert rerun.dse.baseline_accuracy == first.dse.baseline_accuracy

        # Changing only the tau sweep re-runs only the DSE stage.
        changed = build(DSEConfig(tau_values=[0.0, 0.02, 0.05])).run()
        assert changed.executed_stages == ["dse"]
        assert changed.cached_stages == ["unpack", "calibrate", "significance"]
        assert len(changed.dse.points) > len(first.dse.points)

    def test_codegen_stage_composes_without_dse(self, tiny_qmodel, small_split):
        experiment = Experiment(
            [UnpackStage(), CalibrateStage(), SignificanceStage(), CodegenStage()],
            inputs={
                "qmodel": tiny_qmodel,
                "calibration_images": small_split.calibration.images,
            },
        )
        result = experiment.run()
        assert "__SMLAD" in result["code"]

    def test_facade_matches_experiment(self, tiny_qmodel, small_split, eval_data):
        """AtamanPipeline.run is a facade over Experiment: same artifact types/values."""
        from repro.core import AtamanPipeline

        images, labels = eval_data
        pipeline = AtamanPipeline(tiny_qmodel)
        result = pipeline.run(
            small_split.calibration.images, images, labels,
            dse_config=DSEConfig(tau_values=[0.0, 0.05]),
        )
        assert isinstance(result, PipelineResult)
        experiment = Experiment.from_quantized(
            tiny_qmodel, small_split.calibration.images, images, labels,
            dse_config=DSEConfig(tau_values=[0.0, 0.05]),
        ).run()
        assert result.baseline_accuracy == experiment.baseline_accuracy
        assert [p.accuracy for p in result.dse.points] == [
            p.accuracy for p in experiment.dse.points
        ]

    def test_pipeline_with_store_caches_runs(self, tiny_qmodel, small_split, eval_data, tmp_path):
        from repro.core import AtamanPipeline

        images, labels = eval_data
        store = ArtifactStore(tmp_path / "pipe")
        pipeline = AtamanPipeline(tiny_qmodel, store=store)
        config = DSEConfig(tau_values=[0.0, 0.05])
        first = pipeline.run(small_split.calibration.images, images, labels, dse_config=config)
        assert len(store) == 4
        again = pipeline.run(small_split.calibration.images, images, labels, dse_config=config)
        assert len(store) == 4  # nothing new was computed or written
        assert again.baseline_accuracy == first.baseline_accuracy


class TestStrategiesViaDSEConfig:
    def test_greedy_strategy_through_run_dse(self, tiny_qmodel, tiny_significance, eval_data):
        from repro.core import run_dse

        images, labels = eval_data
        result = run_dse(
            tiny_qmodel, tiny_significance, images, labels,
            dse_config=DSEConfig(
                strategy="greedy",
                strategy_options={"max_accuracy_loss": 0.3, "max_steps": 3},
            ),
        )
        assert result.points[0].config.is_exact
        assert all(p.conv_mac_reduction >= 0.0 for p in result.points)

    def test_greedy_respects_granularity_and_metric(
        self, tiny_qmodel, tiny_significance, tiny_unpacked, eval_data
    ):
        from repro.core import run_dse

        images, labels = eval_data
        result = run_dse(
            tiny_qmodel, tiny_significance, images, labels,
            dse_config=DSEConfig(
                strategy="greedy",
                granularity="input_channel",
                tau_values=[0.0, 0.05],
                strategy_options={"max_accuracy_loss": 1.0, "max_steps": 2},
            ),
            unpacked=tiny_unpacked,
        )
        for point in result.points[1:]:
            for spec in point.config.layer_specs.values():
                assert spec.granularity == "input_channel"

    def test_latency_aware_strategy_annotates_latency(
        self, tiny_qmodel, tiny_significance, eval_data
    ):
        from repro.core import run_dse
        from repro.isa import STM32U575

        images, labels = eval_data
        result = run_dse(
            tiny_qmodel, tiny_significance, images, labels,
            dse_config=DSEConfig(tau_values=[0.0, 0.05], strategy="latency-aware"),
            board=STM32U575,
        )
        assert all(p.latency_ms is not None for p in result.points)
        best = result.best_within_loss(1.0)
        assert best.latency_ms == min(p.latency_ms for p in result.points)

    def test_latency_aware_requires_board(self, tiny_qmodel, tiny_significance, eval_data):
        from repro.core import run_dse

        images, labels = eval_data
        with pytest.raises(ValueError, match="board"):
            run_dse(
                tiny_qmodel, tiny_significance, images, labels,
                dse_config=DSEConfig(tau_values=[0.0], strategy="latency-aware"),
            )

    def test_n_workers_does_not_invalidate_dse_cache(self):
        from repro.workflow import DSEStage

        sig_serial = DSEStage(DSEConfig(tau_values=[0.0, 0.05], n_workers=1)).signature(
            {k: "d" for k in DSEStage.requires}
        )
        sig_parallel = DSEStage(DSEConfig(tau_values=[0.0, 0.05], n_workers=8)).signature(
            {k: "d" for k in DSEStage.requires}
        )
        assert sig_serial == sig_parallel
        sig_other = DSEStage(DSEConfig(tau_values=[0.0, 0.1], n_workers=1)).signature(
            {k: "d" for k in DSEStage.requires}
        )
        assert sig_serial != sig_other

    def test_greedy_honours_eval_cap_and_tau_sweep(self, tiny_qmodel, tiny_significance, small_split):
        from repro.core import run_dse

        result = run_dse(
            tiny_qmodel, tiny_significance,
            small_split.test.images[:96], small_split.test.labels[:96],
            dse_config=DSEConfig(
                tau_values=[0.0, 0.05, 0.1],
                max_eval_samples=32,
                strategy="greedy",
                strategy_options={"max_accuracy_loss": 1.0, "max_steps": 2},
            ),
        )
        # Baseline computed on the capped evaluation subset, like the exhaustive sweep.
        capped = tiny_qmodel.evaluate_accuracy(
            small_split.test.images[:32], small_split.test.labels[:32]
        )
        assert result.baseline_accuracy == pytest.approx(capped)
        # The ladder comes from the explicit tau sweep (positive values only).
        for point in result.points[1:]:
            assert set(point.config.taus().values()) <= {0.05, 0.1}

    def test_dse_stage_passes_board_to_strategy(self, tiny_qmodel, small_split, eval_data):
        from repro.isa import STM32U575
        from repro.workflow import DSEStage

        images, labels = eval_data
        experiment = Experiment(
            [
                UnpackStage(),
                CalibrateStage(),
                SignificanceStage(),
                DSEStage(
                    dse_config=DSEConfig(tau_values=[0.0, 0.05], strategy="latency-aware"),
                    board=STM32U575,
                ),
            ],
            inputs={
                "qmodel": tiny_qmodel,
                "calibration_images": small_split.calibration.images,
                "eval_images": images,
                "eval_labels": labels,
            },
        )
        result = experiment.run()
        assert all(p.latency_ms is not None for p in result.dse.points)


class TestCLIIntegration:
    def test_workers_flag_on_every_subcommand(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("train", "quantize", "explore", "codegen", "deploy", "reproduce"):
            args = parser.parse_args(
                [command, "--workers", "2"]
                + {
                    "train": ["--out", "x"],
                    "quantize": ["--model-path", "m", "--out", "x"],
                    "explore": ["--qmodel", "q", "--out", "x"],
                    "codegen": ["--qmodel", "q", "--out", "x"],
                    "deploy": ["--qmodel", "q"],
                    "reproduce": [],
                }[command]
            )
            assert args.workers == 2

    def test_explore_strategy_and_resume_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["explore", "--qmodel", "q", "--out", "x", "--strategy", "greedy",
             "--resume", "cache-dir"]
        )
        assert args.strategy == "greedy"
        assert args.resume == "cache-dir"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["explore", "--qmodel", "q", "--out", "x", "--strategy", "bogus"]
            )
