"""Tests for quantized layers, the quantized model container, PTQ and folding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchNorm, Conv2D, Dense, Flatten, ReLU, Sequential, Softmax
from repro.nn.layers.dropout import Dropout
from repro.quant import PTQConfig, QConv2D, QDense, quantize_model
from repro.quant.folding import fold_batchnorm, fold_model
from repro.quant.qlayers import QFlatten, QMaxPool2D, QReLU
from repro.quant.quantizer import _quantize_conv_weights, _quantize_dense_weights


class TestWeightQuantization:
    def test_conv_weights_per_channel(self, rng):
        conv = Conv2D(3, 4, kernel_size=3, rng=0)
        conv.weight.value = rng.normal(size=conv.weight.shape).astype(np.float32)
        q, params = _quantize_conv_weights(conv)
        assert q.dtype == np.int8 and q.shape == conv.weight.shape
        assert params.scale.shape == (4,)
        # Per-channel max should map near 127.
        recovered = q.reshape(4, -1).astype(np.float64) * params.scale[:, None]
        original = conv.weight.value.reshape(4, -1)
        assert np.abs(recovered - original).max() <= params.scale.max()

    def test_dense_weights_per_output(self, rng):
        dense = Dense(6, 5, rng=0)
        q, params = _quantize_dense_weights(dense)
        assert q.shape == (6, 5)
        assert params.scale.shape == (5,)


class TestFolding:
    def test_fold_batchnorm_preserves_output(self, rng):
        conv = Conv2D(2, 3, kernel_size=3, padding=1, rng=0)
        bn = BatchNorm(3)
        x = rng.normal(size=(4, 6, 6, 2)).astype(np.float32)
        # Populate running statistics, then compare in eval mode.
        bn.forward(conv.forward(x))
        conv.eval(), bn.eval()
        reference = bn.forward(conv.forward(x))
        folded = fold_batchnorm(conv, bn)
        folded.eval()
        np.testing.assert_allclose(folded.forward(x), reference, rtol=1e-4, atol=1e-4)

    def test_fold_batchnorm_mismatch(self):
        with pytest.raises(ValueError):
            fold_batchnorm(Conv2D(2, 3, kernel_size=3), BatchNorm(5))

    def test_fold_model_removes_dropout_and_bn(self):
        model = Sequential(
            [
                Conv2D(1, 2, kernel_size=3, padding=1, rng=0),
                BatchNorm(2),
                ReLU(),
                Dropout(0.5, rng=0),
                Flatten(),
                Dense(2 * 16, 3, rng=0),
            ],
            input_shape=(4, 4, 1),
        )
        folded = fold_model(model)
        names = [layer.__class__.__name__ for layer in folded]
        assert "Dropout" not in names and "BatchNorm" not in names
        assert names[0] == "Conv2D"


class TestPTQ:
    def test_structure_of_quantized_model(self, tiny_qmodel):
        types = [layer.__class__ for layer in tiny_qmodel]
        assert types.count(QConv2D) == 2
        assert QDense in types and QMaxPool2D in types and QFlatten in types
        # ReLUs were fused into the conv layers.
        assert QReLU not in types
        assert all(layer.fused_relu for layer in tiny_qmodel.conv_layers())

    def test_quantized_accuracy_close_to_float(self, trained_tiny_model, tiny_qmodel, small_split):
        images, labels = small_split.test.images[:120], small_split.test.labels[:120]
        float_acc = float((trained_tiny_model.predict(images).argmax(-1) == labels).mean())
        quant_acc = tiny_qmodel.evaluate_accuracy(images, labels)
        assert quant_acc >= float_acc - 0.08

    def test_logits_close_to_float(self, trained_tiny_model, tiny_qmodel, small_split):
        images = small_split.test.images[:16]
        float_logits = trained_tiny_model.predict(images)
        quant_logits = tiny_qmodel.forward(images)
        # Same argmax for the large majority of samples.
        agreement = (float_logits.argmax(-1) == quant_logits.argmax(-1)).mean()
        assert agreement >= 0.75

    def test_total_macs_match_float_model(self, trained_tiny_model, tiny_qmodel):
        assert tiny_qmodel.total_macs() == trained_tiny_model.total_macs()
        assert tiny_qmodel.conv_macs() == trained_tiny_model.conv_macs()

    def test_masks_reduce_mac_count(self, tiny_qmodel):
        conv = tiny_qmodel.conv_layers()[0]
        mask = np.zeros((conv.out_channels, conv.operands_per_channel), dtype=bool)
        mask[:, ::2] = True
        macs = tiny_qmodel.total_macs(masks={conv.name: mask})
        assert macs < tiny_qmodel.total_macs()

    def test_quantize_requires_input_shape(self, small_split):
        model = Sequential([Dense(4, 2, rng=0)])
        with pytest.raises(ValueError):
            quantize_model(model, small_split.calibration.images)

    def test_quantize_rejects_empty_calibration(self, trained_tiny_model):
        with pytest.raises(ValueError):
            quantize_model(trained_tiny_model, np.zeros((0, 16, 16, 3), np.float32))

    def test_final_softmax_dropped(self, small_split, rng):
        model = Sequential(
            [Flatten(), Dense(16 * 16 * 3, 10, rng=0), Softmax()],
            input_shape=(16, 16, 3),
        )
        qmodel = quantize_model(model, small_split.calibration.images)
        assert all(not isinstance(layer, QReLU) for layer in qmodel)
        assert len(qmodel) == 2  # flatten + dense, softmax removed

    def test_percentile_observer_config(self, trained_tiny_model, small_split):
        qmodel = quantize_model(
            trained_tiny_model,
            small_split.calibration.images,
            config=PTQConfig(observer="percentile", percentile=99.5),
        )
        images, labels = small_split.test.images[:80], small_split.test.labels[:80]
        assert qmodel.evaluate_accuracy(images, labels) > 0.1

    def test_n_classes_detected(self, tiny_qmodel):
        assert tiny_qmodel.n_classes == 10


class TestQuantizedModelContainer:
    def test_layer_shapes_chain(self, tiny_qmodel):
        shapes = tiny_qmodel.layer_shapes()
        for (_, _, out_shape), (_, next_in, _) in zip(shapes, shapes[1:]):
            assert out_shape == next_in
        assert shapes[-1][2] == (10,)

    def test_get_layer(self, tiny_qmodel):
        assert tiny_qmodel.get_layer("conv1").name == "conv1"
        with pytest.raises(KeyError):
            tiny_qmodel.get_layer("missing")

    def test_weight_and_activation_bytes_positive(self, tiny_qmodel):
        assert tiny_qmodel.weight_nbytes() > 0
        assert tiny_qmodel.activation_nbytes() > 0

    def test_forward_quantized_matches_forward(self, tiny_qmodel, small_split):
        images = small_split.test.images[:8]
        q_in = tiny_qmodel.quantize_input(images)
        q_out = tiny_qmodel.forward_quantized(q_in)
        logits = tiny_qmodel.forward(images)
        np.testing.assert_array_equal(q_out.argmax(-1), logits.argmax(-1))

    def test_summary_text(self, tiny_qmodel):
        text = tiny_qmodel.summary()
        assert "conv1" in text and "total MACs" in text

    def test_predict_classes_batching(self, tiny_qmodel, small_split):
        images = small_split.test.images[:10]
        a = tiny_qmodel.predict_classes(images, batch_size=3)
        b = tiny_qmodel.predict_classes(images, batch_size=10)
        np.testing.assert_array_equal(a, b)

    def test_empty_input(self, tiny_qmodel):
        empty = np.zeros((0, 16, 16, 3), dtype=np.float32)
        assert tiny_qmodel.predict_classes(empty).shape == (0,)
        assert tiny_qmodel.evaluate_accuracy(empty, np.zeros(0, dtype=int)) == 0.0
