"""Tests for the instruction cost model, board profiles and the MCU deployment simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import (
    COST_PARAMS,
    STM32H743,
    STM32U575,
    ExecutionStyle,
    KernelCostModel,
    cycles_to_latency_ms,
    get_board,
    list_boards,
)
from repro.kernels import CycleCounter, KernelStats
from repro.mcu import DeploymentError, FlashBudget, MemoryLayout, RamBudget, deploy, energy_mj


class TestBoardProfiles:
    def test_paper_board_parameters(self):
        assert STM32U575.clock_hz == pytest.approx(160e6)
        assert STM32U575.flash_bytes == 2 * 1024 * 1024
        assert STM32U575.ram_bytes == 768 * 1024
        assert STM32U575.cpu == "Cortex-M33"

    def test_derived_properties(self):
        assert STM32U575.clock_mhz == pytest.approx(160.0)
        assert STM32U575.flash_kb == pytest.approx(2048.0)
        assert STM32U575.available_flash_bytes < STM32U575.flash_bytes
        assert STM32U575.available_ram_bytes < STM32U575.ram_bytes

    def test_cycles_to_seconds(self):
        assert STM32U575.cycles_to_seconds(160e6) == pytest.approx(1.0)

    def test_energy_consistent_with_table2(self):
        """82.8 ms at ~33 mW gives ~2.7 mJ, matching Table II's CMSIS LeNet entry."""
        assert STM32U575.energy_mj(0.0828) == pytest.approx(2.73, rel=0.05)

    def test_registry(self):
        assert "stm32u575" in list_boards()
        assert get_board("STM32U575") is STM32U575
        with pytest.raises(ValueError):
            get_board("esp32")

    def test_h743_is_faster(self):
        assert STM32H743.clock_hz > STM32U575.clock_hz


class TestCostModel:
    def _counter(self, macs=1000, skipped=0, outputs=100, patches=200):
        counter = CycleCounter()
        counter.record(
            "layer",
            KernelStats(macs=macs, macs_skipped=skipped, output_elements=outputs, patch_elements=patches),
        )
        return counter

    def test_all_styles_have_params(self):
        for style in ExecutionStyle:
            assert style in COST_PARAMS
            model = KernelCostModel(style)
            assert model.estimate_cycles(self._counter()) > 0

    def test_more_macs_cost_more(self):
        model = KernelCostModel(ExecutionStyle.CMSIS_PACKED)
        assert model.estimate_cycles(self._counter(macs=2000)) > model.estimate_cycles(self._counter(macs=1000))

    def test_skipped_macs_free_only_when_unpacked(self):
        exact = self._counter(macs=1000, skipped=0)
        skipped = self._counter(macs=500, skipped=500)
        packed = KernelCostModel(ExecutionStyle.CMSIS_PACKED)
        unpacked = KernelCostModel(ExecutionStyle.UNPACKED)
        # Packed kernels cannot exploit skipping: same total cost.
        assert packed.estimate_cycles(skipped) == pytest.approx(packed.estimate_cycles(exact))
        # Unpacked kernels simply omit the instructions: cheaper.
        assert unpacked.estimate_cycles(skipped) < unpacked.estimate_cycles(exact)

    def test_xcube_faster_than_cmsis_on_same_counter(self):
        counter = self._counter(macs=100_000, outputs=1000, patches=5000)
        cmsis = KernelCostModel(ExecutionStyle.CMSIS_PACKED).estimate_cycles(counter)
        xcube = KernelCostModel(ExecutionStyle.XCUBE_AI).estimate_cycles(counter)
        utvm = KernelCostModel(ExecutionStyle.UTVM).estimate_cycles(counter)
        assert xcube < cmsis < utvm

    def test_per_layer_breakdown(self):
        counter = CycleCounter()
        counter.record("conv1", KernelStats(macs=500))
        counter.record("conv2", KernelStats(macs=1500))
        model = KernelCostModel(ExecutionStyle.CMSIS_PACKED)
        total, per_layer = model.estimate(counter)
        assert set(per_layer) == {"conv1", "conv2"}
        assert per_layer["conv2"].cycles > per_layer["conv1"].cycles
        assert total == pytest.approx(
            model.params.cycles_fixed + per_layer["conv1"].cycles + per_layer["conv2"].cycles
        )

    def test_latency_conversion(self):
        assert cycles_to_latency_ms(160_000, STM32U575) == pytest.approx(1.0)
        model = KernelCostModel(ExecutionStyle.CMSIS_PACKED)
        counter = self._counter()
        assert model.latency_ms(counter, STM32U575) == pytest.approx(
            cycles_to_latency_ms(model.estimate_cycles(counter), STM32U575)
        )


class TestMemoryBudgets:
    def test_flash_budget_totals(self):
        flash = FlashBudget(weights=1000, kernel_code=2000, runtime=500, unpacked_code=1500)
        assert flash.total == 5000
        assert flash.total_kb == pytest.approx(5000 / 1024)
        assert flash.as_dict()["total"] == 5000

    def test_ram_budget_totals(self):
        ram = RamBudget(activations=4096, im2col_buffer=512, runtime=1024)
        assert ram.total == 5632

    def test_layout_fit_and_utilisation(self):
        layout = MemoryLayout(
            flash=FlashBudget(weights=100 * 1024, kernel_code=50 * 1024, runtime=10 * 1024),
            ram=RamBudget(activations=100 * 1024, runtime=20 * 1024),
        )
        assert layout.fits(STM32U575)
        assert 0 < layout.flash_utilisation(STM32U575) < 1
        assert layout.headroom(STM32U575)["flash"] > 0

    def test_layout_over_budget(self):
        layout = MemoryLayout(
            flash=FlashBudget(weights=3 * 1024 * 1024),
            ram=RamBudget(activations=10),
        )
        assert not layout.fits(STM32U575)
        assert layout.headroom(STM32U575)["flash"] < 0


class TestEnergy:
    def test_linear_in_latency(self):
        assert energy_mj(100, STM32U575) == pytest.approx(2 * energy_mj(50, STM32U575))

    def test_static_overhead(self):
        assert energy_mj(10, STM32U575, static_overhead_mj=0.5) == pytest.approx(
            energy_mj(10, STM32U575) + 0.5
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_mj(-1, STM32U575)
        with pytest.raises(ValueError):
            energy_mj(1, STM32U575, static_overhead_mj=-1)


class _FakeEngine:
    """Minimal engine satisfying the deployment protocol."""

    name = "fake"
    model_name = "fake_model"

    def __init__(self, flash_bytes=100 * 1024, ram_bytes=50 * 1024, latency=12.0):
        self._flash = flash_bytes
        self._ram = ram_bytes
        self._latency = latency

    def latency_ms(self, board):
        return self._latency

    def memory_layout(self, board):
        return MemoryLayout(flash=FlashBudget(weights=self._flash), ram=RamBudget(activations=self._ram))

    def evaluate_accuracy(self, images, labels):
        return 0.75

    def total_macs(self):
        return 123_456


class TestDeploy:
    def test_report_fields(self):
        report = deploy(_FakeEngine(), STM32U575, np.zeros((2, 4, 4, 3), np.float32), np.zeros(2, int))
        assert report.engine == "fake"
        assert report.top1_accuracy == pytest.approx(0.75)
        assert report.latency_ms == pytest.approx(12.0)
        assert report.energy_mj == pytest.approx(energy_mj(12.0, STM32U575))
        assert report.mac_ops == 123_456
        assert report.fits
        assert "memory" in report.details
        assert report.as_dict()["engine"] == "fake"

    def test_accuracy_nan_without_eval_data(self):
        report = deploy(_FakeEngine(), STM32U575)
        assert np.isnan(report.top1_accuracy)

    def test_strict_raises_when_over_budget(self):
        oversized = _FakeEngine(flash_bytes=10 * 1024 * 1024)
        report = deploy(oversized, STM32U575)
        assert not report.fits
        with pytest.raises(DeploymentError):
            deploy(oversized, STM32U575, strict=True)
