"""End-to-end integration tests: train -> quantize -> approximate -> deploy.

These tests tie every package together the same way the paper's framework
does, asserting the cross-cutting invariants that individual unit tests
cannot see (e.g. the engine's MAC count equals what the DSE predicted for the
selected design, and the simulated kernels agree with the masked model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AtamanPipeline, DSEConfig
from repro.frameworks import AtamanEngine, CMSISNNEngine, XCubeAIEngine
from repro.isa import STM32U575
from repro.kernels import CycleCounter
from repro.mcu import deploy


class TestEndToEnd:
    def test_pipeline_design_matches_engine_metrics(self, tiny_qmodel, tiny_pipeline_result):
        """The MAC count the DSE reports for a design equals the deployed engine's."""
        design = tiny_pipeline_result.select(0.10)
        engine = AtamanEngine(
            tiny_qmodel,
            config=design.config,
            significance=tiny_pipeline_result.significance,
            unpacked=tiny_pipeline_result.unpacked,
        )
        assert engine.total_macs() == design.total_macs
        assert engine.conv_macs() == design.conv_macs

    def test_design_accuracy_reproducible_from_masks(
        self, tiny_qmodel, tiny_pipeline_result, small_split
    ):
        """Re-evaluating a DSE design with its masks reproduces the recorded accuracy."""
        design = next(p for p in tiny_pipeline_result.dse.points if not p.config.is_exact)
        masks = design.config.build_masks(tiny_pipeline_result.significance)
        # The DSE evaluated on the first 96 test images (per the fixture's DSEConfig).
        accuracy = tiny_qmodel.evaluate_accuracy(
            small_split.test.images[:96], small_split.test.labels[:96], masks=masks
        )
        assert accuracy == pytest.approx(design.accuracy, abs=1e-9)

    def test_counter_macs_match_static_analysis(self, tiny_qmodel, tiny_pipeline_result):
        """Cycle-counter MAC totals for one sample equal the static per-sample MAC count."""
        design = tiny_pipeline_result.select(0.10)
        masks = design.config.build_masks(tiny_pipeline_result.significance)
        counter = CycleCounter()
        sample = np.zeros((1,) + tiny_qmodel.input_shape, dtype=np.float32)
        tiny_qmodel.forward(sample, masks=masks, counter=counter)
        counted = sum(stats.macs for _, stats in counter.sections())
        assert counted == tiny_qmodel.total_macs(masks=masks)

    def test_full_deployment_comparison(self, tiny_qmodel, tiny_pipeline_result, small_split):
        """Deploy all three Table-II engines and check the qualitative relations."""
        images, labels = small_split.test.images[:64], small_split.test.labels[:64]
        design = tiny_pipeline_result.select(0.10)
        engines = {
            "cmsis": CMSISNNEngine(tiny_qmodel),
            "xcube": XCubeAIEngine(tiny_qmodel),
            "ataman": AtamanEngine(
                tiny_qmodel,
                config=design.config,
                significance=tiny_pipeline_result.significance,
                unpacked=tiny_pipeline_result.unpacked,
            ),
        }
        reports = {
            name: deploy(engine, STM32U575, images, labels, model_name="tiny_cnn")
            for name, engine in engines.items()
        }
        for report in reports.values():
            assert report.fits
            assert report.energy_mj == pytest.approx(
                STM32U575.energy_mj(report.latency_ms / 1e3), rel=1e-9
            )
        # The approximate design executes fewer MACs than both exact engines.
        assert reports["ataman"].mac_ops <= reports["cmsis"].mac_ops
        # Accuracy of the selected design respects the 10% budget on the DSE set
        # and stays within a sane distance of it on the larger evaluation set.
        assert reports["ataman"].top1_accuracy >= reports["cmsis"].top1_accuracy - 0.20

    def test_unpacked_code_describes_deployed_design(self, tiny_qmodel, tiny_pipeline_result):
        """The generated code's retained-MAC count matches the engine's conv MACs per position."""
        design = tiny_pipeline_result.select(0.10)
        masks = design.config.build_masks(tiny_pipeline_result.significance)
        pipeline = AtamanPipeline(tiny_qmodel)
        code = pipeline.generate_code(tiny_pipeline_result, design=design)
        for name, unpacked in tiny_pipeline_result.unpacked.items():
            retained = unpacked.retained_operands(masks.get(name))
            skipped = unpacked.total_operands - retained
            assert f"{retained} retained" in code
            if skipped:
                assert f"{skipped} skipped" in code

    def test_retraining_free_property(self, tiny_qmodel, tiny_pipeline_result, small_split):
        """Approximation never touches the stored weights: the exact model is unchanged."""
        before = [layer.weights.copy() for layer in tiny_qmodel.conv_layers()]
        design = tiny_pipeline_result.select(0.05)
        engine = AtamanEngine(
            tiny_qmodel,
            config=design.config,
            significance=tiny_pipeline_result.significance,
            unpacked=tiny_pipeline_result.unpacked,
        )
        engine.evaluate_accuracy(small_split.test.images[:32], small_split.test.labels[:32])
        after = [layer.weights for layer in tiny_qmodel.conv_layers()]
        for w_before, w_after in zip(before, after):
            np.testing.assert_array_equal(w_before, w_after)

    def test_second_model_through_pipeline(self, small_split):
        """A freshly-built (untrained) model still flows through every stage."""
        from repro.models import build_micro_cnn
        from repro.quant import quantize_model

        model = build_micro_cnn(input_shape=(16, 16, 3), n_classes=10, rng=9)
        model.input_shape = (16, 16, 3)
        qmodel = quantize_model(model, small_split.calibration.images[:32])
        pipeline = AtamanPipeline(qmodel)
        result = pipeline.run(
            small_split.calibration.images[:32],
            small_split.test.images[:48],
            small_split.test.labels[:48],
            dse_config=DSEConfig(tau_values=[0.0, 0.05]),
        )
        assert len(result.dse.points) >= 2
        report = pipeline.deploy(
            result, 1.0, small_split.test.images[:32], small_split.test.labels[:32]
        )
        assert report.fits
