"""Tests for the model zoo: paper topologies, MAC budgets, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    MODEL_REGISTRY,
    build_alexnet,
    build_lenet,
    build_micro_cnn,
    build_model,
    build_tiny_cnn,
    build_tiny_mlp,
    list_models,
)
from repro.models.registry import register_model
from repro.nn import Sequential


class TestLeNet:
    def test_topology_matches_paper(self):
        model = build_lenet()
        assert model.topology() == {"conv": 3, "pool": 2, "fc": 2}

    def test_mac_budget_matches_paper(self):
        """Table I reports ~4.5M MACs for the LeNet variant."""
        model = build_lenet()
        assert model.total_macs() == pytest.approx(4.5e6, rel=0.05)

    def test_forward_shape(self):
        model = build_lenet()
        out = model.forward(np.zeros((2, 32, 32, 3), dtype=np.float32))
        assert out.shape == (2, 10)

    def test_width_multiplier_scales_params(self):
        full = build_lenet(width_multiplier=1.0)
        half = build_lenet(width_multiplier=0.5)
        assert half.n_params < full.n_params
        assert half.forward(np.zeros((1, 32, 32, 3), np.float32)).shape == (1, 10)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_lenet(width_multiplier=0)

    def test_custom_classes(self):
        model = build_lenet(n_classes=4)
        assert model.forward(np.zeros((1, 32, 32, 3), np.float32)).shape == (1, 4)


class TestAlexNet:
    def test_topology_matches_paper(self):
        model = build_alexnet()
        assert model.topology() == {"conv": 5, "pool": 2, "fc": 2}

    def test_mac_budget_matches_paper(self):
        """Table I reports ~16.1M MACs for the AlexNet variant."""
        model = build_alexnet()
        assert model.total_macs() == pytest.approx(16.1e6, rel=0.05)

    def test_forward_shape(self):
        model = build_alexnet(width_multiplier=0.25)
        out = model.forward(np.zeros((2, 32, 32, 3), dtype=np.float32))
        assert out.shape == (2, 10)

    def test_dropout_variant(self):
        model = build_alexnet(width_multiplier=0.25, dropout=0.3)
        assert any(layer.__class__.__name__ == "Dropout" for layer in model)

    def test_macs_larger_than_lenet(self):
        assert build_alexnet().total_macs() > build_lenet().total_macs()


class TestSmallModels:
    @pytest.mark.parametrize("builder,shape", [
        (build_tiny_cnn, (16, 16, 3)),
        (build_micro_cnn, (8, 8, 1)),
    ])
    def test_forward(self, builder, shape):
        model = builder(input_shape=shape)
        out = model.forward(np.zeros((2,) + shape, dtype=np.float32))
        assert out.shape[0] == 2

    def test_tiny_mlp(self):
        model = build_tiny_mlp(in_features=12, n_classes=5)
        assert model.forward(np.zeros((3, 12), np.float32)).shape == (3, 5)


class TestRegistry:
    def test_list_models(self):
        names = list_models()
        assert {"lenet", "alexnet", "tiny_cnn", "micro_cnn", "tiny_mlp"} <= set(names)

    def test_build_by_name(self):
        model = build_model("tiny_mlp", in_features=6, n_classes=2)
        assert isinstance(model, Sequential)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            build_model("resnet152")

    def test_register_custom_model(self):
        def builder(**kwargs):
            return build_tiny_mlp(**kwargs)

        register_model("custom_test_model", builder, overwrite=True)
        assert "custom_test_model" in list_models()
        with pytest.raises(ValueError):
            register_model("custom_test_model", builder)
        MODEL_REGISTRY.pop("custom_test_model")

    def test_seeded_builds_are_reproducible(self):
        a = build_tiny_cnn(rng=3)
        b = build_tiny_cnn(rng=3)
        for p_a, p_b in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(p_a.value, p_b.value)
