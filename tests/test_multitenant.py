"""Tests of multi-model, multi-tenant serving and the workload engine.

Covers the deployment table (one scheduler, many models, batches never
mixing), the tenant layer (token-bucket quotas, structured 429/403/404 on
both HTTP fronts, weighted fair draining), the multi-deployment
:class:`~repro.workflow.ServeStage` cache keys, the federation rollup of
the new per-model/per-tenant blocks, and the seeded workload engine that
drives the multi-tenant benchmarks.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.models import build_model
from repro.quant import quantize_model
from repro.serving import (
    AsyncPredictionServer,
    Client,
    Deployment,
    FixedPolicy,
    PredictionServer,
    Request,
    RequestQueue,
    Scheduler,
    SchedulerStopped,
    TenantConfig,
    TenantQuotaExceeded,
    TenantTable,
    TokenBucket,
    UnknownModel,
    UnknownTenant,
)
from repro.serving.fleet import rollup_snapshots
from repro.workflow import ArtifactStore, Experiment, ServeStage

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from workload import (  # noqa: E402 - path set up above
    ArrivalTrace,
    SCENARIOS,
    WorkloadItem,
    build_scenario,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
    run_closed_loop,
    run_open_loop,
)


# --------------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def deployment(tiny_qmodel, tiny_pipeline_result):
    """A two-level deployment of the trained tiny CNN."""
    points = [
        {"label": "exact", "taus": {}, "accuracy": 0.9},
        {"label": "mid", "taus": {"conv1": 0.05, "conv2": 0.05}, "accuracy": 0.85},
    ]
    return Deployment.from_points(
        tiny_qmodel,
        points,
        tiny_pipeline_result.significance,
        unpacked=tiny_pipeline_result.unpacked,
    )


@pytest.fixture(scope="module")
def micro_parts():
    """Pipeline artifacts of an (untrained) micro CNN second model.

    Its input shape differs from the tiny CNN's on purpose: a batch that
    mixed the two models would crash ``np.stack`` long before producing a
    wrong answer, so every completed mixed-load run proves batch isolation.
    """
    from repro.core.calibration import ActivationCalibrator
    from repro.core.significance import compute_significance
    from repro.core.unpacking import unpack_model

    model = build_model("micro_cnn", input_shape=(8, 8, 1), n_classes=10, rng=3)
    images = np.random.default_rng(0).normal(size=(64, 8, 8, 1)).astype(np.float32)
    qmodel = quantize_model(model, images)
    significance = compute_significance(
        qmodel, ActivationCalibrator(qmodel).calibrate(images)
    )
    return {
        "qmodel": qmodel,
        "significance": significance,
        "unpacked": unpack_model(qmodel),
    }


@pytest.fixture(scope="module")
def micro_deployment(micro_parts):
    """An exact-only deployment of the micro CNN."""
    points = [{"label": "exact", "taus": {}, "accuracy": 1.0}]
    return Deployment.from_points(
        micro_parts["qmodel"], points, micro_parts["significance"],
        unpacked=micro_parts["unpacked"],
    )


def _post(url: str, payload: dict):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + "/predict", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


# --------------------------------------------------------------------------- token bucket
class TestTokenBucket:
    def test_burst_then_rate(self):
        clock = {"t": 0.0}
        bucket = TokenBucket(rate=2.0, burst=3, clock=lambda: clock["t"])
        assert [bucket.try_take() for _ in range(3)] == [None, None, None]
        wait = bucket.try_take()
        assert wait is not None and wait == pytest.approx(0.5)
        clock["t"] += 0.5  # one token refilled at 2 tokens/s
        assert bucket.try_take() is None
        assert bucket.try_take() is not None

    def test_refill_caps_at_burst(self):
        clock = {"t": 0.0}
        bucket = TokenBucket(rate=10.0, burst=2, clock=lambda: clock["t"])
        clock["t"] += 100.0
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        assert bucket.try_take() is not None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


# --------------------------------------------------------------------------- tenant table
class TestTenantTable:
    def test_default_tenant_always_exists_and_is_unlimited(self):
        table = TenantTable()
        assert "default" in table
        for _ in range(100):
            table.admit("default")

    def test_unknown_tenant_names_the_registered_ones(self):
        table = TenantTable([TenantConfig(name="acme")])
        with pytest.raises(UnknownTenant) as excinfo:
            table.get("stranger")
        assert excinfo.value.choices == ["acme", "default"]

    def test_rate_quota_rejects_with_retry_hint(self):
        config = TenantConfig(name="free", rate_limit_rps=1.0, burst=2)
        table = TenantTable([config])
        table.admit("free")
        table.admit("free")
        with pytest.raises(TenantQuotaExceeded) as excinfo:
            table.admit("free")
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after_s > 0

    def test_inflight_quota_frees_on_release(self):
        table = TenantTable([TenantConfig(name="acme", max_inflight=2)])
        table.admit("acme")
        table.admit("acme")
        with pytest.raises(TenantQuotaExceeded) as excinfo:
            table.admit("acme")
        assert excinfo.value.reason == "inflight"
        table.release("acme")
        table.admit("acme")

    def test_json_roundtrip(self, tmp_path):
        table = TenantTable([
            TenantConfig(name="acme", model="tiny_cnn", priority="interactive",
                         slo_ms=100.0, rate_limit_rps=5.0, weight=3.0),
        ])
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"tenants": table.as_dicts()}))
        loaded = TenantTable.load(path)
        assert loaded.as_dicts() == table.as_dicts()
        assert loaded.get("acme").priority == "interactive"

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('{"tenants": 5}')
        with pytest.raises(ValueError, match="list"):
            TenantTable.load(path)


# --------------------------------------------------------------------------- fair queueing
class TestWeightedFairQueue:
    def _flood(self, queue, tenants, per_tenant=24):
        x = np.zeros(4, dtype=np.float32)
        for _ in range(per_tenant):
            for tenant in tenants:
                queue.put(Request(x, tenant=tenant))

    def test_two_tenant_flood_drains_by_weight(self):
        queue = RequestQueue(starvation_ms=None,
                             tenant_weights={"heavy": 3.0, "light": 1.0})
        self._flood(queue, ("heavy", "light"))
        drained = {"heavy": 0, "light": 0}
        for _ in range(16):
            drained[queue.get_batch(1, 0.0, poll_timeout=0.0)[0].tenant] += 1
        queue.drain(SchedulerStopped("test over"))
        # Smooth WRR at 3:1 serves heavy 12 of every 16 pops, interleaved.
        assert drained == {"heavy": 12, "light": 4}

    def test_unweighted_tenants_share_equally(self):
        queue = RequestQueue(starvation_ms=None)
        self._flood(queue, ("a", "b"), per_tenant=8)
        drained = {"a": 0, "b": 0}
        for _ in range(8):
            drained[queue.get_batch(1, 0.0, poll_timeout=0.0)[0].tenant] += 1
        queue.drain(SchedulerStopped("test over"))
        assert drained == {"a": 4, "b": 4}

    def test_fairness_is_per_priority_class(self):
        # An interactive arrival from the light tenant still overtakes the
        # heavy tenant's standard backlog: WRR shares within a class,
        # priority between classes.
        queue = RequestQueue(starvation_ms=None,
                             tenant_weights={"heavy": 8.0, "light": 1.0})
        x = np.zeros(4, dtype=np.float32)
        for _ in range(4):
            queue.put(Request(x, priority="standard", tenant="heavy"))
        queue.put(Request(x, priority="interactive", tenant="light"))
        first = queue.get_batch(1, 0.0, poll_timeout=0.0)[0]
        queue.drain(SchedulerStopped("test over"))
        assert (first.tenant, first.priority) == ("light", "interactive")


# --------------------------------------------------------------------------- multi-model scheduler
class TestDeploymentTable:
    def test_batches_never_mix_models(self, deployment, micro_deployment, small_split):
        # Different input shapes per model: one mixed forward pass would
        # crash np.stack, so a fully-answered interleaved load is proof.
        micro_name = micro_deployment.qmodel.name
        micro_images = np.random.default_rng(1).normal(size=(16, 8, 8, 1)).astype(np.float32)
        tiny_images = small_split.test.images[:16]
        with Scheduler([deployment, micro_deployment], max_batch_size=8,
                       max_wait_ms=5.0) as scheduler:
            client = Client(scheduler, timeout_s=60.0)
            requests = []
            for i in range(32):
                if i % 2:
                    requests.append(client.submit(micro_images[i // 2], model=micro_name))
                else:
                    requests.append(client.submit(tiny_images[i // 2]))
            for request in requests:
                request.result(timeout=60.0)
            snapshot = scheduler.metrics.snapshot()
        assert snapshot.per_model["tiny_cnn"]["requests"] == 16
        assert snapshot.per_model[micro_name]["requests"] == 16
        assert snapshot.requests_completed == 32

    def test_first_deployment_is_the_default_model(self, deployment, micro_deployment):
        with Scheduler([deployment, micro_deployment]) as scheduler:
            assert scheduler.default_model == "tiny_cnn"
            assert scheduler.models() == ["tiny_cnn", micro_deployment.qmodel.name]
            assert scheduler.resolve_model(None) == "tiny_cnn"

    def test_unknown_model_names_the_available_ones(self, deployment, micro_deployment):
        with Scheduler([deployment, micro_deployment]) as scheduler:
            with pytest.raises(UnknownModel) as excinfo:
                scheduler.submit(np.zeros((4, 4, 1), dtype=np.float32), model="resnet")
            assert "resnet" in str(excinfo.value)
            assert excinfo.value.choices == sorted(scheduler.models())

    def test_tenant_pin_routes_to_its_model(self, deployment, micro_deployment):
        micro_name = micro_deployment.qmodel.name
        tenants = TenantTable([TenantConfig(name="pinned", model=micro_name)])
        with Scheduler([deployment, micro_deployment], tenants=tenants) as scheduler:
            assert scheduler.resolve_model(None, tenant="pinned") == micro_name
            # An explicit model in the request still wins over the pin.
            assert scheduler.resolve_model("tiny_cnn", tenant="pinned") == "tiny_cnn"

    def test_duplicate_deployment_names_rejected(self, deployment):
        with pytest.raises(ValueError, match="duplicate"):
            Scheduler([deployment, deployment])

    def test_policy_instance_cannot_be_shared_across_models(
        self, deployment, micro_deployment
    ):
        with pytest.raises(ValueError, match="policy"):
            Scheduler([deployment, micro_deployment], policy=FixedPolicy())

    def test_per_model_policy_mapping(self, deployment, micro_deployment):
        micro_name = micro_deployment.qmodel.name
        scheduler = Scheduler(
            [deployment, micro_deployment],
            policy={"tiny_cnn": "queue-depth", micro_name: FixedPolicy()},
        )
        try:
            policies = scheduler.policies()
            assert type(policies["tiny_cnn"]).__name__ == "QueueDepthPolicy"
            assert isinstance(policies[micro_name], FixedPolicy)
        finally:
            scheduler.stop()


# --------------------------------------------------------------------------- scheduler quotas
class TestSchedulerQuotas:
    def test_rate_quota_rejected_and_counted(self, deployment, small_split):
        tenants = TenantTable([TenantConfig(name="free", rate_limit_rps=0.001, burst=1)])
        x = small_split.test.images[0]
        with Scheduler(deployment, tenants=tenants) as scheduler:
            scheduler.submit(x, tenant="free").result(timeout=60.0)
            with pytest.raises(TenantQuotaExceeded) as excinfo:
                scheduler.submit(x, tenant="free")
            assert excinfo.value.reason == "rate"
            text = scheduler.metrics.render_prometheus()
        assert 'repro_tenant_rejected_total{tenant="free",reason="rate"} 1' in text
        assert 'repro_tenant_requests_total{tenant="free"} 1' in text

    def test_inflight_quota_releases_when_requests_finish(self, deployment, small_split):
        tenants = TenantTable([TenantConfig(name="acme", max_inflight=2)])
        x = small_split.test.images[0]
        with Scheduler(deployment, tenants=tenants) as scheduler:
            # Occupy both slots out-of-band, exactly as two queued requests
            # would (deterministic: no race against the worker draining).
            scheduler.tenants.admit("acme")
            scheduler.tenants.admit("acme")
            with pytest.raises(TenantQuotaExceeded) as excinfo:
                scheduler.submit(x, tenant="acme")
            assert excinfo.value.reason == "inflight"
            text = scheduler.metrics.render_prometheus()
            assert 'repro_tenant_rejected_total{tenant="acme",reason="inflight"} 1' in text
            scheduler.tenants.release("acme")
            scheduler.tenants.release("acme")
            scheduler.submit(x, tenant="acme").result(timeout=60.0)
            # The done-callback returns the slot; it may fire a hair after
            # result() unblocks, so poll with a bounded deadline.
            deadline = time.monotonic() + 10.0
            while scheduler.tenants.inflight("acme") and time.monotonic() < deadline:
                time.sleep(0.001)
        assert scheduler.tenants.inflight("acme") == 0

    def test_unknown_tenant_rejected_before_any_quota(self, deployment):
        with Scheduler(deployment) as scheduler:
            with pytest.raises(UnknownTenant):
                scheduler.submit(np.zeros((4, 4, 1), dtype=np.float32), tenant="ghost")

    def test_tenant_default_priority_applies(self, deployment, small_split):
        tenants = TenantTable([TenantConfig(name="bulk", priority="batch")])
        with Scheduler(deployment, tenants=tenants) as scheduler:
            request = scheduler.submit(small_split.test.images[0], tenant="bulk")
            assert request.priority == "batch"
            request.result(timeout=60.0)


# --------------------------------------------------------------------------- HTTP fronts
@pytest.mark.parametrize("front_cls", [PredictionServer, AsyncPredictionServer],
                         ids=["thread", "asyncio"])
class TestStructuredErrorsOnBothFronts:
    def _scheduler(self, deployment, micro_deployment):
        tenants = TenantTable([
            TenantConfig(name="free", rate_limit_rps=0.001, burst=1),
        ])
        return Scheduler([deployment, micro_deployment], tenants=tenants)

    def test_unknown_model_is_a_structured_404(
        self, front_cls, deployment, micro_deployment, small_split
    ):
        x = small_split.test.images[0]
        with self._scheduler(deployment, micro_deployment) as scheduler:
            with front_cls(scheduler, port=0) as server:
                status, body, _ = _post(server.url, {
                    "inputs": x.tolist(), "model": "resnet",
                })
        assert status == 404
        assert body["model"] == "resnet"
        assert body["available_models"] == sorted(["tiny_cnn", micro_deployment.qmodel.name])

    def test_unknown_tenant_is_a_structured_403(
        self, front_cls, deployment, micro_deployment, small_split
    ):
        x = small_split.test.images[0]
        with self._scheduler(deployment, micro_deployment) as scheduler:
            with front_cls(scheduler, port=0) as server:
                status, body, _ = _post(server.url, {
                    "inputs": x.tolist(), "tenant": "ghost",
                })
        assert status == 403
        assert body["tenant"] == "ghost"
        assert body["registered_tenants"] == ["default", "free"]

    def test_quota_429_carries_reason_and_retry_after(
        self, front_cls, deployment, micro_deployment, small_split
    ):
        x = small_split.test.images[0]
        with self._scheduler(deployment, micro_deployment) as scheduler:
            with front_cls(scheduler, port=0) as server:
                status, body, _ = _post(server.url, {"inputs": x.tolist(), "tenant": "free"})
                assert status == 200
                status, body, headers = _post(
                    server.url, {"inputs": x.tolist(), "tenant": "free"}
                )
        assert status == 429
        assert body["tenant"] == "free" and body["reason"] == "rate"
        assert body["retry_after_s"] > 0
        assert float(headers["Retry-After"]) >= 1

    def test_predict_echoes_model_and_tenant(
        self, front_cls, deployment, micro_deployment, small_split
    ):
        x = small_split.test.images[0]
        with self._scheduler(deployment, micro_deployment) as scheduler:
            with front_cls(scheduler, port=0) as server:
                status, body, _ = _post(server.url, {"inputs": x.tolist()})
        assert status == 200
        assert body["model"] == "tiny_cnn"
        assert body["tenant"] == "default"


# --------------------------------------------------------------------------- ServeStage
class TestMultiDeploymentServeStage:
    _POINTS = [{"label": "exact", "taus": {}, "accuracy": 1.0}]

    def test_two_serve_stages_in_one_graph(
        self, tiny_qmodel, tiny_pipeline_result, micro_parts, tmp_path
    ):
        stages = [
            ServeStage(points=self._POINTS),
            ServeStage(points=self._POINTS, artifact="serving_micro",
                       inputs={"qmodel": "qmodel_micro",
                               "significance": "significance_micro",
                               "unpacked": "unpacked_micro"}),
        ]
        inputs = {
            "qmodel": tiny_qmodel,
            "significance": tiny_pipeline_result.significance,
            "unpacked": tiny_pipeline_result.unpacked,
            "qmodel_micro": micro_parts["qmodel"],
            "significance_micro": micro_parts["significance"],
            "unpacked_micro": micro_parts["unpacked"],
        }
        store = ArtifactStore(tmp_path / "store")
        result = Experiment(stages, inputs=inputs, store=store).run()
        assert result["serving"].qmodel.name == "tiny_cnn"
        assert result["serving_micro"].qmodel.name == micro_parts["qmodel"].name
        assert not result.cached_stages
        # Same config, same inputs: both serve stages replay from the store.
        rerun = Experiment(stages, inputs=inputs, store=store).run()
        assert set(rerun.cached_stages) >= {"serve", "serve:serving_micro"}

    def test_artifact_name_is_part_of_the_cache_key(self):
        base = ServeStage(points=self._POINTS)
        renamed = ServeStage(points=self._POINTS, artifact="serving_b")
        assert base.config() != renamed.config()
        assert renamed.provides == ("serving_b",)
        assert renamed.name == "serve:serving_b"

    def test_inputs_remap_is_part_of_the_cache_key(self):
        base = ServeStage(points=self._POINTS)
        remapped = ServeStage(points=self._POINTS, inputs={"qmodel": "qmodel_b"})
        assert base.config() != remapped.config()
        assert "qmodel_b" in remapped.requires and "qmodel" not in remapped.requires

    def test_unknown_input_remap_rejected(self):
        with pytest.raises(ValueError, match="remap"):
            ServeStage(points=self._POINTS, inputs={"dse": "other"})


# --------------------------------------------------------------------------- federation rollup
class TestFederationRollup:
    def test_per_model_and_per_tenant_blocks_sum(self):
        snapshots = {
            "0": {
                "requests_completed": 10, "batches": 4,
                "per_model": {"a": {"requests": 6, "batches": 2, "current_level": "L0",
                                    "per_level_requests": {"L0": 6}}},
                "per_tenant": {"acme": {"completed": 6, "rejected_total": 1,
                                        "rejected": {"rate": 1}, "shed": 0,
                                        "slo_ms": 100.0, "weight": 2.0}},
            },
            "1": {
                "requests_completed": 5, "batches": 2,
                "per_model": {"a": {"requests": 5, "batches": 2, "current_level": "L1",
                                    "per_level_requests": {"L1": 5}}},
                "per_tenant": {"acme": {"completed": 5, "rejected_total": 2,
                                        "rejected": {"rate": 1, "inflight": 1},
                                        "shed": 1}},
            },
        }
        fleet = rollup_snapshots(snapshots)
        model = fleet["per_model"]["a"]
        assert model["requests"] == 11 and model["batches"] == 4
        assert model["per_level_requests"] == {"L0": 6, "L1": 5}
        assert model["current_levels"] == {"0": "L0", "1": "L1"}
        tenant = fleet["per_tenant"]["acme"]
        assert tenant["completed"] == 11
        assert tenant["rejected_total"] == 3
        assert tenant["rejected"] == {"rate": 2, "inflight": 1}
        assert tenant["shed"] == 1
        assert tenant["slo_ms"] == 100.0 and tenant["weight"] == 2.0


# --------------------------------------------------------------------------- workload engine
class TestWorkloadEngine:
    def test_same_seed_same_trace(self):
        a = poisson_trace(200.0, 1.0, seed=42, tenants={"x": 1.0, "y": 2.0})
        b = poisson_trace(200.0, 1.0, seed=42, tenants={"x": 1.0, "y": 2.0})
        assert a.items == b.items
        c = poisson_trace(200.0, 1.0, seed=43, tenants={"x": 1.0, "y": 2.0})
        assert a.items != c.items

    def test_replay_file_roundtrip(self, tmp_path):
        trace = bursty_trace(50.0, 400.0, 1.0, seed=7,
                             tenants={"a": 1.0}, priorities={"interactive": 1.0})
        path = trace.save(tmp_path / "trace.json")
        loaded = ArrivalTrace.load(path)
        assert loaded.name == trace.name and loaded.seed == trace.seed
        assert len(loaded) == len(trace)
        assert [i.at_s for i in loaded.items] == pytest.approx(
            [round(i.at_s, 6) for i in trace.items]
        )
        assert [i.tenant for i in loaded.items] == [i.tenant for i in trace.items]
        assert [i.priority for i in loaded.items] == [i.priority for i in trace.items]

    def test_bursty_trace_concentrates_in_burst_windows(self):
        trace = bursty_trace(base_rps=20.0, burst_rps=800.0, duration_s=2.0,
                             period_s=1.0, duty=0.25, seed=0)
        in_burst = sum(1 for item in trace.items if (item.at_s % 1.0) < 0.25)
        assert in_burst > 0.7 * len(trace)

    def test_diurnal_trace_peaks_mid_period(self):
        trace = diurnal_trace(mean_rps=300.0, duration_s=2.0, period_s=2.0,
                              amplitude=0.9, seed=0)
        first_half = sum(1 for item in trace.items if item.at_s < 1.0)
        assert first_half > 0.6 * len(trace)  # sin peaks in the first half

    def test_open_loop_fires_at_trace_offsets(self):
        trace = ArrivalTrace("t", 0, [WorkloadItem(0.0), WorkloadItem(0.5),
                                      WorkloadItem(1.0)])
        clock = {"t": 0.0}
        slept = []

        def sleep(s):
            slept.append(s)
            clock["t"] += s

        fired = run_open_loop(trace, lambda item: clock["t"],
                              clock=lambda: clock["t"], sleep=sleep)
        assert fired == [0.0, 0.5, 1.0]
        assert slept == pytest.approx([0.5, 0.5])

    def test_closed_loop_serves_every_item(self):
        trace = poisson_trace(100.0, 0.5, seed=1)
        served = run_closed_loop(trace, lambda item: item.tenant, concurrency=3)
        assert len(served) == len(trace)

    def test_scenarios_are_deterministic_and_named(self):
        for name in SCENARIOS:
            assert build_scenario(name).items == build_scenario(name).items
        with pytest.raises(ValueError, match="steady_mixed"):
            build_scenario("nope")

    def test_scaled_compresses_time(self):
        trace = poisson_trace(100.0, 1.0, seed=0)
        fast = trace.scaled(0.5)
        assert fast.duration_s == pytest.approx(trace.duration_s * 0.5)
        assert len(fast) == len(trace)
