"""Tests for the greedy per-layer DSE strategy and latency-aware selection."""

from __future__ import annotations

import pytest

from repro.core import greedy_per_layer_search, latency_aware_selection
from repro.core.strategies import estimate_design_latency_ms
from repro.isa import STM32U575


class TestGreedySearch:
    def test_respects_accuracy_budget(self, tiny_qmodel, tiny_significance, small_split):
        images, labels = small_split.test.images[:96], small_split.test.labels[:96]
        result = greedy_per_layer_search(
            tiny_qmodel, tiny_significance, images, labels,
            max_accuracy_loss=0.05,
            tau_candidates=[0.001, 0.005, 0.02, 0.08],
            max_steps=8,
        )
        assert result.accuracy >= result.baseline_accuracy - 0.05 - 1e-9
        assert 0.0 <= result.conv_mac_reduction <= 1.0
        assert result.accuracy_loss == pytest.approx(result.baseline_accuracy - result.accuracy)

    def test_zero_budget_still_returns_valid_config(self, tiny_qmodel, tiny_significance, small_split):
        images, labels = small_split.test.images[:64], small_split.test.labels[:64]
        result = greedy_per_layer_search(
            tiny_qmodel, tiny_significance, images, labels,
            max_accuracy_loss=0.0,
            tau_candidates=[0.001, 0.01],
            max_steps=4,
        )
        # Whatever was accepted kept accuracy at (or above) the baseline.
        assert result.accuracy >= result.baseline_accuracy - 1e-9
        assert result.config.model_name == tiny_qmodel.name

    def test_steps_are_recorded_and_monotonic_in_reduction(self, tiny_qmodel, tiny_significance, small_split):
        images, labels = small_split.test.images[:96], small_split.test.labels[:96]
        result = greedy_per_layer_search(
            tiny_qmodel, tiny_significance, images, labels,
            max_accuracy_loss=0.10,
            tau_candidates=[0.002, 0.01, 0.05],
            max_steps=6,
        )
        reductions = [step.conv_mac_reduction for step in result.steps]
        assert all(b >= a - 1e-9 for a, b in zip(reductions, reductions[1:]))
        if result.steps:
            assert result.steps[-1].conv_mac_reduction == pytest.approx(result.conv_mac_reduction)
            assert set(result.config.taus()) <= set(tiny_significance.layer_names())

    def test_heterogeneous_thresholds_possible(self, tiny_qmodel, tiny_significance, small_split):
        images, labels = small_split.test.images[:96], small_split.test.labels[:96]
        result = greedy_per_layer_search(
            tiny_qmodel, tiny_significance, images, labels,
            max_accuracy_loss=0.15,
            tau_candidates=[0.005, 0.02, 0.08],
            max_steps=10,
        )
        taus = result.config.taus()
        # With a generous budget the search approximates at least one layer.
        assert len(taus) >= 1

    def test_at_least_as_good_as_best_uniform_candidate(self, tiny_qmodel, tiny_significance, small_split):
        """Greedy search (which can express uniform configs) should not lose to the
        best *uniform* configuration drawn from the same tau ladder and budget."""
        from repro.core import ApproxConfig
        from repro.core.skipping import conv_mac_reduction

        images, labels = small_split.test.images[:96], small_split.test.labels[:96]
        ladder = [0.002, 0.01, 0.05]
        budget = 0.10
        baseline = tiny_qmodel.evaluate_accuracy(images, labels)

        best_uniform = 0.0
        for tau in ladder:
            config = ApproxConfig.uniform(tiny_qmodel.name, tiny_significance.layer_names(), tau)
            masks = config.build_masks(tiny_significance)
            accuracy = tiny_qmodel.evaluate_accuracy(images, labels, masks=masks)
            if accuracy >= baseline - budget:
                best_uniform = max(best_uniform, conv_mac_reduction(tiny_qmodel, masks))

        greedy = greedy_per_layer_search(
            tiny_qmodel, tiny_significance, images, labels,
            max_accuracy_loss=budget, tau_candidates=ladder, max_steps=12,
        )
        # Greedy explores per-layer moves, so it can in principle stop short of a
        # feasible uniform configuration; allow a small slack.
        assert greedy.conv_mac_reduction >= best_uniform - 0.03

    def test_validation(self, tiny_qmodel, tiny_significance, small_split):
        images, labels = small_split.test.images[:32], small_split.test.labels[:32]
        with pytest.raises(ValueError):
            greedy_per_layer_search(tiny_qmodel, tiny_significance, images, labels, max_accuracy_loss=-0.1)
        with pytest.raises(ValueError):
            greedy_per_layer_search(
                tiny_qmodel, tiny_significance, images, labels, 0.05, tau_candidates=[0.0, 0.1]
            )
        with pytest.raises(ValueError):
            greedy_per_layer_search(
                tiny_qmodel, tiny_significance, images, labels, 0.05, layer_names=[]
            )


class TestLatencyAwareSelection:
    def test_selection_is_feasible_and_no_slower_than_mac_pick(self, tiny_qmodel, tiny_pipeline_result):
        dse = tiny_pipeline_result.dse
        significance = tiny_pipeline_result.significance
        budget = 0.10
        chosen = latency_aware_selection(tiny_qmodel, dse, significance, STM32U575, budget)
        assert chosen is not None
        assert chosen.accuracy >= dse.baseline_accuracy - budget

        mac_pick = dse.best_within_loss(budget)
        latency_chosen = estimate_design_latency_ms(tiny_qmodel, chosen, significance, STM32U575)
        latency_mac_pick = estimate_design_latency_ms(tiny_qmodel, mac_pick, significance, STM32U575)
        assert latency_chosen <= latency_mac_pick + 1e-9

    def test_infeasible_budget_returns_none(self, tiny_qmodel, tiny_pipeline_result):
        dse = tiny_pipeline_result.dse
        original = dse.baseline_accuracy
        try:
            dse.baseline_accuracy = 2.0
            assert latency_aware_selection(
                tiny_qmodel, dse, tiny_pipeline_result.significance, STM32U575, 0.0
            ) is None
        finally:
            dse.baseline_accuracy = original

    def test_estimate_design_latency_positive(self, tiny_qmodel, tiny_pipeline_result):
        exact = tiny_pipeline_result.dse.points[0]
        latency = estimate_design_latency_ms(
            tiny_qmodel, exact, tiny_pipeline_result.significance, STM32U575
        )
        assert latency > 0
