"""Tests for computation skipping, approximate configs, DSE and Pareto analysis (stages 4-5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ApproxConfig,
    DSEConfig,
    Granularity,
    LayerApproxSpec,
    build_model_masks,
    build_skip_mask,
    pareto_front,
    retained_fraction,
    run_dse,
    select_by_accuracy_loss,
)
from repro.core.dse import _generate_layer_subsets
from repro.core.pareto import is_pareto_optimal
from repro.core.skipping import conv_mac_reduction


class TestBuildSkipMask:
    def _significance(self, rng, out_c=4, k=12):
        sig = rng.random((out_c, k))
        return sig / sig.sum(axis=1, keepdims=True)

    def test_negative_tau_keeps_everything(self, rng):
        sig = self._significance(rng)
        assert build_skip_mask(sig, -1.0).all()

    def test_mask_is_monotonic_in_tau(self, rng):
        sig = self._significance(rng)
        previous = build_skip_mask(sig, 0.0)
        for tau in (0.01, 0.05, 0.1, 0.5):
            current = build_skip_mask(sig, tau)
            # Everything retained at a larger tau was retained at a smaller tau.
            assert (previous | ~current).all()
            previous = current

    def test_threshold_semantics(self):
        sig = np.array([[0.1, 0.2, 0.7]])
        mask = build_skip_mask(sig, 0.1)
        np.testing.assert_array_equal(mask, [[False, True, True]])  # S <= tau skipped

    def test_infinite_significance_always_retained(self):
        sig = np.array([[np.inf, np.inf], [0.5, 0.5]])
        mask = build_skip_mask(sig, 0.9)
        assert mask[0].all()

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            build_skip_mask(np.ones(4), 0.1)

    def test_channel_granularity_skips_whole_groups(self, rng):
        sig = self._significance(rng, out_c=2, k=12)
        coords = np.stack(
            [np.zeros(12, int), np.zeros(12, int), np.repeat(np.arange(4), 3)], axis=1
        )
        mask = build_skip_mask(sig, 0.08, granularity=Granularity.INPUT_CHANNEL, operand_coords=coords)
        # Within each (output channel, input channel) group the decision is uniform.
        for out_channel in range(2):
            for group in range(4):
                member = coords[:, 2] == group
                values = np.unique(mask[out_channel, member])
                assert values.size == 1

    def test_coarse_granularity_requires_coords(self, rng):
        sig = self._significance(rng)
        with pytest.raises(ValueError):
            build_skip_mask(sig, 0.1, granularity=Granularity.INPUT_CHANNEL)

    def test_kernel_position_granularity(self, rng):
        sig = self._significance(rng, out_c=1, k=8)
        coords = np.stack(
            [np.repeat([0, 1], 4), np.tile([0, 0, 1, 1], 2), np.tile([0, 1], 4)], axis=1
        )
        mask = build_skip_mask(sig, 0.12, granularity=Granularity.KERNEL_POSITION, operand_coords=coords)
        assert mask.shape == sig.shape

    def test_build_model_masks_only_listed_layers(self, tiny_significance):
        names = tiny_significance.layer_names()
        masks = build_model_masks(tiny_significance, {names[0]: 0.05})
        assert set(masks) == {names[0]}
        with pytest.raises(KeyError):
            build_model_masks(tiny_significance, {"missing": 0.1})

    def test_retained_fraction(self):
        masks = {"a": np.array([[True, False], [True, True]])}
        assert retained_fraction(masks) == pytest.approx(0.75)
        assert retained_fraction({}) == 1.0

    def test_conv_mac_reduction_bounds(self, tiny_qmodel, tiny_significance):
        masks = build_model_masks(tiny_significance, {n: 0.05 for n in tiny_significance.layer_names()})
        reduction = conv_mac_reduction(tiny_qmodel, masks)
        assert 0.0 <= reduction <= 1.0


class TestApproxConfig:
    def test_uniform_and_exact(self):
        config = ApproxConfig.uniform("m", ["conv1", "conv2"], tau=0.01)
        assert not config.is_exact
        assert config.taus() == {"conv1": 0.01, "conv2": 0.01}
        assert ApproxConfig.exact("m").is_exact

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LayerApproxSpec(tau=-0.1)
        with pytest.raises(ValueError):
            LayerApproxSpec(tau=0.1, granularity="nope")

    def test_json_roundtrip(self, tmp_path):
        config = ApproxConfig.uniform("tiny", ["conv1"], tau=0.02, label="test")
        path = tmp_path / "config.json"
        config.save(path)
        loaded = ApproxConfig.load(path)
        assert loaded.model_name == "tiny"
        assert loaded.label == "test"
        assert loaded.taus() == {"conv1": 0.02}
        assert loaded.layer_specs["conv1"].granularity == Granularity.OPERAND.value

    def test_build_masks_matches_direct_construction(self, tiny_qmodel, tiny_significance):
        names = tiny_significance.layer_names()
        config = ApproxConfig.uniform(tiny_qmodel.name, names, tau=0.03)
        masks = config.build_masks(tiny_significance)
        direct = build_model_masks(tiny_significance, {n: 0.03 for n in names})
        for name in names:
            np.testing.assert_array_equal(masks[name], direct[name])


class TestPareto:
    def _points(self):
        return [
            {"x": 0.0, "y": 0.9},
            {"x": 0.2, "y": 0.9},   # dominates the first
            {"x": 0.4, "y": 0.85},
            {"x": 0.3, "y": 0.8},   # dominated by the previous two? (x smaller, y smaller than 0.85@0.4) -> dominated
            {"x": 0.6, "y": 0.5},
        ]

    def test_front_extraction(self):
        points = self._points()
        front = pareto_front(points, lambda p: p["x"], lambda p: p["y"])
        xs = [p["x"] for p in front]
        assert 0.0 not in xs  # dominated by x=0.2, same accuracy
        assert 0.3 not in xs
        assert {0.2, 0.4, 0.6} <= set(xs)

    def test_front_of_empty(self):
        assert pareto_front([], lambda p: p, lambda p: p) == []

    def test_is_pareto_optimal(self):
        points = self._points()
        assert is_pareto_optimal(points[1], points, lambda p: p["x"], lambda p: p["y"])
        assert not is_pareto_optimal(points[0], points, lambda p: p["x"], lambda p: p["y"])

    def test_duplicate_points_deduplicated(self):
        points = [{"x": 0.1, "y": 0.5}, {"x": 0.1, "y": 0.5}]
        front = pareto_front(points, lambda p: p["x"], lambda p: p["y"])
        assert len(front) == 1

    def test_select_by_accuracy_loss(self):
        points = self._points()
        best = select_by_accuracy_loss(points, baseline_accuracy=0.9, max_accuracy_loss=0.05,
                                       accuracy=lambda p: p["y"], gain=lambda p: p["x"])
        assert best["x"] == 0.4
        strict = select_by_accuracy_loss(points, 0.9, 0.0, lambda p: p["y"], lambda p: p["x"])
        assert strict["x"] == 0.2
        none = select_by_accuracy_loss(points, 2.0, 0.0, lambda p: p["y"], lambda p: p["x"])
        assert none is None
        with pytest.raises(ValueError):
            select_by_accuracy_loss(points, 0.9, -0.1, lambda p: p["y"], lambda p: p["x"])

    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_members_are_not_dominated_property(self, pairs):
        points = [{"x": x, "y": y} for x, y in pairs]
        front = pareto_front(points, lambda p: p["x"], lambda p: p["y"])
        assert front, "front of a non-empty set is non-empty"
        for member in front:
            for other in points:
                strictly_better = (
                    other["x"] >= member["x"]
                    and other["y"] >= member["y"]
                    and (other["x"] > member["x"] or other["y"] > member["y"])
                )
                assert not strictly_better


class TestDSE:
    def test_layer_subset_generation(self):
        names = ["c1", "c2", "c3"]
        assert _generate_layer_subsets(names, "all") == [("c1", "c2", "c3")]
        per_layer = _generate_layer_subsets(names, "per_layer")
        assert ("c1",) in per_layer and ("c1", "c2", "c3") in per_layer
        exhaustive = _generate_layer_subsets(names, "exhaustive")
        assert len(exhaustive) == 7
        with pytest.raises(ValueError):
            _generate_layer_subsets(names, "nope")
        with pytest.raises(ValueError):
            _generate_layer_subsets([], "all")

    def test_dse_config_tau_resolution(self):
        config = DSEConfig(tau_step=0.01, tau_max=0.05)
        assert config.resolved_taus() == pytest.approx([0.0, 0.01, 0.02, 0.03, 0.04, 0.05])
        explicit = DSEConfig(tau_values=[0.3, 0.1, 0.1])
        assert explicit.resolved_taus() == [0.1, 0.3]
        with pytest.raises(ValueError):
            DSEConfig(tau_values=[-0.1]).resolved_taus()

    def test_dse_result_structure(self, tiny_pipeline_result, tiny_qmodel):
        dse = tiny_pipeline_result.dse
        assert dse.baseline_conv_macs == tiny_qmodel.conv_macs()
        assert dse.points[0].config.is_exact  # exact reference point included
        assert dse.points[0].conv_mac_reduction == 0.0
        assert len(dse.points) >= len(DSEConfig(tau_values=[0.0, 0.01, 0.05, 0.1]).resolved_taus())
        for point in dse.points:
            assert 0.0 <= point.accuracy <= 1.0
            assert 0.0 <= point.conv_mac_reduction <= 1.0
            assert point.total_macs <= dse.baseline_total_macs

    def test_mac_reduction_monotonic_in_tau(self, tiny_pipeline_result):
        """Within the same layer subset, a larger tau never reduces fewer MACs."""
        dse = tiny_pipeline_result.dse
        swept = [(max(p.config.taus().values()), p.conv_mac_reduction)
                 for p in dse.points if not p.config.is_exact]
        swept.sort()
        reductions = [r for _, r in swept]
        assert all(b >= a - 1e-9 for a, b in zip(reductions, reductions[1:]))

    def test_best_within_loss_budgets_nested(self, tiny_pipeline_result):
        dse = tiny_pipeline_result.dse
        best_0 = dse.best_within_loss(0.0)
        best_10 = dse.best_within_loss(0.10)
        assert best_0 is not None and best_10 is not None
        assert best_10.conv_mac_reduction >= best_0.conv_mac_reduction

    def test_pareto_points_subset_of_points(self, tiny_pipeline_result):
        dse = tiny_pipeline_result.dse
        pareto = dse.pareto_points()
        assert 1 <= len(pareto) <= len(dse.points)
        for point in pareto:
            assert point in dse.points

    def test_as_table(self, tiny_pipeline_result):
        table = tiny_pipeline_result.dse.as_table()
        assert len(table) == len(tiny_pipeline_result.dse.points)
        assert {"accuracy", "conv_mac_reduction", "taus"} <= set(table[0])

    def test_run_dse_with_max_configs(self, tiny_qmodel, tiny_significance, small_split):
        dse = run_dse(
            tiny_qmodel,
            tiny_significance,
            small_split.test.images[:64],
            small_split.test.labels[:64],
            dse_config=DSEConfig(tau_values=[0.0, 0.01, 0.02, 0.05, 0.1], max_configs=3),
        )
        # 3 approximate configs + the exact reference point.
        assert len(dse.points) == 4

    def test_run_dse_alignment_check(self, tiny_qmodel, tiny_significance, small_split):
        with pytest.raises(ValueError):
            run_dse(
                tiny_qmodel,
                tiny_significance,
                small_split.test.images[:10],
                small_split.test.labels[:5],
            )

    @pytest.mark.slow
    def test_run_dse_parallel_workers_match_serial(self, tiny_qmodel, tiny_significance, small_split):
        """Worker processes (the paper used 6 threads) give identical results to the serial path."""
        images = small_split.test.images[:48]
        labels = small_split.test.labels[:48]
        taus = [0.0, 0.01, 0.03, 0.05, 0.08, 0.1]
        serial = run_dse(
            tiny_qmodel, tiny_significance, images, labels,
            dse_config=DSEConfig(tau_values=taus, n_workers=1),
        )
        parallel = run_dse(
            tiny_qmodel, tiny_significance, images, labels,
            dse_config=DSEConfig(tau_values=taus, n_workers=2),
        )
        assert len(serial.points) == len(parallel.points)
        for a, b in zip(serial.points, parallel.points):
            assert a.accuracy == pytest.approx(b.accuracy)
            assert a.conv_mac_reduction == pytest.approx(b.conv_mac_reduction)
