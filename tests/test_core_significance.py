"""Tests for unpacking, calibration and significance calculation (pipeline stages 1-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CODE_SIZE_MODEL,
    ActivationCalibrator,
    compute_layer_significance,
    compute_significance,
    unpack_layer,
    unpack_model,
)
from repro.core.unpacking import total_unpacked_code_bytes
from repro.kernels import pack_weight_pair
from repro.nn import functional as F
from repro.quant.qlayers import QDense
from repro.quant.schemes import dequantize


class TestUnpacking:
    def test_unpack_model_covers_conv_layers(self, tiny_qmodel, tiny_unpacked):
        conv_names = {layer.name for layer in tiny_qmodel.conv_layers()}
        assert set(tiny_unpacked) == conv_names

    def test_unpacked_weight_matrix_matches_layer(self, tiny_qmodel, tiny_unpacked):
        for conv in tiny_qmodel.conv_layers():
            unpacked = tiny_unpacked[conv.name]
            assert unpacked.weights.shape == (conv.out_channels, conv.operands_per_channel)
            np.testing.assert_array_equal(
                unpacked.weights, conv.weights.reshape(conv.out_channels, -1)
            )

    def test_operand_coords_are_im2col_ordered(self, tiny_qmodel, tiny_unpacked):
        conv = tiny_qmodel.conv_layers()[0]
        unpacked = tiny_unpacked[conv.name]
        kh, kw = conv.kernel_size
        coords = unpacked.operand_coords
        assert coords.shape == (conv.operands_per_channel, 3)
        # The last axis of im2col is ordered (kh, kw, channel): the channel
        # index varies fastest.
        assert coords[0].tolist() == [0, 0, 0]
        assert coords[1].tolist() == [0, 0, 1]
        assert coords[conv.in_channels].tolist() == [0, 1, 0]

    def test_include_dense(self, tiny_qmodel):
        unpacked = unpack_model(tiny_qmodel, include_dense=True)
        dense_names = {l.name for l in tiny_qmodel.layers if isinstance(l, QDense)}
        assert dense_names <= set(unpacked)
        for name in dense_names:
            assert not unpacked[name].is_conv

    def test_unpack_rejects_other_layers(self, tiny_qmodel):
        pool = [l for l in tiny_qmodel.layers if l.__class__.__name__ == "QMaxPool2D"][0]
        with pytest.raises(TypeError):
            unpack_layer(pool)

    def test_packed_weights_respect_mask(self, tiny_unpacked):
        layer = next(iter(tiny_unpacked.values()))
        mask = np.zeros_like(layer.weights, dtype=bool)
        mask[:, :4] = True
        packed = layer.packed_weights(mask)
        assert all(words.shape == (2,) for words in packed.values())
        expected_first = pack_weight_pair(int(layer.weights[0, 0]), int(layer.weights[0, 1]))
        assert int(packed[0][0]) == expected_first

    def test_code_bytes_monotonic_in_mask(self, tiny_unpacked):
        layer = next(iter(tiny_unpacked.values()))
        full = layer.code_bytes()
        half_mask = np.zeros_like(layer.weights, dtype=bool)
        half_mask[:, ::2] = True
        assert layer.code_bytes(half_mask) < full
        empty_mask = np.zeros_like(layer.weights, dtype=bool)
        assert layer.code_bytes(empty_mask) < layer.code_bytes(half_mask)

    def test_code_bytes_formula(self, tiny_unpacked):
        layer = next(iter(tiny_unpacked.values()))
        expected = CODE_SIZE_MODEL.layer_bytes(layer.total_operands, layer.out_channels)
        assert layer.code_bytes() == expected

    def test_retained_operands_validation(self, tiny_unpacked):
        layer = next(iter(tiny_unpacked.values()))
        with pytest.raises(ValueError):
            layer.retained_operands(np.ones((1, 1), dtype=bool))

    def test_total_code_bytes(self, tiny_unpacked):
        total = total_unpacked_code_bytes(tiny_unpacked)
        assert total == sum(layer.code_bytes() for layer in tiny_unpacked.values())


class TestCalibration:
    def test_layers_and_lengths(self, tiny_qmodel, tiny_calibration):
        for conv in tiny_qmodel.conv_layers():
            assert conv.name in tiny_calibration
            stats = tiny_calibration.layers[conv.name]
            assert stats.mean_inputs.shape == (conv.operands_per_channel,)
            assert stats.std_inputs.shape == (conv.operands_per_channel,)
            assert stats.samples > 0

    def test_first_layer_means_match_direct_computation(self, tiny_qmodel, small_split):
        """E[a_i] of the first conv equals the mean of the (dequantized) input patches."""
        calib_images = small_split.calibration.images[:32]
        calibrator = ActivationCalibrator(tiny_qmodel, batch_size=8)
        result = calibrator.calibrate(calib_images)
        conv1 = tiny_qmodel.conv_layers()[0]
        x_q = tiny_qmodel.quantize_input(calib_images)
        x_real = dequantize(x_q, conv1.input_params).astype(np.float64)
        cols = F.im2col(x_real, conv1.kernel_size, conv1.stride, conv1.padding, pad_value=0.0)
        expected = cols.reshape(-1, conv1.operands_per_channel).mean(axis=0)
        np.testing.assert_allclose(result.mean_inputs(conv1.name), expected, rtol=1e-6, atol=1e-9)

    def test_first_layer_means_nonnegative(self, tiny_calibration, tiny_qmodel):
        """Inputs are normalised to [0,1]; ReLU outputs are >= 0 after dequantization."""
        first = tiny_qmodel.conv_layers()[0].name
        assert tiny_calibration.mean_inputs(first).min() >= -1e-6

    def test_empty_calibration_rejected(self, tiny_qmodel):
        with pytest.raises(ValueError):
            ActivationCalibrator(tiny_qmodel).calibrate(np.zeros((0, 16, 16, 3), np.float32))

    def test_non_nhwc_rejected(self, tiny_qmodel):
        with pytest.raises(ValueError):
            ActivationCalibrator(tiny_qmodel).calibrate(np.zeros((4, 16, 16), np.float32))

    def test_include_dense(self, tiny_qmodel, small_split):
        calibrator = ActivationCalibrator(tiny_qmodel, include_dense=True)
        result = calibrator.calibrate(small_split.calibration.images[:16])
        dense_names = {l.name for l in tiny_qmodel.layers if isinstance(l, QDense)}
        assert dense_names <= set(result.layer_names())


class TestSignificance:
    def test_rows_sum_to_at_least_one(self, tiny_qmodel, tiny_significance):
        """|sum of signed contributions| = 1, so the sum of magnitudes is >= 1."""
        for name in tiny_significance.layer_names():
            sig = tiny_significance[name]
            finite_rows = np.isfinite(sig).all(axis=1)
            sums = sig[finite_rows].sum(axis=1)
            assert (sums >= 1.0 - 1e-6).all()

    def test_shape_matches_layer(self, tiny_qmodel, tiny_significance):
        for conv in tiny_qmodel.conv_layers():
            assert tiny_significance[conv.name].shape == (
                conv.out_channels,
                conv.operands_per_channel,
            )

    def test_nonnegative(self, tiny_significance):
        for name in tiny_significance.layer_names():
            assert (tiny_significance[name] >= 0).all()

    def test_zero_weight_operand_has_zero_significance(self, tiny_qmodel, tiny_calibration):
        conv = tiny_qmodel.conv_layers()[0]
        mean_inputs = tiny_calibration.mean_inputs(conv.name)
        sig = compute_layer_significance(conv, mean_inputs)
        zero_weights = conv.weights.reshape(conv.out_channels, -1) == 0
        finite = np.isfinite(sig)
        assert (sig[zero_weights & finite] == 0).all()

    def test_zero_sum_channel_marked_infinite(self):
        """A channel whose expected accumulation is zero retains every operand."""

        class FakeLayer:
            pass

        # Build a minimal QConv2D-like object through the real class.
        from repro.quant.qlayers import QConv2D
        from repro.quant.schemes import QuantizationParams, symmetric_params_from_absmax

        weights = np.zeros((1, 1, 1, 2), dtype=np.int8)
        weights[0, 0, 0, 0] = 50
        weights[0, 0, 0, 1] = -50
        layer = QConv2D(
            name="c",
            weights=weights,
            bias=None,
            input_params=QuantizationParams(np.array([0.02]), np.array([0])),
            weight_params=symmetric_params_from_absmax(np.array([1.0])),
            output_params=QuantizationParams(np.array([0.05]), np.array([0])),
            stride=(1, 1),
            padding=(0, 0),
        )
        # Equal mean inputs -> contributions cancel exactly -> zero-sum channel.
        sig = compute_layer_significance(layer, np.array([0.5, 0.5]))
        assert np.isinf(sig).all()

    @pytest.mark.parametrize("metric", ["product_magnitude", "weight_magnitude", "random"])
    def test_alternative_metrics_normalised(self, tiny_qmodel, tiny_calibration, metric):
        result = compute_significance(tiny_qmodel, tiny_calibration, metric=metric, rng=3)
        for name in result.layer_names():
            sums = result[name].sum(axis=1)
            np.testing.assert_allclose(sums, 1.0, rtol=1e-6)

    def test_unknown_metric(self, tiny_qmodel, tiny_calibration):
        conv = tiny_qmodel.conv_layers()[0]
        with pytest.raises(ValueError):
            compute_layer_significance(conv, tiny_calibration.mean_inputs(conv.name), metric="nope")

    def test_length_mismatch(self, tiny_qmodel):
        conv = tiny_qmodel.conv_layers()[0]
        with pytest.raises(ValueError):
            compute_layer_significance(conv, np.ones(3))

    def test_metric_recorded(self, tiny_significance):
        assert tiny_significance.metric == "expected_contribution"
