"""Tests for the per-layer execution breakdown (the paper's profiling motivation)."""

from __future__ import annotations

import pytest

from repro.evaluation.breakdown import (
    build_layer_breakdown,
    category_shares,
    conv_cycle_share,
    format_layer_breakdown,
)
from repro.frameworks import AtamanEngine, CMSISNNEngine
from repro.isa import STM32U575
from repro.core import build_model_masks
from repro.models import build_lenet
from repro.quant import quantize_model


class TestBreakdownOnTinyModel:
    def test_entries_cover_working_layers_plus_overhead(self, tiny_qmodel):
        entries = build_layer_breakdown(CMSISNNEngine(tiny_qmodel), STM32U575)
        names = {entry.layer for entry in entries}
        assert "(runtime)" in names
        for layer in tiny_qmodel.mac_layers():
            assert layer.name in names

    def test_shares_sum_to_one(self, tiny_qmodel):
        entries = build_layer_breakdown(CMSISNNEngine(tiny_qmodel), STM32U575)
        assert sum(entry.share for entry in entries) == pytest.approx(1.0, abs=1e-9)
        assert all(entry.share >= 0 for entry in entries)

    def test_latency_consistent_with_engine(self, tiny_qmodel):
        engine = CMSISNNEngine(tiny_qmodel)
        entries = build_layer_breakdown(engine, STM32U575)
        total = sum(entry.latency_ms for entry in entries)
        assert total == pytest.approx(engine.latency_ms(STM32U575), rel=1e-6)

    def test_conv_layers_dominate(self, tiny_qmodel):
        """Section II-A: most cycles are consumed by the convolution layers."""
        share = conv_cycle_share(build_layer_breakdown(CMSISNNEngine(tiny_qmodel), STM32U575))
        assert share > 0.5

    def test_categories(self, tiny_qmodel):
        shares = category_shares(build_layer_breakdown(CMSISNNEngine(tiny_qmodel), STM32U575))
        assert {"conv", "fc", "overhead"} <= set(shares)

    def test_skipping_shrinks_conv_share(self, tiny_qmodel, tiny_significance):
        masks = build_model_masks(
            tiny_significance, {name: 0.05 for name in tiny_significance.layer_names()}
        )
        exact = conv_cycle_share(build_layer_breakdown(AtamanEngine(tiny_qmodel), STM32U575))
        approx = conv_cycle_share(
            build_layer_breakdown(AtamanEngine(tiny_qmodel, masks=masks), STM32U575)
        )
        assert approx < exact

    def test_format_contains_layers(self, tiny_qmodel):
        entries = build_layer_breakdown(CMSISNNEngine(tiny_qmodel), STM32U575)
        text = format_layer_breakdown(entries, title="breakdown")
        assert "breakdown" in text and "conv1" in text and "(runtime)" in text


class TestBreakdownOnPaperModel:
    @pytest.mark.slow
    def test_lenet_conv_dominance(self, small_split):
        """On the paper's (untrained-weights) LeNet geometry, conv layers take
        the large majority of the cycles -- the premise of optimising only them."""
        model = build_lenet(input_shape=(32, 32, 3), rng=0)
        qmodel = quantize_model(
            model, small_split.calibration.images[:16].repeat(2, axis=1).repeat(2, axis=2)
        )
        share = conv_cycle_share(build_layer_breakdown(CMSISNNEngine(qmodel), STM32U575))
        assert share > 0.7
