"""Tests for the float layer implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.layers.base import Layer, Parameter


def numerical_param_grad(layer, param, x, grad_out, eps=1e-4):
    """Central finite difference of sum(output * grad_out) w.r.t. one parameter entry."""
    grads = np.zeros_like(param.value)
    it = np.nditer(param.value, flags=["multi_index"])
    count = 0
    while not it.finished and count < 6:
        idx = it.multi_index
        original = param.value[idx]
        param.value[idx] = original + eps
        f_plus = float((layer.forward(x) * grad_out).sum())
        param.value[idx] = original - eps
        f_minus = float((layer.forward(x) * grad_out).sum())
        param.value[idx] = original
        grads[idx] = (f_plus - f_minus) / (2 * eps)
        count += 1
        it.iternext()
    return grads, count


class TestParameter:
    def test_accumulate_and_zero(self):
        p = Parameter(np.zeros((2, 2)), name="w")
        p.accumulate_grad(np.ones((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        np.testing.assert_array_equal(p.grad, 2 * np.ones((2, 2)))
        p.zero_grad()
        assert p.grad is None

    def test_shape_mismatch_raises(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.accumulate_grad(np.ones((3,)))

    def test_size_and_shape(self):
        p = Parameter(np.zeros((3, 4)))
        assert p.size == 12 and p.shape == (3, 4)


class TestBaseLayer:
    def test_not_implemented(self):
        layer = Layer()
        with pytest.raises(NotImplementedError):
            layer.forward(np.zeros(3))
        with pytest.raises(NotImplementedError):
            layer.backward(np.zeros(3))

    def test_train_eval_toggle(self):
        layer = ReLU()
        assert layer.training
        layer.eval()
        assert not layer.training
        layer.train()
        assert layer.training


class TestConv2D:
    def test_output_shape_and_macs(self):
        conv = Conv2D(3, 8, kernel_size=3, padding=1, rng=0)
        assert conv.output_shape((16, 16, 3)) == (16, 16, 8)
        assert conv.macs((16, 16, 3)) == 16 * 16 * 8 * 9 * 3

    def test_forward_backward_shapes(self, rng):
        conv = Conv2D(2, 4, kernel_size=3, padding=1, rng=0)
        x = rng.normal(size=(3, 6, 6, 2)).astype(np.float32)
        out = conv.forward(x)
        assert out.shape == (3, 6, 6, 4)
        grad_x = conv.backward(np.ones_like(out))
        assert grad_x.shape == x.shape
        assert conv.weight.grad is not None and conv.bias.grad is not None

    def test_weight_gradient_matches_numerical(self, rng):
        conv = Conv2D(2, 3, kernel_size=3, rng=0)
        x = rng.normal(size=(2, 5, 5, 2)).astype(np.float64)
        grad_out = rng.normal(size=(2, 3, 3, 3))
        out = conv.forward(x)
        conv.backward(grad_out)
        analytic = conv.weight.grad
        numeric, count = numerical_param_grad(conv, conv.weight, x, grad_out)
        flat_a = analytic.reshape(-1)[:count]
        flat_n = numeric.reshape(-1)[:count]
        # The layer computes in float32, so the finite-difference probe is
        # limited to ~1% relative precision.
        np.testing.assert_allclose(flat_a, flat_n, rtol=2e-2, atol=1e-3)

    def test_backward_before_forward_raises(self):
        conv = Conv2D(1, 1, kernel_size=1)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 1, 1)))

    def test_no_bias(self, rng):
        conv = Conv2D(2, 3, kernel_size=3, use_bias=False, rng=0)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            Conv2D(0, 4, kernel_size=3)

    def test_channel_mismatch_in_output_shape(self):
        conv = Conv2D(3, 4, kernel_size=3)
        with pytest.raises(ValueError):
            conv.output_shape((8, 8, 5))


class TestDense:
    def test_forward_matches_matmul(self, rng):
        dense = Dense(6, 4, rng=0)
        x = rng.normal(size=(5, 6)).astype(np.float32)
        expected = x @ dense.weight.value + dense.bias.value
        np.testing.assert_allclose(dense.forward(x), expected, rtol=1e-6)

    def test_backward_gradients(self, rng):
        dense = Dense(4, 3, rng=0)
        x = rng.normal(size=(7, 4)).astype(np.float32)
        out = dense.forward(x)
        grad_out = rng.normal(size=out.shape).astype(np.float32)
        grad_x = dense.backward(grad_out)
        np.testing.assert_allclose(grad_x, grad_out @ dense.weight.value.T, rtol=1e-5)
        np.testing.assert_allclose(dense.weight.grad, x.T @ grad_out, rtol=1e-5)
        np.testing.assert_allclose(dense.bias.grad, grad_out.sum(axis=0), rtol=1e-5)

    def test_rejects_wrong_features(self):
        dense = Dense(4, 3)
        with pytest.raises(ValueError):
            dense.forward(np.zeros((2, 5), np.float32))
        with pytest.raises(ValueError):
            dense.output_shape((5,))

    def test_macs(self):
        assert Dense(128, 10).macs((128,)) == 1280


class TestPoolingLayers:
    @pytest.mark.parametrize("cls", [MaxPool2D, AvgPool2D])
    def test_shapes(self, cls, rng):
        pool = cls(kernel_size=2)
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        out = pool.forward(x)
        assert out.shape == (2, 4, 4, 3)
        grad = pool.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert pool.output_shape((8, 8, 3)) == (4, 4, 3)

    def test_default_stride_equals_kernel(self):
        pool = MaxPool2D(kernel_size=3)
        assert pool.stride == (3, 3)

    @pytest.mark.parametrize("cls", [MaxPool2D, AvgPool2D])
    def test_backward_before_forward(self, cls):
        with pytest.raises(RuntimeError):
            cls().backward(np.zeros((1, 2, 2, 1)))


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, Sigmoid, Tanh, Softmax])
    def test_shape_preserved(self, cls, rng):
        layer = cls()
        x = rng.normal(size=(4, 10)).astype(np.float32)
        out = layer.forward(x)
        assert out.shape == x.shape
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert layer.output_shape((10,)) == (10,)

    def test_relu_clips_negative(self):
        out = ReLU().forward(np.array([[-2.0, 3.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 3.0]])

    def test_sigmoid_range(self, rng):
        out = Sigmoid().forward(rng.normal(size=(3, 5)).astype(np.float32) * 10)
        # float32 saturates to exactly 0.0/1.0 for large |x|, so the bounds are inclusive.
        assert ((out >= 0) & (out <= 1)).all()

    def test_softmax_rows_sum_to_one(self, rng):
        out = Softmax().forward(rng.normal(size=(6, 4)).astype(np.float32))
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-5)

    @pytest.mark.parametrize("cls", [ReLU, Sigmoid, Tanh, Softmax])
    def test_backward_before_forward(self, cls):
        with pytest.raises(RuntimeError):
            cls().backward(np.zeros((1, 3)))

    def test_tanh_gradient_numerical(self, rng):
        layer = Tanh()
        x = rng.normal(size=(2, 3)).astype(np.float64)
        grad_out = rng.normal(size=(2, 3))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        eps = 1e-6
        numeric = ((np.tanh(x + eps) - np.tanh(x - eps)) / (2 * eps)) * grad_out
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 4, 4, 2)).astype(np.float32)
        out = layer.forward(x)
        assert out.shape == (3, 32)
        assert layer.backward(out).shape == x.shape
        assert layer.output_shape((4, 4, 2)) == (32,)

    def test_dropout_identity_in_eval(self, rng):
        layer = Dropout(rate=0.5, rng=0)
        layer.eval()
        x = rng.normal(size=(4, 10)).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_dropout_scales_in_train(self, rng):
        layer = Dropout(rate=0.5, rng=0)
        x = np.ones((2000,), dtype=np.float32).reshape(200, 10)
        out = layer.forward(x)
        # Inverted dropout keeps the expectation roughly unchanged.
        assert out.mean() == pytest.approx(1.0, abs=0.1)
        # Mask reused in backward.
        grad = layer.backward(np.ones_like(out))
        assert set(np.unique(grad)).issubset({0.0, 2.0})

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)


class TestBatchNorm:
    def test_normalises_in_training(self, rng):
        bn = BatchNorm(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(64, 4)).astype(np.float32)
        out = bn.forward(x)
        assert out.mean(axis=0) == pytest.approx(np.zeros(4), abs=1e-5)
        assert out.std(axis=0) == pytest.approx(np.ones(4), abs=1e-2)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm(3, momentum=0.0)  # running stats = last batch stats
        x = rng.normal(size=(32, 3)).astype(np.float32)
        bn.forward(x)
        bn.eval()
        out_eval = bn.forward(x)
        assert out_eval.mean() == pytest.approx(0.0, abs=0.1)

    def test_backward_shapes_and_grads(self, rng):
        bn = BatchNorm(5)
        x = rng.normal(size=(16, 5)).astype(np.float32)
        out = bn.forward(x)
        grad = bn.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert bn.gamma.grad is not None and bn.beta.grad is not None

    def test_state_dict_includes_running_stats(self, rng):
        bn = BatchNorm(2)
        bn.forward(rng.normal(size=(8, 2)).astype(np.float32))
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state
        bn2 = BatchNorm(2)
        bn2.load_state_dict(state)
        np.testing.assert_allclose(bn2.running_mean, bn.running_mean)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            BatchNorm(3).forward(np.zeros((4, 5), np.float32))

    def test_nhwc_input(self, rng):
        bn = BatchNorm(3)
        x = rng.normal(size=(2, 4, 4, 3)).astype(np.float32)
        out = bn.forward(x)
        assert out.shape == x.shape
