"""Tests of the cost-parameter override hooks (trace-calibration satellite).

The ``UNPACKED`` analytic model is known to undershoot the VM's traced
cycles; the override hooks let ``cycle_source="traced"`` calibration raise
``cycles_per_mac``/``cycles_per_output`` *opt-in* without shifting the
Table-II-calibrated defaults that every baseline ratio depends on.
"""

from __future__ import annotations

import pytest

from repro.isa.cost_model import (
    COST_PARAMS,
    ExecutionStyle,
    KernelCostModel,
    clear_cost_param_overrides,
    effective_cost_params,
    get_cost_param_overrides,
    set_cost_param_overrides,
)
from repro.kernels.cycle_counters import CycleCounter, KernelStats
from repro.vm.verify import CalibrationReport, LayerCalibration


@pytest.fixture(autouse=True)
def _clean_overrides():
    """Every test starts and ends with pristine defaults."""
    clear_cost_param_overrides()
    yield
    clear_cost_param_overrides()


def _counted_counter() -> CycleCounter:
    counter = CycleCounter()
    counter.record("conv1", KernelStats(macs=1000, output_elements=64))
    return counter


class TestOverrideRoundTrip:
    def test_set_then_clear_restores_defaults(self):
        default = effective_cost_params(ExecutionStyle.UNPACKED)
        boosted = set_cost_param_overrides(
            ExecutionStyle.UNPACKED, cycles_per_mac=2.70, cycles_per_output=16.0
        )
        assert boosted.cycles_per_mac == pytest.approx(2.70)
        assert boosted.cycles_per_output == pytest.approx(16.0)
        assert effective_cost_params(ExecutionStyle.UNPACKED) == boosted
        clear_cost_param_overrides(ExecutionStyle.UNPACKED)
        assert effective_cost_params(ExecutionStyle.UNPACKED) == default

    def test_defaults_never_mutate(self):
        before = COST_PARAMS[ExecutionStyle.UNPACKED]
        set_cost_param_overrides(ExecutionStyle.UNPACKED, cycles_per_mac=99.0)
        assert COST_PARAMS[ExecutionStyle.UNPACKED] is before
        assert before.cycles_per_mac == pytest.approx(2.05)

    def test_only_named_fields_change(self):
        default = COST_PARAMS[ExecutionStyle.UNPACKED]
        boosted = set_cost_param_overrides(ExecutionStyle.UNPACKED, cycles_per_mac=2.70)
        assert boosted.cycles_per_output == default.cycles_per_output
        assert boosted.cycles_per_layer == default.cycles_per_layer

    def test_repeated_calls_merge(self):
        set_cost_param_overrides(ExecutionStyle.UNPACKED, cycles_per_mac=2.70)
        set_cost_param_overrides(ExecutionStyle.UNPACKED, cycles_per_output=16.0)
        assert get_cost_param_overrides(ExecutionStyle.UNPACKED) == {
            "cycles_per_mac": 2.70,
            "cycles_per_output": 16.0,
        }

    def test_unknown_field_rejected_without_side_effects(self):
        with pytest.raises(TypeError):
            set_cost_param_overrides(ExecutionStyle.UNPACKED, cycles_per_flux_capacitor=1.21)
        assert get_cost_param_overrides(ExecutionStyle.UNPACKED) == {}

    def test_styles_are_independent(self):
        set_cost_param_overrides(ExecutionStyle.UNPACKED, cycles_per_mac=2.70)
        assert effective_cost_params(ExecutionStyle.CMSIS_PACKED) == COST_PARAMS[
            ExecutionStyle.CMSIS_PACKED
        ]

    def test_clear_all(self):
        set_cost_param_overrides(ExecutionStyle.UNPACKED, cycles_per_mac=2.70)
        set_cost_param_overrides(ExecutionStyle.CMSIS_PACKED, cycles_per_mac=2.00)
        clear_cost_param_overrides()
        assert get_cost_param_overrides(ExecutionStyle.UNPACKED) == {}
        assert get_cost_param_overrides(ExecutionStyle.CMSIS_PACKED) == {}


class TestModelIntegration:
    def test_models_pick_up_active_overrides(self):
        counter = _counted_counter()
        baseline = KernelCostModel(ExecutionStyle.UNPACKED).estimate_cycles(counter)
        set_cost_param_overrides(ExecutionStyle.UNPACKED, cycles_per_mac=2.05 * 1.3)
        calibrated = KernelCostModel(ExecutionStyle.UNPACKED).estimate_cycles(counter)
        assert calibrated == pytest.approx(baseline + 1000 * 2.05 * 0.3)
        clear_cost_param_overrides(ExecutionStyle.UNPACKED)
        assert KernelCostModel(ExecutionStyle.UNPACKED).estimate_cycles(counter) == pytest.approx(
            baseline
        )

    def test_explicit_params_beat_overrides(self):
        set_cost_param_overrides(ExecutionStyle.UNPACKED, cycles_per_mac=99.0)
        explicit = COST_PARAMS[ExecutionStyle.UNPACKED]
        model = KernelCostModel(ExecutionStyle.UNPACKED, params=explicit)
        assert model.params.cycles_per_mac == pytest.approx(2.05)


class TestCalibrationSuggestions:
    def _report(self, traced: float, analytic: float) -> CalibrationReport:
        return CalibrationReport(
            model_name="m",
            label="l",
            layers=[LayerCalibration(name="conv1", traced_cycles=traced, analytic_cycles=analytic)],
        )

    def test_suggested_overrides_scale_by_ratio(self):
        report = self._report(traced=1300.0, analytic=1000.0)
        overrides = report.suggested_cost_overrides()
        assert overrides["cycles_per_mac"] == pytest.approx(2.05 * 1.3)
        assert overrides["cycles_per_output"] == pytest.approx(12.0 * 1.3)

    def test_suggested_overrides_apply_cleanly(self):
        report = self._report(traced=1300.0, analytic=1000.0)
        params = set_cost_param_overrides(
            ExecutionStyle.UNPACKED, **report.suggested_cost_overrides()
        )
        assert params.cycles_per_mac == pytest.approx(2.05 * 1.3)
        # The untouched fields keep the Table-II calibration.
        assert params.cycles_per_layer == COST_PARAMS[ExecutionStyle.UNPACKED].cycles_per_layer

    def test_degenerate_ratio_rejected(self):
        report = self._report(traced=1300.0, analytic=0.0)
        with pytest.raises(ValueError):
            report.suggested_cost_overrides()
