"""The Prometheus exposition parser: round-trip identity and federation.

The parser (:mod:`repro.obs.exposition`) is the inverse of
:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`; the contract
tested here is *bit-identity*: parsing a rendered exposition and rendering
it back reproduces the text byte for byte -- names, label order, escaped
label values, bucket bounds, float sample values (``repr`` round-trips).
On top sit the federation semantics the fleet router relies on: counters
and histograms sum across ``replica=`` labels, gauges stay attributed.
"""

from __future__ import annotations

import pytest

from repro.obs.exposition import (
    ExpositionParseError,
    MetricFamily,
    Sample,
    federate_families,
    parse_prometheus,
    render_families,
    sum_samples,
)
from repro.obs.metrics import LATENCY_BUCKETS_MS, MetricsRegistry


def _populated_registry(replica: str = "0") -> MetricsRegistry:
    """A registry exercising every instrument kind, const labels, escapes."""
    registry = MetricsRegistry(const_labels={"replica": replica})
    counter = registry.counter(
        "repro_requests_completed_total",
        "Requests completed, by priority class and service level.",
        ("priority", "level"),
    )
    counter.inc(7, priority="interactive", level="exact")
    counter.inc(2.5, priority="batch", level='quo"te\\slash\nnewline')
    histogram = registry.histogram(
        "repro_request_latency_ms", "Latency.", ("priority",), buckets=LATENCY_BUCKETS_MS
    )
    histogram.observe(0.7, priority="interactive")
    histogram.observe(3.3, priority="interactive")
    histogram.observe(1e9, priority="batch")  # beyond the last bound: +Inf only
    registry.gauge("repro_queue_depth", "Requests waiting.").set(5)
    registry.counter("repro_unlabelled_total", "No labels.").inc(0.125)
    registry.counter("repro_helpless_total").inc(3)  # no HELP line rendered
    return registry


class TestRoundTrip:
    def test_bit_identical_round_trip(self):
        text = _populated_registry().render_prometheus()
        assert render_families(parse_prometheus(text)) == text

    def test_round_trip_with_target_metadata(self):
        registry = _populated_registry()
        registry.enable_target_metadata(version="9.9.9")
        text = registry.render_prometheus()
        assert render_families(parse_prometheus(text)) == text
        assert 'repro_build_info{replica="0",version="9.9.9",python="' in text

    def test_round_trip_non_integral_floats(self):
        # repr() round-trips doubles exactly; the parse->render cycle must
        # preserve every digit, not approximate.
        registry = MetricsRegistry()
        registry.gauge("g", "").set(0.1 + 0.2)  # 0.30000000000000004
        text = registry.render_prometheus()
        assert "0.30000000000000004" in text
        assert render_families(parse_prometheus(text)) == text

    def test_parsed_structure_matches_registry(self):
        registry = _populated_registry(replica="3")
        families = {f.name: f for f in parse_prometheus(registry.render_prometheus())}

        counter = families["repro_requests_completed_total"]
        assert counter.kind == "counter"
        assert counter.help.startswith("Requests completed")
        by_labels = {sample.labels: sample.value for sample in counter.samples}
        assert by_labels[
            (("replica", "3"), ("priority", "interactive"), ("level", "exact"))
        ] == 7.0
        # The escaped label value comes back as the original string.
        assert by_labels[
            (("replica", "3"), ("priority", "batch"), ("level", 'quo"te\\slash\nnewline'))
        ] == 2.5

        histogram = families["repro_request_latency_ms"]
        assert histogram.kind == "histogram"
        bucket_bounds = [
            sample.label("le")
            for sample in histogram.samples
            if sample.name == "repro_request_latency_ms_bucket"
            and sample.label("priority") == "interactive"
        ]
        assert bucket_bounds == [f"{b:g}" for b in LATENCY_BUCKETS_MS] + ["+Inf"]
        counts = {
            sample.label("priority"): sample.value
            for sample in histogram.samples
            if sample.name == "repro_request_latency_ms_count"
        }
        assert counts == {"interactive": 2.0, "batch": 1.0}
        sums = {
            sample.label("priority"): sample.value
            for sample in histogram.samples
            if sample.name == "repro_request_latency_ms_sum"
        }
        assert sums["interactive"] == pytest.approx(4.0)
        assert sums["batch"] == 1e9
        # Out-of-range observation: +Inf bucket counts it, the last bound doesn't.
        interactive = {
            sample.label("le"): sample.value
            for sample in histogram.samples
            if sample.name == "repro_request_latency_ms_bucket"
            and sample.label("priority") == "batch"
        }
        assert interactive["+Inf"] == 1.0
        assert interactive["4096"] == 0.0

    def test_helpless_family_renders_without_help_line(self):
        text = _populated_registry().render_prometheus()
        reparsed = render_families(parse_prometheus(text))
        assert "# HELP repro_helpless_total" not in reparsed
        assert "# TYPE repro_helpless_total counter" in reparsed

    def test_liberal_input_untyped_and_unknown_comments(self):
        text = "# a free-form comment\nups 3\n# HELP late_help too late\n"
        families = parse_prometheus(text)
        assert [f.name for f in families] == ["ups"]
        assert families[0].kind == "untyped"
        assert families[0].samples[0].value == 3.0

    def test_parse_errors_are_diagnosed(self):
        with pytest.raises(ExpositionParseError, match="line 1"):
            parse_prometheus('m{a="x} 1\n')  # unterminated label value
        with pytest.raises(ExpositionParseError, match="no value"):
            parse_prometheus("lonely_name\n")
        with pytest.raises(ExpositionParseError, match="unparseable"):
            parse_prometheus("m notanumber\n")


class TestFederation:
    def _replica_pair(self):
        return (
            parse_prometheus(_populated_registry("0").render_prometheus()),
            parse_prometheus(_populated_registry("1").render_prometheus()),
        )

    def test_counters_summed_replica_label_dropped(self):
        fed = federate_families(self._replica_pair())
        counter = next(f for f in fed if f.name == "repro_requests_completed_total")
        by_labels = {sample.labels: sample.value for sample in counter.samples}
        assert by_labels[(("priority", "interactive"), ("level", "exact"))] == 14.0
        assert not any(sample.label("replica") for sample in counter.samples)

    def test_histograms_summed_bucket_by_bucket(self):
        fed = federate_families(self._replica_pair())
        assert sum_samples(fed, "repro_request_latency_ms") == 6.0  # 3 observations x 2
        histogram = next(f for f in fed if f.name == "repro_request_latency_ms")
        first_bucket = next(
            sample for sample in histogram.samples
            if sample.name == "repro_request_latency_ms_bucket"
            and sample.label("priority") == "interactive" and sample.label("le") == "1"
        )
        assert first_bucket.value == 2.0  # one 0.7ms observation per replica

    def test_gauges_kept_per_replica(self):
        fed = federate_families(self._replica_pair())
        gauge = next(f for f in fed if f.name == "repro_queue_depth")
        replicas = sorted(sample.label("replica") for sample in gauge.samples)
        assert replicas == ["0", "1"]

    def test_fleet_sum_equals_per_replica_sum(self):
        # The acceptance criterion, via the parser: federated series totals
        # equal the sum of the per-replica series totals.
        sources = self._replica_pair()
        fed = federate_families(sources)
        for name in ("repro_requests_completed_total", "repro_unlabelled_total"):
            assert sum_samples(fed, name) == sum(sum_samples(s, name) for s in sources)

    def test_kind_mismatch_refused(self):
        a = [MetricFamily("m", "counter", "", [Sample("m", (), 1.0)])]
        b = [MetricFamily("m", "gauge", "", [Sample("m", (), 1.0)])]
        with pytest.raises(ValueError, match="refusing to federate"):
            federate_families([a, b])

    def test_sources_not_mutated(self):
        sources = self._replica_pair()
        before = render_families(sources[0])
        federate_families(sources)
        assert render_families(sources[0]) == before


class TestTargetMetadata:
    def test_uptime_advances_on_render(self):
        registry = MetricsRegistry()
        registry.enable_target_metadata()
        first = parse_prometheus(registry.render_prometheus())
        uptime = sum_samples(first, "repro_process_uptime_seconds")
        assert uptime >= 0.0
        import time

        time.sleep(0.02)
        second = parse_prometheus(registry.render_prometheus())
        assert sum_samples(second, "repro_process_uptime_seconds") > uptime

    def test_build_info_labels(self):
        import platform

        from repro import __version__

        registry = MetricsRegistry(const_labels={"replica": "7"})
        registry.enable_target_metadata()
        families = {f.name: f for f in parse_prometheus(registry.render_prometheus())}
        info = families["repro_build_info"].samples[0]
        assert info.value == 1.0
        assert info.label("version") == __version__
        assert info.label("python") == platform.python_version()
        assert info.label("replica") == "7"

    def test_idempotent(self):
        registry = MetricsRegistry()
        registry.enable_target_metadata()
        registry.enable_target_metadata()  # a second call must not blow up
        text = registry.render_prometheus()
        assert text.count("# TYPE repro_build_info") == 1
        assert text.count("# TYPE repro_process_uptime_seconds") == 1

    def test_server_metrics_registers_target_metadata(self):
        from repro.serving.metrics import ServerMetrics

        sink = ServerMetrics()
        text = sink.render_prometheus()
        assert "repro_build_info{" in text
        assert "repro_process_uptime_seconds" in text
