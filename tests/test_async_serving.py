"""Tests of the asyncio HTTP front end.

The asyncio front must be drop-in interchangeable with the threaded front:
same endpoints, same validation, same error mapping, same results.  The
equivalence tests drive identical traffic through both fronts and compare.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.registry import FRONTS
from repro.serving import (
    AsyncPredictionServer,
    Deployment,
    HTTPClient,
    PredictionServer,
    Scheduler,
)


@pytest.fixture(scope="module")
def deployment(tiny_qmodel, tiny_pipeline_result):
    """A two-level deployment (exact + aggressive) for the front tests."""
    points = [
        {"label": "exact", "taus": {}, "accuracy": 0.9},
        {"label": "aggressive", "taus": {"conv1": 0.2, "conv2": 0.2}, "accuracy": 0.7},
    ]
    return Deployment.from_points(
        tiny_qmodel,
        points,
        tiny_pipeline_result.significance,
        unpacked=tiny_pipeline_result.unpacked,
    )


def _post_raw(url: str, body: bytes, path: str = "/predict"):
    request = urllib.request.Request(
        url + path, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestAsyncFrontEquivalence:
    def test_round_trip_matches_threaded_front_and_kernels(self, deployment, small_split):
        xs = small_split.test.images[:6]
        expected = deployment.qmodel.predict_classes(xs, masks=None)
        answers = {}
        for name, front_cls in (("thread", PredictionServer), ("asyncio", AsyncPredictionServer)):
            with Scheduler(deployment, policy="fixed", max_batch_size=8, max_wait_ms=5) as sched:
                with front_cls(sched) as server:
                    answers[name] = HTTPClient(server.url).predict_classes(xs)
        np.testing.assert_array_equal(answers["thread"], expected)
        np.testing.assert_array_equal(answers["asyncio"], expected)

    def test_registered_in_fronts_registry(self):
        assert FRONTS.resolve("asyncio") is AsyncPredictionServer
        assert FRONTS.resolve("thread") is PredictionServer

    def test_introspection_endpoints(self, deployment):
        with Scheduler(deployment) as scheduler:
            with AsyncPredictionServer(scheduler, port=0) as server:
                client = HTTPClient(server.url)
                assert client.health() == "ok"
                metrics = client.metrics()
                assert "per_priority" in metrics and "requests_completed" in metrics
                levels = client.levels()
                assert [entry["name"] for entry in levels] == [
                    level.name for level in deployment.levels
                ]

    def test_rejects_bad_inputs_like_threaded_front(self, deployment):
        with Scheduler(deployment) as scheduler:
            with AsyncPredictionServer(scheduler, port=0) as server:
                assert _post_raw(server.url, b"not json")[0] == 400
                assert _post_raw(server.url, b"{}")[0] == 400
                status, payload = _post_raw(
                    server.url, json.dumps({"inputs": [[1, 2], [3, 4]]}).encode()
                )
                assert status == 400 and "shape" in payload["error"]
                sample = np.zeros(deployment.qmodel.input_shape, np.float32).tolist()
                status, payload = _post_raw(
                    server.url,
                    json.dumps({"inputs": sample, "priority": "vip"}).encode(),
                )
                assert status == 400 and "priority" in payload["error"]
                status, _ = _post_raw(
                    server.url, json.dumps({"inputs": sample, "timeout_ms": -1}).encode()
                )
                assert status == 400
                assert _post_raw(server.url, b'{"inputs": []}', path="/nope")[0] == 404

    def test_priority_tag_round_trips(self, deployment, small_split):
        xs = small_split.test.images[:2]
        with Scheduler(deployment) as scheduler:
            with AsyncPredictionServer(scheduler, port=0) as server:
                client = HTTPClient(server.url)
                body = client.predict(xs, priority="interactive")
                assert body["priority"] == "interactive"
                assert len(body["classes"]) == 2
                stats = client.metrics()["per_priority"]
                assert stats["interactive"]["completed"] == 2


class TestAsyncFrontProtocol:
    def test_keep_alive_serves_multiple_requests_per_connection(self, deployment, small_split):
        sample = small_split.test.images[0].tolist()
        with Scheduler(deployment) as scheduler:
            with AsyncPredictionServer(scheduler, port=0) as server:
                connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
                try:
                    for _ in range(3):  # same socket, three requests
                        body = json.dumps({"inputs": sample}).encode()
                        connection.request(
                            "POST", "/predict", body=body,
                            headers={"Content-Type": "application/json"},
                        )
                        response = connection.getresponse()
                        assert response.status == 200
                        payload = json.loads(response.read())
                        assert len(payload["classes"]) == 1
                finally:
                    connection.close()

    def test_connection_close_honoured(self, deployment):
        with Scheduler(deployment) as scheduler:
            with AsyncPredictionServer(scheduler, port=0) as server:
                connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
                try:
                    connection.request("GET", "/healthz", headers={"Connection": "close"})
                    response = connection.getresponse()
                    assert response.status == 200
                    assert response.getheader("Connection") == "close"
                finally:
                    connection.close()

    @pytest.mark.parametrize("front_cls", [AsyncPredictionServer, PredictionServer])
    def test_unread_error_body_does_not_desync_keepalive(self, deployment, small_split, front_cls):
        # Regression: a POST with a body to an unknown path must not leave the
        # body bytes in the stream -- the next request on the same keep-alive
        # connection would be parsed out of the middle of it.
        sample = small_split.test.images[0].tolist()
        body = json.dumps({"inputs": sample}).encode()
        with Scheduler(deployment) as scheduler:
            with front_cls(scheduler, port=0) as server:
                connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
                try:
                    connection.request(
                        "POST", "/predictt", body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    assert response.status == 404
                    response.read()
                    # Same socket: the follow-up valid request must succeed.
                    connection.request(
                        "POST", "/predict", body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    assert response.status == 200
                    assert len(json.loads(response.read())["classes"]) == 1
                finally:
                    connection.close()

    def test_unsupported_method_is_404(self, deployment):
        with Scheduler(deployment) as scheduler:
            with AsyncPredictionServer(scheduler, port=0) as server:
                connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
                try:
                    connection.request("PUT", "/predict", body=b"{}")
                    assert connection.getresponse().status == 404
                finally:
                    connection.close()

    def test_concurrent_clients_all_answered(self, deployment, small_split):
        xs = small_split.test.images[:16]
        expected = deployment.qmodel.predict_classes(xs, masks=None)
        with Scheduler(deployment, policy="fixed", max_batch_size=16, max_wait_ms=5) as scheduler:
            with AsyncPredictionServer(scheduler, port=0) as server:
                client = HTTPClient(server.url)

                def call(i: int) -> int:
                    return int(client.predict_classes(xs[i])[0])

                with ThreadPoolExecutor(max_workers=16) as pool:
                    answers = list(pool.map(call, range(len(xs))))
        np.testing.assert_array_equal(np.asarray(answers), expected)

    def test_stop_is_idempotent_and_restart_rejected(self, deployment):
        with Scheduler(deployment) as scheduler:
            server = AsyncPredictionServer(scheduler, port=0).start()
            port = server.port
            assert port > 0
            server.stop()
            server.stop()  # second stop is a no-op
            with pytest.raises(RuntimeError):
                server.start()
