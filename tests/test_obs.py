"""Tests of the unified observability layer: registry, tracing, events, profiling.

The unit half exercises ``repro.obs`` standalone (it has no serving
dependency); the integration half drives the serving stack -- scheduler,
threaded HTTP front -- and checks that the spans, events and Prometheus
exposition the wiring produces are consistent with the latencies the metrics
sink reports.
"""

from __future__ import annotations

import re
import time

import numpy as np
import pytest

from repro.obs import (
    LATENCY_BUCKETS_MS,
    EventLog,
    MetricsRegistry,
    Observability,
    Profiler,
    Span,
    Tracer,
    load_jsonl,
    new_trace_id,
    trace_breakdown,
)
from repro.obs.tracing import STAGES
from repro.serving import (
    Deployment,
    HTTPClient,
    PredictionServer,
    Request,
    Scheduler,
    ServerMetrics,
)


# --------------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def deployment(tiny_qmodel, tiny_pipeline_result):
    """A three-level deployment spanning the exact-to-aggressive range."""
    points = [
        {"label": "exact", "taus": {}, "accuracy": 0.9},
        {"label": "mid", "taus": {"conv1": 0.05, "conv2": 0.05}, "accuracy": 0.85},
        {"label": "aggressive", "taus": {"conv1": 0.2, "conv2": 0.2}, "accuracy": 0.7},
    ]
    return Deployment.from_points(
        tiny_qmodel,
        points,
        tiny_pipeline_result.significance,
        unpacked=tiny_pipeline_result.unpacked,
    )


# --------------------------------------------------------------------------- registry
class TestRegistry:
    def test_counter_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "Hits.", ("route",))
        c.inc(route="/a")
        c.inc(2, route="/a")
        c.inc(route="/b")
        assert c.value(route="/a") == 3
        assert c.value(route="/b") == 1
        assert c.value(route="/missing") == 0
        assert c.total() == 4

    def test_counter_rejects_decrease_and_label_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", labelnames=("k",))
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1, k="x")
        with pytest.raises(ValueError, match="expects labels"):
            c.inc(wrong="x")
        with pytest.raises(ValueError, match="expects labels"):
            c.inc()  # missing the declared label entirely

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3

    def test_registration_is_idempotent_but_typed(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x_total", "help", ("a",))
        assert reg.counter("x_total", "help", ("a",)) is c1
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x_total", labelnames=("b",))

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(value)
        cumulative, total, count = h.series()
        # 0.5 and 1.0 land in le=1; 5 in le=10; 50 in le=100; 500 only in +Inf.
        assert cumulative == [2, 3, 4]
        assert count == 5
        assert total == pytest.approx(556.5)
        assert h.total_count() == 5

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("empty", buckets=())


# --------------------------------------------------------------------------- exposition
#: One sample line: name, optional {labels}, a space, then a number.
_LABEL_RE = r"[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    rf"(\{{{_LABEL_RE}(,{_LABEL_RE})*\}})?"
    r" -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$"
)


def _parse_exposition(text: str):
    """Split an exposition into (comment_lines, {sample_line -> value})."""
    comments, samples = [], {}
    for line in text.strip().splitlines():
        if line.startswith("#"):
            comments.append(line)
        else:
            assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
            name_part, value = line.rsplit(" ", 1)
            samples[name_part] = float(value)
    return comments, samples


class TestPrometheusExposition:
    def _populated_registry(self):
        reg = MetricsRegistry(const_labels={"replica": "0"})
        c = reg.counter("repro_demo_total", "Demo counter.", ("priority",))
        c.inc(3, priority="interactive")
        c.inc(1, priority="batch")
        h = reg.histogram("repro_demo_ms", "Demo latency.", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        reg.gauge("repro_demo_depth", "Demo gauge.").set(7)
        return reg

    def test_every_line_well_formed(self):
        text = self._populated_registry().render_prometheus()
        comments, samples = _parse_exposition(text)
        assert "# HELP repro_demo_total Demo counter." in comments
        assert "# TYPE repro_demo_total counter" in comments
        assert "# TYPE repro_demo_ms histogram" in comments
        assert "# TYPE repro_demo_depth gauge" in comments
        assert text.endswith("\n")
        # Every sample carries the const label for per-replica summation.
        assert all('replica="0"' in line for line in samples)

    def test_histogram_exposition_consistency(self):
        _, samples = _parse_exposition(self._populated_registry().render_prometheus())
        buckets = {k: v for k, v in samples.items() if k.startswith("repro_demo_ms_bucket")}
        # Cumulative counts are monotonically non-decreasing up to +Inf.
        ordered = [
            buckets['repro_demo_ms_bucket{replica="0",le="1"}'],
            buckets['repro_demo_ms_bucket{replica="0",le="10"}'],
            buckets['repro_demo_ms_bucket{replica="0",le="+Inf"}'],
        ]
        assert ordered == sorted(ordered)
        assert ordered == [1, 2, 3]
        # +Inf equals _count; _sum matches the observations.
        assert ordered[-1] == samples['repro_demo_ms_count{replica="0"}']
        assert samples['repro_demo_ms_sum{replica="0"}'] == pytest.approx(55.5)

    def test_unlabelled_series_render_at_zero_before_any_sample(self):
        reg = MetricsRegistry()
        reg.counter("repro_untouched_total", "Never incremented.")
        _, samples = _parse_exposition(reg.render_prometheus())
        assert samples["repro_untouched_total"] == 0

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", labelnames=("path",)).inc(path='a"b\\c\nd')
        text = reg.render_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text


# --------------------------------------------------------------------------- tracing
class TestTracer:
    def test_record_filter_and_ring_bound(self):
        tracer = Tracer(capacity=4)
        for i in range(6):
            tracer.record_span("execute", f"t{i}", 0.0, 0.001)
        assert len(tracer) == 4  # the two oldest spans were evicted
        assert tracer.spans(trace_id="t0") == []
        assert len(tracer.spans(name="execute")) == 4
        tracer.clear()
        assert len(tracer) == 0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.record_span("parse", "t", 0.0, 1.0) is None
        with tracer.span("parse", "t"):
            pass
        assert len(tracer) == 0

    def test_span_context_manager_times_body(self):
        tracer = Tracer()
        with tracer.span("respond", "t1", n=3):
            time.sleep(0.005)
        (span,) = tracer.spans()
        assert span.duration_ms >= 4.0
        assert span.attrs == {"n": 3}

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        parent = tracer.record_span("batch-execute", "t1", 1.0, 2.0, batch_size=2)
        tracer.record_span("execute", "t1", 1.0, 2.0, parent_id=parent.span_id)
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        loaded = load_jsonl(path)
        assert [s.name for s in loaded] == ["batch-execute", "execute"]
        assert loaded[1].parent_id == loaded[0].span_id
        assert loaded[0].attrs["batch_size"] == 2
        assert loaded[0].duration_ms == pytest.approx(1000.0)

    def test_new_trace_ids_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100

    def test_trace_breakdown_stage_sums(self):
        spans = [
            Span("parse", "t1", 0.000, 0.002),
            Span("queue-wait", "t1", 0.002, 0.010),
            Span("batch-execute", "t1", 0.010, 0.020),
            Span("execute", "t1", 0.010, 0.020),
            Span("layer:conv1", "t1", 0.011, 0.015),
            Span("respond", "t1", 0.020, 0.021),
            Span("queue-wait", "t2", 0.000, 0.004),
        ]
        rows = trace_breakdown(spans)
        assert [row["trace_id"] for row in rows] == ["t1", "t2"]
        row = rows[0]
        assert row["parse"] == pytest.approx(2.0)
        assert row["queue-wait"] == pytest.approx(8.0)
        assert row["execute"] == pytest.approx(10.0)
        assert row["layers_ms"] == pytest.approx(4.0)
        # total_ms is the wall span of the request-scoped stages (the
        # batch-execute span is batch-shared, not part of this wall).
        assert row["total_ms"] == pytest.approx(21.0)
        assert row["spans"] == 6


# --------------------------------------------------------------------------- events
class TestEventLog:
    def test_emit_snapshot_filter_and_bound(self):
        log = EventLog(capacity=3)
        log.emit("shed", "shed one", level="warning", request_id=1)
        for i in range(3):
            log.emit("level-switch", f"switch {i}", from_level="exact")
        events = log.snapshot()
        assert len(events) == 3  # the shed event was evicted by the ring bound
        assert all(e["kind"] == "level-switch" for e in events)
        assert log.snapshot(limit=1)[0]["message"] == "switch 2"
        assert log.snapshot(kind="shed") == []
        assert events[0]["from_level"] == "exact"
        log.clear()
        assert len(log) == 0

    def test_disabled_log_is_a_noop(self):
        log = EventLog(enabled=False)
        assert log.emit("shed", "nope") is None
        assert log.snapshot() == []

    def test_unknown_level_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event level"):
            log.emit("shed", "boom", level="fatal")


# --------------------------------------------------------------------------- profiling
class TestProfiler:
    def test_disabled_by_default(self):
        profiler = Profiler()
        assert not profiler.enabled
        assert profiler.begin_batch() is False
        with profiler.timer("execute"):
            pass
        assert profiler.snapshot() == {}

    def test_sampling_every_nth_batch(self):
        profiler = Profiler(sample_every=2)
        active = [profiler.begin_batch() for _ in range(4)]
        assert active == [False, True, False, True]

    def test_sections_and_snapshot(self):
        profiler = Profiler(sample_every=1)
        assert profiler.begin_batch()
        profiler.add("execute", 0.0, 0.010)
        profiler.add("execute", 0.0, 0.020)
        profiler.add("layer:conv1", 0.0, 0.005)
        stats = profiler.snapshot()
        assert stats["execute"]["count"] == 2
        assert stats["execute"]["mean_ms"] == pytest.approx(15.0)
        assert stats["execute"]["max_ms"] == pytest.approx(20.0)
        assert stats["layer:conv1"]["total_ms"] == pytest.approx(5.0)
        sections = [name for name, _, _ in profiler.batch_sections()]
        assert sections == ["execute", "execute", "layer:conv1"]
        profiler.clear()
        assert profiler.snapshot() == {}

    def test_negative_sample_every_rejected(self):
        with pytest.raises(ValueError, match="sample_every"):
            Profiler(sample_every=-1)


# --------------------------------------------------------------------------- metrics sink
class TestServerMetricsObservability:
    def test_failure_attribution_per_priority(self):
        metrics = ServerMetrics()
        metrics.record_failure(2, priority="batch")
        metrics.record_failure(priority="interactive")
        snapshot = metrics.snapshot()
        assert snapshot.requests_failed == 3
        assert snapshot.per_priority["batch"]["failed"] == 2
        assert snapshot.per_priority["interactive"]["failed"] == 1

    def test_windowed_throughput_tracks_the_trailing_window(self):
        clock = [0.0]
        metrics = ServerMetrics(rate_window_s=5.0, time_fn=lambda: clock[0])
        for second in range(4):
            clock[0] = float(second)
            metrics.record_batch("exact", 10, [1.0] * 10)
        clock[0] = 4.0
        snapshot = metrics.snapshot()
        # 40 completions over 4 s of uptime, all inside the 5 s window.
        assert snapshot.windowed_throughput_rps == pytest.approx(10.0)
        assert snapshot.throughput_rps == pytest.approx(10.0)
        # A long idle stretch empties the window but not the lifetime rate.
        clock[0] = 60.0
        snapshot = metrics.snapshot()
        assert snapshot.windowed_throughput_rps == 0.0
        assert snapshot.throughput_rps == pytest.approx(40 / 60.0)

    def test_prometheus_render_reflects_the_sink(self):
        metrics = ServerMetrics()
        metrics.record_batch("mid", 2, [3.0, 7.0], priorities=["interactive", "batch"])
        metrics.record_shed(priority="interactive")
        text = metrics.render_prometheus(queue_depth=4)
        _, samples = _parse_exposition(text)
        assert (
            samples['repro_requests_completed_total{model="default",priority="interactive",level="mid"}']
            == 1
        )
        assert samples['repro_requests_shed_total{priority="interactive"}'] == 1
        assert samples['repro_batches_total{model="default",level="mid"}'] == 1
        assert samples["repro_queue_depth"] == 4
        assert samples['repro_request_latency_ms_count{priority="batch"}'] == 1
        # Bucket cumulative counts never decrease across the boundary list.
        interactive = [
            samples[f'repro_request_latency_ms_bucket{{priority="interactive",le="{bound:g}"}}']
            for bound in LATENCY_BUCKETS_MS
        ]
        assert interactive == sorted(interactive)

    def test_shared_registry_rejects_double_registration_mismatch(self):
        registry = MetricsRegistry()
        ServerMetrics(registry=registry)
        # A second sink on the same registry reuses the same instruments.
        ServerMetrics(registry=registry)
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_requests_completed_total")


# --------------------------------------------------------------------------- serving integration
class TestSchedulerObservability:
    def _requests(self, deployment, n, **kwargs):
        shape = deployment.qmodel.input_shape
        return [Request(np.zeros(shape, dtype=np.float32), **kwargs) for _ in range(n)]

    def test_batch_span_links_members_and_children(self, deployment):
        scheduler = Scheduler(deployment, policy="fixed", obs=Observability())
        batch = self._requests(deployment, 3)
        scheduler._execute(batch)
        tracer = scheduler.obs.tracer
        (batch_span,) = tracer.spans(name="batch-execute")
        assert batch_span.trace_id == batch[0].trace_id
        assert batch_span.attrs["batch_size"] == 3
        assert batch_span.attrs["member_trace_ids"] == [r.trace_id for r in batch]
        for request in batch:
            (wait,) = tracer.spans(trace_id=request.trace_id, name="queue-wait")
            (execute,) = tracer.spans(trace_id=request.trace_id, name="execute")
            assert execute.parent_id == batch_span.span_id
            assert wait.parent_id is None
            # queue-wait + execute reproduce the reported e2e latency exactly:
            # the spans share the batch's clock endpoints.
            e2e = request.wait_ms + request.service_ms
            assert wait.duration_ms + execute.duration_ms == pytest.approx(e2e, rel=0.10)

    def test_profiled_batch_attaches_layer_spans(self, deployment):
        scheduler = Scheduler(deployment, policy="fixed", obs=Observability(profile_every=1))
        scheduler._execute(self._requests(deployment, 2))
        tracer = scheduler.obs.tracer
        (batch_span,) = tracer.spans(name="batch-execute")
        layer_spans = [s for s in tracer.spans() if s.name.startswith(("layer:", "vm:", "kernel:"))]
        assert layer_spans, "a profiled batch must attach per-layer child spans"
        assert all(s.parent_id == batch_span.span_id for s in layer_spans)
        stats = scheduler.obs.profiler.snapshot()
        assert "execute" in stats and "policy" in stats and "callback" in stats
        assert any(name.startswith("layer:") for name in stats)

    def test_shed_and_level_switch_events(self, deployment):
        scheduler = Scheduler(deployment, policy="fixed", obs=Observability())
        expired = self._requests(deployment, 1, timeout_ms=0.01)[0]
        time.sleep(0.002)
        scheduler._states[scheduler.default_model].last_level_name = "not-the-current-level"
        scheduler._execute([expired, *self._requests(deployment, 1)])
        events = scheduler.obs.events.snapshot()
        kinds = [event["kind"] for event in events]
        assert "shed" in kinds and "level-switch" in kinds
        (shed,) = [e for e in events if e["kind"] == "shed"]
        assert shed["level"] == "warning"
        assert shed["trace_id"] == expired.trace_id
        (switch,) = [e for e in events if e["kind"] == "level-switch"]
        assert switch["from_level"] == "not-the-current-level"
        assert switch["policy"] == "FixedPolicy"

    def test_disabled_observability_serves_without_recording(self, deployment):
        obs = Observability.disabled()
        assert not obs.enabled
        with Scheduler(deployment, policy="fixed", max_wait_ms=1.0, obs=obs) as scheduler:
            x = np.zeros(deployment.qmodel.input_shape, dtype=np.float32)
            scheduler.submit(x).result(timeout=10.0)
        assert len(obs.tracer) == 0
        assert len(obs.events) == 0
        assert obs.profiler.snapshot() == {}
        # The metrics registry still counts: disabling tracing must not
        # silence the counters the policies and /metrics depend on.
        assert scheduler.metrics.snapshot().requests_completed == 1

    def test_drain_failures_attributed_per_priority(self, deployment):
        scheduler = Scheduler(deployment, policy="fixed")
        scheduler.start()
        scheduler._stop.set()  # freeze the loop so the queue keeps the requests
        scheduler._thread.join(timeout=5.0)
        scheduler.queue.put(Request(np.zeros(deployment.qmodel.input_shape), priority="batch"))
        scheduler.queue.put(Request(np.zeros(deployment.qmodel.input_shape), priority="batch"))
        scheduler.stop()
        snapshot = scheduler.metrics.snapshot()
        assert snapshot.per_priority["batch"]["failed"] == 2


class TestHTTPFrontObservability:
    def test_trace_header_spans_and_exposition(self, deployment, small_split):
        # A sizeable coalescing window keeps queue-wait (and so the e2e
        # latency) large relative to the sub-ms parse/respond stages, making
        # the 10%-sum acceptance check below robust to scheduling jitter.
        with Scheduler(deployment, policy="fixed", max_wait_ms=20.0) as scheduler:
            with PredictionServer(scheduler, port=0) as server:
                client = HTTPClient(server.url)
                body, headers = client.predict_with_headers(small_split.test.images[0])
                trace_id = headers.get("X-Trace-Id")
                assert trace_id and trace_id == body["trace_id"]

                # Every request-scoped stage was recorded under the trace id.
                spans = client.trace(trace_id=trace_id)
                names = {span["name"] for span in spans}
                assert {"parse", "queue-wait", "execute"} <= names
                # The respond span is recorded after the response is written,
                # so poll briefly for it.
                for _ in range(50):
                    spans = client.trace(trace_id=trace_id)
                    if any(s["name"] == "respond" for s in spans):
                        break
                    time.sleep(0.01)
                names = {span["name"] for span in spans}
                assert "respond" in names

                # Acceptance: the stage spans sum to the reported e2e latency
                # within 10% (parse and respond add sub-ms on top of
                # queue-wait + execute, which match wait_ms + service_ms).
                stage_ms = sum(
                    span["duration_ms"]
                    for span in spans
                    if span["name"] in STAGES and span["name"] != "batch-execute"
                )
                e2e_ms = body["wait_ms"][0] + body["service_ms"][0]
                # abs=2.0 floors the band: a container hiccup in the sub-ms
                # parse/respond stages must not fail a single-digit-ms e2e.
                assert stage_ms == pytest.approx(e2e_ms, rel=0.10, abs=2.0)

                # Prometheus exposition over HTTP: well-formed, and counting
                # the request this test just made.
                text = client.metrics(format="prometheus")
                _, samples = _parse_exposition(text)
                completed = [
                    value for key, value in samples.items()
                    if key.startswith("repro_requests_completed_total{")
                ]
                assert sum(completed) >= 1
                # The JSON view is unchanged by the format parameter.
                assert client.metrics()["requests_completed"] >= 1

    def test_events_endpoint_and_bad_query(self, deployment, small_split):
        with Scheduler(deployment, policy="fixed", max_wait_ms=1.0) as scheduler:
            scheduler.obs.events.emit("shed", "synthetic", level="warning", request_id=7)
            with PredictionServer(scheduler, port=0) as server:
                client = HTTPClient(server.url)
                events = client.events()
                assert any(e["kind"] == "shed" for e in events)
                assert client.events(limit=0) == []
                # A malformed limit falls back to "no limit" instead of a 500.
                assert client._get("/events?limit=bogus")["events"]

    def test_trace_endpoint_default_bound(self, deployment):
        with Scheduler(deployment, policy="fixed", max_wait_ms=1.0) as scheduler:
            for i in range(300):
                scheduler.obs.tracer.record_span("execute", f"t{i}", 0.0, 0.001)
            with PredictionServer(scheduler, port=0) as server:
                client = HTTPClient(server.url)
                assert len(client.trace()) == 256  # unfiltered reads are bounded
                assert len(client.trace(trace_id="t5")) == 1
