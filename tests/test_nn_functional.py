"""Tests for repro.nn.functional (im2col, convolution, pooling, softmax)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


def naive_conv2d(x, weights, bias, stride, padding):
    """Reference convolution with explicit loops (NHWC / OHWI)."""
    n, in_h, in_w, in_c = x.shape
    out_c, kh, kw, _ = weights.shape
    sh, sw = stride
    ph, pw = padding
    xp = np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)))
    out_h = (in_h + 2 * ph - kh) // sh + 1
    out_w = (in_w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, out_h, out_w, out_c), dtype=np.float64)
    for b in range(n):
        for i in range(out_h):
            for j in range(out_w):
                patch = xp[b, i * sh : i * sh + kh, j * sw : j * sw + kw, :]
                for c in range(out_c):
                    out[b, i, j, c] = (patch * weights[c]).sum()
    if bias is not None:
        out += bias
    return out


class TestPairAndShapes:
    @pytest.mark.parametrize("value,expected", [(3, (3, 3)), ((2, 5), (2, 5)), ([4, 1], (4, 1))])
    def test_pair(self, value, expected):
        assert F.pair(value) == expected

    def test_pair_rejects_triplet(self):
        with pytest.raises(ValueError):
            F.pair((1, 2, 3))

    @pytest.mark.parametrize(
        "in_h,in_w,kernel,stride,padding,expected",
        [
            (32, 32, (3, 3), (1, 1), (1, 1), (32, 32)),
            (32, 32, (5, 5), (1, 1), (0, 0), (28, 28)),
            (32, 32, (2, 2), (2, 2), (0, 0), (16, 16)),
            (8, 10, (3, 3), (2, 2), (1, 1), (4, 5)),
        ],
    )
    def test_conv_output_shape(self, in_h, in_w, kernel, stride, padding, expected):
        assert F.conv_output_shape(in_h, in_w, kernel, stride, padding) == expected

    def test_conv_output_shape_invalid(self):
        with pytest.raises(ValueError):
            F.conv_output_shape(2, 2, (5, 5), (1, 1), (0, 0))


class TestIm2col:
    def test_im2col_shape(self, rng):
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        cols = F.im2col(x, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (2, 8, 8, 27)

    def test_im2col_identity_kernel(self, rng):
        x = rng.normal(size=(1, 5, 5, 2)).astype(np.float32)
        cols = F.im2col(x, (1, 1), (1, 1), (0, 0))
        np.testing.assert_allclose(cols.reshape(x.shape), x)

    def test_im2col_matches_manual_patch(self, rng):
        x = rng.normal(size=(1, 6, 6, 2)).astype(np.float32)
        cols = F.im2col(x, (3, 3), (1, 1), (0, 0))
        manual = x[0, 1:4, 2:5, :].reshape(-1)
        np.testing.assert_allclose(cols[0, 1, 2], manual)

    def test_im2col_pad_value(self):
        x = np.ones((1, 2, 2, 1), dtype=np.float32)
        cols = F.im2col(x, (3, 3), (1, 1), (1, 1), pad_value=-7.0)
        # Top-left patch touches 5 padded positions.
        assert (cols[0, 0, 0] == -7.0).sum() == 5

    def test_im2col_rejects_non_nhwc(self):
        with pytest.raises(ValueError):
            F.im2col(np.zeros((3, 3)), (2, 2), (1, 1), (0, 0))

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> -- the defining adjoint property."""
        x = rng.normal(size=(2, 6, 6, 3))
        y = rng.normal(size=(2, 6, 6, 27))
        cols = F.im2col(x, (3, 3), (1, 1), (1, 1))
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im(y, x.shape, (3, 3), (1, 1), (1, 1))).sum())
        assert lhs == pytest.approx(rhs, rel=1e-6)


class TestConvForwardBackward:
    @pytest.mark.parametrize("stride,padding", [((1, 1), (0, 0)), ((1, 1), (1, 1)), ((2, 2), (1, 1))])
    def test_conv_forward_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 7, 7, 3)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=4).astype(np.float32)
        out, _ = F.conv2d_forward(x, w, b, stride, padding)
        np.testing.assert_allclose(out, naive_conv2d(x, w, b, stride, padding), rtol=1e-4, atol=1e-4)

    def test_conv_forward_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            F.conv2d_forward(np.zeros((1, 4, 4, 2), np.float32), np.zeros((3, 3, 3, 5), np.float32), None)

    def test_conv_backward_numerical_gradient(self, rng):
        x = rng.normal(size=(1, 5, 5, 2)).astype(np.float64)
        w = rng.normal(size=(3, 3, 3, 2)).astype(np.float64)
        b = rng.normal(size=3).astype(np.float64)
        out, cols = F.conv2d_forward(x, w, b, (1, 1), (1, 1))
        grad_out = rng.normal(size=out.shape)
        grad_x, grad_w, grad_b = F.conv2d_backward(grad_out, cols, w, x.shape, (1, 1), (1, 1))

        eps = 1e-5
        # Spot-check a few weight gradient entries against finite differences.
        for idx in [(0, 0, 0, 0), (1, 2, 1, 1), (2, 0, 2, 0)]:
            w_plus, w_minus = w.copy(), w.copy()
            w_plus[idx] += eps
            w_minus[idx] -= eps
            f_plus = (F.conv2d_forward(x, w_plus, b, (1, 1), (1, 1))[0] * grad_out).sum()
            f_minus = (F.conv2d_forward(x, w_minus, b, (1, 1), (1, 1))[0] * grad_out).sum()
            assert grad_w[idx] == pytest.approx((f_plus - f_minus) / (2 * eps), rel=1e-3, abs=1e-5)
        # And one input gradient entry.
        idx = (0, 2, 3, 1)
        x_plus, x_minus = x.copy(), x.copy()
        x_plus[idx] += eps
        x_minus[idx] -= eps
        f_plus = (F.conv2d_forward(x_plus, w, b, (1, 1), (1, 1))[0] * grad_out).sum()
        f_minus = (F.conv2d_forward(x_minus, w, b, (1, 1), (1, 1))[0] * grad_out).sum()
        assert grad_x[idx] == pytest.approx((f_plus - f_minus) / (2 * eps), rel=1e-3, abs=1e-5)
        assert grad_b.shape == (3,)


class TestPooling:
    def test_maxpool_forward_simple(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out, argmax = F.maxpool_forward(x, (2, 2), (2, 2))
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])
        assert argmax.shape == (1, 2, 2, 1)

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out, argmax = F.maxpool_forward(x, (2, 2), (2, 2))
        grad = np.ones_like(out)
        grad_x = F.maxpool_backward(grad, argmax, x.shape, (2, 2), (2, 2))
        assert grad_x.sum() == pytest.approx(4.0)
        assert grad_x[0, 1, 1, 0] == 1.0  # position of value 5
        assert grad_x[0, 0, 0, 0] == 0.0

    def test_avgpool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = F.avgpool_forward(x, (2, 2), (2, 2))
        np.testing.assert_allclose(out[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_backward_uniform(self):
        grad = np.ones((1, 2, 2, 1), dtype=np.float32)
        grad_x = F.avgpool_backward(grad, (1, 4, 4, 1), (2, 2), (2, 2))
        np.testing.assert_allclose(grad_x, np.full((1, 4, 4, 1), 0.25))


class TestSoftmaxAndHelpers:
    def test_softmax_sums_to_one(self, rng):
        logits = rng.normal(size=(5, 10)) * 10
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-6)
        assert (probs >= 0).all()

    def test_softmax_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 7))
        np.testing.assert_allclose(F.softmax(logits), F.softmax(logits + 100.0), rtol=1e-6)

    def test_log_softmax_consistent(self, rng):
        logits = rng.normal(size=(4, 6))
        np.testing.assert_allclose(np.exp(F.log_softmax(logits)), F.softmax(logits), rtol=1e-6)

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_relu_and_grad(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu(x), [0.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu_grad(x, np.ones_like(x)), [0.0, 0.0, 1.0])


@given(
    n=st.integers(1, 3),
    h=st.integers(4, 9),
    w=st.integers(4, 9),
    c=st.integers(1, 3),
    k=st.integers(1, 3),
)
@settings(max_examples=20, deadline=None)
def test_im2col_reconstruction_property(n, h, w, c, k):
    """Summing col2im(im2col(x)) counts each pixel once per window it belongs to."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n, h, w, c))
    cols = F.im2col(x, (k, k), (1, 1), (0, 0))
    back = F.col2im(cols, x.shape, (k, k), (1, 1), (0, 0))
    # Interior pixels are covered by exactly k*k windows (for stride 1, no padding),
    # so the reconstruction equals x * coverage, where coverage >= 1 everywhere a window fits.
    coverage = F.col2im(np.ones_like(cols), x.shape, (k, k), (1, 1), (0, 0))
    np.testing.assert_allclose(back, x * coverage, rtol=1e-6, atol=1e-9)
