"""Tests for the command-line interface and the TFLite-Micro stand-in engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.frameworks import CMSISNNEngine, TFLiteMicroEngine
from repro.isa import STM32U575, ExecutionStyle


class TestTFLiteMicroEngine:
    def test_much_slower_than_cmsis(self, tiny_qmodel):
        """The paper's intro cites ~an-order-of-magnitude gap between TFLM reference
        kernels and CMSIS-NN; the stand-in should sit clearly above CMSIS."""
        cmsis = CMSISNNEngine(tiny_qmodel).latency_ms(STM32U575)
        tflm = TFLiteMicroEngine(tiny_qmodel).latency_ms(STM32U575)
        assert tflm / cmsis > 3.0

    def test_same_predictions_as_cmsis(self, tiny_qmodel, small_split):
        images = small_split.test.images[:16]
        np.testing.assert_array_equal(
            TFLiteMicroEngine(tiny_qmodel).predict_classes(images),
            CMSISNNEngine(tiny_qmodel).predict_classes(images),
        )

    def test_rejects_masks_and_style(self, tiny_qmodel):
        assert TFLiteMicroEngine.style == ExecutionStyle.TFLITE_MICRO
        with pytest.raises(ValueError):
            TFLiteMicroEngine(tiny_qmodel, masks={"conv1": np.ones((1, 1), bool)})

    def test_larger_runtime_footprint(self, tiny_qmodel):
        tflm_layout = TFLiteMicroEngine(tiny_qmodel).memory_layout(STM32U575)
        cmsis_layout = CMSISNNEngine(tiny_qmodel).memory_layout(STM32U575)
        assert tflm_layout.flash.runtime > cmsis_layout.flash.runtime
        assert tflm_layout.ram.runtime > cmsis_layout.ram.runtime


class TestCLIParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--out", "x"])
        assert args.model == "lenet"
        assert args.func.__name__ == "cmd_train"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "resnet", "--out", "x"])

    def test_deploy_engine_choices(self):
        args = build_parser().parse_args(["deploy", "--qmodel", "q", "--engine", "tflite-micro"])
        assert args.engine == "tflite-micro"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy", "--qmodel", "q", "--engine", "onnxruntime"])

    def test_reproduce_flags(self):
        args = build_parser().parse_args(["reproduce", "--table1", "--scale", "ci"])
        assert args.table1 and args.scale == "ci"


@pytest.mark.slow
class TestCLIWorkflow:
    """Drive the full train -> quantize -> explore -> codegen -> deploy chain on a tiny model."""

    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli")

    @pytest.fixture(scope="class")
    def trained_stem(self, workdir):
        stem = workdir / "tiny"
        code = main([
            "train", "--model", "tiny_cnn", "--out", str(stem),
            "--samples", "500", "--epochs", "2", "--batch-size", "32", "--seed", "3",
        ])
        assert code == 0
        return stem

    @pytest.fixture(scope="class")
    def quantized_stem(self, workdir, trained_stem):
        stem = workdir / "tiny_q"
        code = main([
            "quantize", "--model-path", str(trained_stem), "--out", str(stem),
            "--samples", "500", "--seed", "3", "--calibration", "64",
        ])
        assert code == 0
        return stem

    def test_train_artifacts_exist(self, trained_stem):
        assert trained_stem.with_suffix(".json").exists()
        assert trained_stem.with_suffix(".npz").exists()

    def test_quantize_artifacts_exist(self, quantized_stem):
        assert quantized_stem.with_suffix(".json").exists()
        assert quantized_stem.with_suffix(".npz").exists()

    def test_explore_and_codegen_and_deploy(self, workdir, quantized_stem):
        dse_out = workdir / "dse.json"
        code = main([
            "explore", "--qmodel", str(quantized_stem), "--out", str(dse_out),
            "--samples", "500", "--seed", "3", "--loss", "0.2",
            "--taus", "0.0,0.01,0.05", "--eval-samples", "96",
        ])
        assert code == 0
        config_path = dse_out.with_suffix(".config.json")
        assert dse_out.exists() and config_path.exists()

        code_out = workdir / "kernels.c"
        assert main([
            "codegen", "--qmodel", str(quantized_stem), "--config", str(config_path),
            "--out", str(code_out), "--samples", "400", "--seed", "3",
        ]) == 0
        assert "__SMLAD" in code_out.read_text()

        assert main([
            "deploy", "--qmodel", str(quantized_stem), "--engine", "ataman",
            "--config", str(config_path), "--samples", "400", "--seed", "3",
            "--eval-samples", "64",
        ]) == 0
        assert main([
            "deploy", "--qmodel", str(quantized_stem), "--engine", "cmsis-nn",
            "--samples", "400", "--seed", "3", "--eval-samples", "64",
        ]) == 0
