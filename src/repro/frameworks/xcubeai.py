"""X-CUBE-AI stand-in engine.

X-CUBE-AI is STMicroelectronics' closed-source code generator; neither its
kernels nor its memory layout are public.  The stand-in is an *exact* engine
whose cycle-cost parameters and flash model are calibrated so that its
latency and flash relative to the CMSIS-NN baseline match what the paper's
Table II reports (~0.77-0.84x latency, smaller flash thanks to weight/graph
compression).  Only those relative positions matter for reproducing the
comparison; see DESIGN.md section 2.
"""

from __future__ import annotations

from repro.frameworks.base import BaseEngine
from repro.isa.cost_model import ExecutionStyle


class XCubeAIEngine(BaseEngine):
    """Exact inference with an X-CUBE-AI-like optimized code generator."""

    style = ExecutionStyle.XCUBE_AI
    engine_name = "x-cube-ai"

    kernel_code_bytes = 26 * 1024
    runtime_flash_bytes = 12 * 1024
    #: X-CUBE-AI applies weight compression/graph folding; Table II shows its
    #: flash below the raw weight size, which this factor models.
    weight_compression = 0.72
    runtime_ram_bytes = 16 * 1024
    uses_im2col_buffer = True

    def __init__(self, qmodel, masks=None):
        if masks:
            raise ValueError("X-CUBE-AI generates exact kernels; operand skipping is unsupported")
        super().__init__(qmodel, masks=None)
