"""TensorFlow-Lite-Micro stand-in engine.

The paper's introduction cites CMSIS-NN achieving ~11x lower latency than
TensorFlow Lite Micro's reference kernels on ImageNet-class models.  The
stand-in engine models TFLM's interpreter-dispatched reference kernels
(scalar int8 MACs, per-op dispatch overhead, flatbuffer graph kept in flash)
so that the "why optimised kernels matter" context of the paper can also be
reproduced quantitatively.
"""

from __future__ import annotations

from repro.frameworks.base import BaseEngine
from repro.isa.cost_model import ExecutionStyle


class TFLiteMicroEngine(BaseEngine):
    """Exact inference with TFLite-Micro-style reference kernels."""

    style = ExecutionStyle.TFLITE_MICRO
    engine_name = "tflite-micro"

    kernel_code_bytes = 90 * 1024
    runtime_flash_bytes = 60 * 1024  # interpreter + flatbuffer schema overhead
    weight_compression = 1.0
    runtime_ram_bytes = 48 * 1024    # tensor arena bookkeeping
    uses_im2col_buffer = False       # reference kernels loop directly (slowly)

    def __init__(self, qmodel, masks=None):
        if masks:
            raise ValueError("TFLite-Micro reference kernels are exact; skipping is unsupported")
        super().__init__(qmodel, masks=None)
