"""Inference engines: the proposed ATAMAN engine and the baselines it is compared against.

Every engine executes the *same* :class:`repro.quant.QuantizedModel` through
the int8 kernels, so classification results are directly comparable; engines
differ in their execution style (which drives the cycle cost model), their
flash/RAM footprint model and -- for the ATAMAN engine -- the operand-skipping
masks they apply.
"""

from repro.frameworks.base import BaseEngine
from repro.frameworks.cmsis_nn import CMSISNNEngine
from repro.frameworks.xcubeai import XCubeAIEngine
from repro.frameworks.utvm import MicroTVMEngine
from repro.frameworks.cmix_nn import CMixNNEngine
from repro.frameworks.tflite_micro import TFLiteMicroEngine
from repro.frameworks.ataman import AtamanEngine
from repro.registry import ENGINES

for _engine in (CMSISNNEngine, XCubeAIEngine, MicroTVMEngine, CMixNNEngine,
                TFLiteMicroEngine, AtamanEngine):
    if _engine.engine_name not in ENGINES:
        ENGINES.register(_engine.engine_name, _engine)

__all__ = [
    "BaseEngine",
    "CMSISNNEngine",
    "XCubeAIEngine",
    "MicroTVMEngine",
    "CMixNNEngine",
    "TFLiteMicroEngine",
    "AtamanEngine",
]
