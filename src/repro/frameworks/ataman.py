"""The proposed engine: layer-based code unpacking + significance-aware skipping.

The ATAMAN engine executes the quantized model with the paper's unpacked
fixed-weight kernels.  Operands skipped by the supplied
:class:`~repro.core.config.ApproxConfig` (or raw retention masks) are simply
absent from the generated code, so they cost neither cycles nor flash.  The
flash model therefore replaces the convolution weight arrays with the
unpacked code stream (weights are hard-wired into instructions), while
non-unpacked layers (dense classifier, pooling) keep their weight arrays and
library kernels.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.config import ApproxConfig
from repro.core.significance import SignificanceResult
from repro.core.unpacking import UnpackedLayer, total_unpacked_code_bytes, unpack_model
from repro.frameworks.base import BaseEngine
from repro.isa.cost_model import ExecutionStyle
from repro.isa.profiles import BoardProfile
from repro.mcu.memory import FlashBudget, MemoryLayout, RamBudget
from repro.quant.qmodel import QuantizedModel


class AtamanEngine(BaseEngine):
    """Approximate inference through unpacked, significance-skipped kernels.

    Parameters
    ----------
    qmodel:
        The quantized model.
    masks:
        Operand-retention masks (layer name -> boolean matrix).  May be
        omitted for the exact-unpacked design.
    config:
        Alternatively, an :class:`ApproxConfig`; requires ``significance`` to
        materialise the masks.
    significance:
        Significance matrices used to build masks from ``config``.
    unpacked:
        Pre-computed unpacked layers (recomputed from the model if omitted).
    """

    style = ExecutionStyle.UNPACKED
    engine_name = "ataman"
    supports_approx = True

    kernel_code_bytes = 24 * 1024  # only the non-conv library kernels remain
    runtime_flash_bytes = 14 * 1024  # structure parameters resolved at compile time
    weight_compression = 1.0
    runtime_ram_bytes = 14 * 1024
    uses_im2col_buffer = False

    def __init__(
        self,
        qmodel: QuantizedModel,
        masks: Optional[Dict[str, np.ndarray]] = None,
        config: Optional[ApproxConfig] = None,
        significance: Optional[SignificanceResult] = None,
        unpacked: Optional[Dict[str, UnpackedLayer]] = None,
    ):
        self.unpacked = unpacked if unpacked is not None else unpack_model(qmodel)
        if masks is None and config is not None:
            if config.is_exact:
                masks = None
            else:
                if significance is None:
                    raise ValueError("building masks from an ApproxConfig requires significance data")
                masks = config.build_masks(significance, unpacked=self.unpacked)
        super().__init__(qmodel, masks=masks)
        self.config = config

    # ------------------------------------------------------------------ memory
    def memory_layout(self, board: BoardProfile) -> MemoryLayout:
        """Flash/RAM budget with conv weights folded into the unpacked code."""
        unpacked_code = total_unpacked_code_bytes(self.unpacked, self.masks)
        # Layers whose weights are hard-wired into code no longer need weight arrays.
        remaining_weights = sum(
            layer.weight_nbytes()
            for layer in self.qmodel.layers
            if layer.name not in self.unpacked
        )
        # Biases of unpacked layers stay as data (int32 per output channel).
        unpacked_bias_bytes = sum(
            0 if self.qmodel.get_layer(name).bias is None else self.qmodel.get_layer(name).bias.size * 4
            for name in self.unpacked
        )
        flash = FlashBudget(
            weights=remaining_weights + unpacked_bias_bytes,
            kernel_code=self.kernel_code_bytes,
            runtime=self.runtime_flash_bytes,
            unpacked_code=unpacked_code,
        )
        ram = RamBudget(
            activations=self.qmodel.activation_nbytes(),
            im2col_buffer=0,
            runtime=self.runtime_ram_bytes,
        )
        return MemoryLayout(flash=flash, ram=ram)

    # ------------------------------------------------------------------ reporting
    def skipped_operand_fraction(self) -> float:
        """Fraction of conv operands skipped by the current masks."""
        if not self.masks:
            return 0.0
        total = sum(np.asarray(m).size for m in self.masks.values())
        kept = sum(int(np.asarray(m, dtype=bool).sum()) for m in self.masks.values())
        return 1.0 - kept / total if total else 0.0

    def unpacked_code_bytes(self) -> int:
        """Flash bytes of the generated unpacked code."""
        return total_unpacked_code_bytes(self.unpacked, self.masks)
