"""CMix-NN stand-in engine.

CMix-NN [9] is a mixed low-precision (2/4/8-bit) kernel library for
memory-constrained MCUs.  The paper's Section III uses it only for a
qualitative latency comparison at a matched MAC count (the paper reports a
62% latency reduction versus CMix-NN for a ~13.8M-MAC model).  The stand-in
models CMix-NN's higher per-MAC cost (bit-manipulation of sub-byte operands)
and its much smaller weight storage.
"""

from __future__ import annotations

from repro.frameworks.base import BaseEngine
from repro.isa.cost_model import ExecutionStyle


class CMixNNEngine(BaseEngine):
    """Exact inference with CMix-NN-style mixed-precision kernels."""

    style = ExecutionStyle.CMIX_NN
    engine_name = "cmix-nn"

    kernel_code_bytes = 52 * 1024
    runtime_flash_bytes = 24 * 1024
    #: Mixed 4-bit weights roughly halve the weight storage.
    weight_compression = 0.5
    runtime_ram_bytes = 24 * 1024
    uses_im2col_buffer = True

    def __init__(self, qmodel, masks=None):
        if masks:
            raise ValueError("the CMix-NN stand-in generates exact kernels; skipping is unsupported")
        super().__init__(qmodel, masks=None)
