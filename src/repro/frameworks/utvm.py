"""microTVM stand-in engine.

The paper cites uTVM [10] as reporting a ~13% latency overhead versus
CMSIS-NN on a LeNet-class model; the stand-in engine reproduces that relative
position through its cycle-cost parameters.  It is used only for the
qualitative comparison of Section III.
"""

from __future__ import annotations

from repro.frameworks.base import BaseEngine
from repro.isa.cost_model import ExecutionStyle


class MicroTVMEngine(BaseEngine):
    """Exact inference with microTVM-style generated C kernels."""

    style = ExecutionStyle.UTVM
    engine_name = "utvm"

    kernel_code_bytes = 64 * 1024
    runtime_flash_bytes = 48 * 1024
    weight_compression = 1.0
    runtime_ram_bytes = 28 * 1024
    uses_im2col_buffer = True

    def __init__(self, qmodel, masks=None):
        if masks:
            raise ValueError("the uTVM stand-in generates exact kernels; skipping is unsupported")
        super().__init__(qmodel, masks=None)
