"""Shared machinery of every inference engine."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.isa.cost_model import ExecutionStyle, KernelCostModel
from repro.isa.profiles import BoardProfile
from repro.kernels.cycle_counters import CycleCounter
from repro.mcu.memory import FlashBudget, MemoryLayout, RamBudget
from repro.quant.qmodel import QuantizedModel


class BaseEngine:
    """Base inference engine: quantized model + execution style + memory model.

    Subclasses set :attr:`style` and the flash/RAM model constants; the
    ATAMAN engine additionally carries operand-retention masks.

    Parameters
    ----------
    qmodel:
        The deployed quantized model.
    masks:
        Optional operand-retention masks (layer name -> boolean matrix);
        only the ATAMAN engine uses them.
    """

    #: Execution style used by the cycle cost model.
    style: ExecutionStyle = ExecutionStyle.CMSIS_PACKED
    #: Human-readable engine name.
    engine_name: str = "base"
    #: Whether the engine's constructor accepts the approximation artifacts
    #: (``config``/``significance``/``unpacked``) -- the deploy paths use
    #: this to decide how to instantiate a registry-resolved engine class.
    supports_approx: bool = False

    # -- flash model constants (bytes) ----------------------------------------
    #: Library kernel code size.
    kernel_code_bytes: int = 40 * 1024
    #: Runtime / graph-executor overhead.
    runtime_flash_bytes: int = 30 * 1024
    #: Multiplier on stored weight bytes (models weight compression).
    weight_compression: float = 1.0

    # -- RAM model constants (bytes) -------------------------------------------
    #: Runtime working RAM (graph state, stack headroom).
    runtime_ram_bytes: int = 20 * 1024
    #: Whether the engine needs an im2col scratch buffer.
    uses_im2col_buffer: bool = True

    def __init__(self, qmodel: QuantizedModel, masks: Optional[Dict[str, np.ndarray]] = None):
        self.qmodel = qmodel
        self.masks = dict(masks) if masks else None
        self.name = self.engine_name
        self.model_name = qmodel.name
        self._profile_cache: Optional[CycleCounter] = None

    # ------------------------------------------------------------------ inference
    def predict_logits(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Dequantized logits for float NHWC inputs."""
        outputs = []
        for start in range(0, images.shape[0], batch_size):
            outputs.append(self.qmodel.forward(images[start : start + batch_size], masks=self.masks))
        return np.concatenate(outputs, axis=0) if outputs else np.empty((0,))

    def predict_classes(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted class indices."""
        return self.qmodel.predict_classes(images, masks=self.masks, batch_size=batch_size)

    def evaluate_accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on a labelled set."""
        return self.qmodel.evaluate_accuracy(images, labels, masks=self.masks)

    # ------------------------------------------------------------------ performance
    def profile(self, sample: Optional[np.ndarray] = None) -> CycleCounter:
        """Run one inference with operation counters attached.

        ``sample`` defaults to a single zero image; operation counts are
        shape-dependent only, so any input of the right shape is equivalent.
        """
        use_cache = sample is None
        if use_cache and self._profile_cache is not None:
            return self._profile_cache
        if sample is None:
            sample = np.zeros((1,) + self.qmodel.input_shape, dtype=np.float32)
        if sample.ndim == 3:
            sample = sample[None, ...]
        if sample.shape[0] != 1:
            sample = sample[:1]
        counter = CycleCounter()
        self.qmodel.forward(sample, masks=self.masks, counter=counter)
        if use_cache:
            self._profile_cache = counter
        return counter

    def cost_model(self) -> KernelCostModel:
        """Cycle cost model matching the engine's execution style."""
        return KernelCostModel(self.style)

    def estimate_cycles(self) -> float:
        """Estimated cycles of one inference."""
        return self.cost_model().estimate_cycles(self.profile())

    def latency_ms(self, board: BoardProfile) -> float:
        """Estimated single-inference latency on ``board``."""
        return self.cost_model().latency_ms(self.profile(), board)

    def layer_latency_ms(self, board: BoardProfile) -> Dict[str, float]:
        """Per-layer latency breakdown in milliseconds."""
        total, per_layer = self.cost_model().estimate(self.profile())
        return {
            name: board.cycles_to_seconds(est.cycles) * 1e3 for name, est in per_layer.items()
        }

    def total_macs(self) -> int:
        """MACs actually executed per inference (honouring masks)."""
        return self.qmodel.total_macs(masks=self.masks)

    def conv_macs(self) -> int:
        """Convolution MACs actually executed per inference."""
        return self.qmodel.conv_macs(masks=self.masks)

    # ------------------------------------------------------------------ memory
    def _weights_flash_bytes(self) -> int:
        return int(round(self.qmodel.weight_nbytes() * self.weight_compression))

    def _im2col_buffer_bytes(self) -> int:
        if not self.uses_im2col_buffer:
            return 0
        # CMSIS-NN keeps a 2-column int16 im2col scratch buffer.
        ks = [layer.operands_per_channel for layer in self.qmodel.conv_layers()]
        return max(ks) * 2 * 2 if ks else 0

    def memory_layout(self, board: BoardProfile) -> MemoryLayout:
        """Flash/RAM budget of this deployment (board-independent in practice)."""
        flash = FlashBudget(
            weights=self._weights_flash_bytes(),
            kernel_code=self.kernel_code_bytes,
            runtime=self.runtime_flash_bytes,
            unpacked_code=0,
        )
        ram = RamBudget(
            activations=self.qmodel.activation_nbytes(),
            im2col_buffer=self._im2col_buffer_bytes(),
            runtime=self.runtime_ram_bytes,
        )
        return MemoryLayout(flash=flash, ram=ram)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(model={self.qmodel.name!r})"
