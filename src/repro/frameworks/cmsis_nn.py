"""CMSIS-NN baseline engine (the paper's exact state-of-the-art reference [2])."""

from __future__ import annotations

from repro.frameworks.base import BaseEngine
from repro.isa.cost_model import ExecutionStyle


class CMSISNNEngine(BaseEngine):
    """Exact int8 inference with stock CMSIS-NN-style packed kernels.

    The flash model reflects a CMSIS-NN deployment: int8 weight arrays, the
    generic kernel library (~40 KiB) and the runtime/model-structure tables
    that stock deployments keep in flash and parse at run time (~30 KiB).
    """

    style = ExecutionStyle.CMSIS_PACKED
    engine_name = "cmsis-nn"

    kernel_code_bytes = 40 * 1024
    runtime_flash_bytes = 30 * 1024
    weight_compression = 1.0
    runtime_ram_bytes = 20 * 1024
    uses_im2col_buffer = True

    def __init__(self, qmodel, masks=None):
        if masks:
            raise ValueError("the CMSIS-NN packed kernels cannot skip operands")
        super().__init__(qmodel, masks=None)
