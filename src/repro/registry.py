"""Plugin registries: the extension points of the public API.

Every place the toolkit used to hard-code a dispatch table -- significance
metrics, skipping granularities, DSE search strategies, inference engines and
board profiles -- is now a :class:`Registry`.  Components register themselves
with a decorator::

    from repro.registry import SEARCH_STRATEGIES

    @SEARCH_STRATEGIES.register("annealing")
    class AnnealingSearch(SearchStrategy):
        ...

and are resolved by name anywhere a string is accepted (``DSEConfig.strategy``,
``compute_significance(metric=...)``, the CLI's ``--strategy/--engine/--board``
choices, ...).  Registries load their built-in entries lazily on first access,
so importing :mod:`repro.registry` never drags in the heavier subsystems.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Generic, Iterator, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class RegistryError(KeyError):
    """Raised when a name cannot be resolved against a registry."""


class Registry(Generic[T]):
    """A named collection of pluggable components.

    Parameters
    ----------
    kind:
        Human-readable description of what is registered (used in error
        messages, e.g. ``"search strategy"``).
    builtin_modules:
        Modules imported lazily before the first lookup; the built-in
        components register themselves as an import side effect.
    """

    def __init__(self, kind: str, builtin_modules: Sequence[str] = ()):
        self.kind = kind
        self._builtin_modules = tuple(builtin_modules)
        self._entries: Dict[str, T] = {}
        self._loaded = False

    # ------------------------------------------------------------------ loading
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True  # set first: the imports themselves call register()
        for module in self._builtin_modules:
            importlib.import_module(module)

    # ------------------------------------------------------------------ registration
    def register(
        self,
        name: str,
        obj: Optional[T] = None,
        *,
        aliases: Sequence[str] = (),
        override: bool = False,
    ):
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        ``register(name, obj)`` registers immediately; ``@register(name)``
        decorates a class or function.  Duplicate names raise unless
        ``override=True``.
        """
        names = [name, *aliases]

        def _store(target: T) -> T:
            for key in names:
                key = key.lower()
                if not override and key in self._entries:
                    raise RegistryError(
                        f"{self.kind} {key!r} is already registered; pass override=True to replace it"
                    )
                self._entries[key] = target
            return target

        if obj is not None:
            return _store(obj)
        return _store

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests of custom plugins)."""
        self._entries.pop(name.lower(), None)

    # ------------------------------------------------------------------ lookup
    def resolve(self, name: str) -> T:
        """Look a component up by name.

        Raises
        ------
        RegistryError
            If the name is unknown; the message lists the registered names.
        """
        self._ensure_loaded()
        try:
            return self._entries[str(name).lower()]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def get(self, name: str, default: Optional[T] = None) -> Optional[T]:
        """Like :meth:`resolve` but returning ``default`` for unknown names."""
        self._ensure_loaded()
        return self._entries.get(str(name).lower(), default)

    def names(self) -> List[str]:
        """Sorted names of every registered component."""
        self._ensure_loaded()
        return sorted(self._entries)

    def items(self):
        """``(name, component)`` pairs."""
        self._ensure_loaded()
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return str(name).lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Registry({self.kind!r}, {self.names()!r})"


# --------------------------------------------------------------------------- built-ins
#: Significance rankings (paper Eq. 2 plus the ablation metrics).
SIGNIFICANCE_METRICS: Registry[Callable[..., Any]] = Registry(
    "significance metric", builtin_modules=("repro.core.significance",)
)

#: Skipping granularities (operand-level plus the coarse ablation modes).
GRANULARITIES: Registry[Any] = Registry(
    "skipping granularity", builtin_modules=("repro.core.skipping",)
)

#: DSE search strategies (exhaustive sweep, greedy per-layer, latency-aware).
SEARCH_STRATEGIES: Registry[type] = Registry(
    "search strategy", builtin_modules=("repro.core.strategies",)
)

#: Inference engines (the ATAMAN engine, the exact baselines and the VM engines).
ENGINES: Registry[type] = Registry(
    "inference engine", builtin_modules=("repro.frameworks", "repro.vm.engine")
)

#: Target board profiles.
BOARDS: Registry[Any] = Registry(
    "board profile", builtin_modules=("repro.isa.profiles",)
)

#: Serving policies (which Pareto design serves the next batch).
POLICIES: Registry[type] = Registry(
    "serving policy", builtin_modules=("repro.serving.policy",)
)

#: HTTP server fronts (the thread-per-connection server and the asyncio one).
FRONTS: Registry[type] = Registry(
    "server front", builtin_modules=("repro.serving.server", "repro.serving.async_server")
)

__all__ = [
    "Registry",
    "RegistryError",
    "SIGNIFICANCE_METRICS",
    "GRANULARITIES",
    "SEARCH_STRATEGIES",
    "ENGINES",
    "BOARDS",
    "POLICIES",
    "FRONTS",
]
