"""Persistence of quantized models (the deployable int8 artefact).

The on-disk format mirrors what a flatbuffer-style deployment container
holds: per-layer type + hyperparameters + quantization parameters in a JSON
manifest (``<stem>.json``) and the int8 weights / int32 biases in an NPZ
archive (``<stem>.npz``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.quant.qlayers import (
    QAvgPool2D,
    QConv2D,
    QDense,
    QFlatten,
    QLayer,
    QMaxPool2D,
    QReLU,
)
from repro.quant.qmodel import QuantizedModel
from repro.quant.schemes import QuantizationParams
from repro.utils.serialization import load_json, load_npz, save_json, save_npz

PathLike = Union[str, Path]


def _params_to_dict(params: QuantizationParams) -> Dict[str, object]:
    return {"scale": params.scale.tolist(), "zero_point": params.zero_point.tolist()}


def _params_from_dict(payload: Dict[str, object]) -> QuantizationParams:
    return QuantizationParams(
        scale=np.asarray(payload["scale"], dtype=np.float64),
        zero_point=np.asarray(payload["zero_point"], dtype=np.int64),
    )


def _paths(stem: PathLike) -> tuple[Path, Path]:
    stem = Path(stem)
    if stem.suffix in {".json", ".npz"}:
        stem = stem.with_suffix("")
    return stem.with_suffix(".json"), stem.with_suffix(".npz")


def save_quantized_model(qmodel: QuantizedModel, stem: PathLike) -> Path:
    """Save a quantized model under ``<stem>.json`` + ``<stem>.npz``."""
    json_path, npz_path = _paths(stem)
    manifest: Dict[str, object] = {
        "name": qmodel.name,
        "input_shape": list(qmodel.input_shape),
        "n_classes": qmodel.n_classes,
        "input_params": _params_to_dict(qmodel.input_params),
        "layers": [],
    }
    arrays: Dict[str, np.ndarray] = {}
    layers: List[Dict[str, object]] = manifest["layers"]  # type: ignore[assignment]

    for layer in qmodel.layers:
        entry: Dict[str, object] = {"type": layer.__class__.__name__, "name": layer.name}
        entry["input_params"] = _params_to_dict(layer.input_params)
        entry["output_params"] = _params_to_dict(layer.output_params)
        if isinstance(layer, (QConv2D, QDense)):
            entry["weight_params"] = _params_to_dict(layer.weight_params)
            entry["fused_relu"] = layer.fused_relu
            arrays[f"{layer.name}/weights"] = layer.weights
            if layer.bias is not None:
                arrays[f"{layer.name}/bias"] = layer.bias
            if isinstance(layer, QConv2D):
                entry["stride"] = list(layer.stride)
                entry["padding"] = list(layer.padding)
        elif isinstance(layer, (QMaxPool2D, QAvgPool2D)):
            entry["kernel"] = list(layer.kernel)
            entry["stride"] = list(layer.stride)
        layers.append(entry)

    save_json(json_path, manifest)
    if arrays:
        save_npz(npz_path, arrays)
    return json_path


def load_quantized_model(stem: PathLike) -> QuantizedModel:
    """Load a quantized model saved by :func:`save_quantized_model`."""
    json_path, npz_path = _paths(stem)
    manifest = load_json(json_path)
    arrays = load_npz(npz_path) if npz_path.exists() else {}

    layers: List[QLayer] = []
    for entry in manifest["layers"]:
        kind = entry["type"]
        name = entry["name"]
        input_params = _params_from_dict(entry["input_params"])
        output_params = _params_from_dict(entry["output_params"])
        if kind == "QConv2D":
            layers.append(
                QConv2D(
                    name=name,
                    weights=arrays[f"{name}/weights"].astype(np.int8),
                    bias=arrays.get(f"{name}/bias"),
                    input_params=input_params,
                    weight_params=_params_from_dict(entry["weight_params"]),
                    output_params=output_params,
                    stride=tuple(entry["stride"]),
                    padding=tuple(entry["padding"]),
                    fused_relu=bool(entry["fused_relu"]),
                )
            )
        elif kind == "QDense":
            layers.append(
                QDense(
                    name=name,
                    weights=arrays[f"{name}/weights"].astype(np.int8),
                    bias=arrays.get(f"{name}/bias"),
                    input_params=input_params,
                    weight_params=_params_from_dict(entry["weight_params"]),
                    output_params=output_params,
                    fused_relu=bool(entry["fused_relu"]),
                )
            )
        elif kind == "QMaxPool2D":
            layers.append(QMaxPool2D(name, input_params, tuple(entry["kernel"]), tuple(entry["stride"])))
        elif kind == "QAvgPool2D":
            layers.append(QAvgPool2D(name, input_params, tuple(entry["kernel"]), tuple(entry["stride"])))
        elif kind == "QFlatten":
            layers.append(QFlatten(name, input_params))
        elif kind == "QReLU":
            layers.append(QReLU(name, input_params))
        else:
            raise ValueError(f"cannot rebuild quantized layer of type {kind!r}")

    return QuantizedModel(
        layers=layers,
        input_params=_params_from_dict(manifest["input_params"]),
        input_shape=tuple(manifest["input_shape"]),
        n_classes=int(manifest["n_classes"]),
        name=str(manifest.get("name", "qmodel")),
    )
