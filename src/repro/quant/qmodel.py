"""Quantized model container."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.cycle_counters import CycleCounter
from repro.quant.qlayers import QConv2D, QLayer
from repro.quant.schemes import QuantizationParams, dequantize, quantize


class QuantizedModel:
    """An int8 model: input quantization parameters plus a chain of q-layers.

    This is the deployable artefact every inference engine
    (:mod:`repro.frameworks`) consumes, and the object the paper's
    approximation framework (:mod:`repro.core`) analyses and rewrites.
    """

    def __init__(
        self,
        layers: Sequence[QLayer],
        input_params: QuantizationParams,
        input_shape: Tuple[int, int, int],
        n_classes: int,
        name: str = "qmodel",
    ):
        self.layers: List[QLayer] = list(layers)
        self.input_params = input_params
        self.input_shape = tuple(input_shape)
        self.n_classes = int(n_classes)
        self.name = name

    # ------------------------------------------------------------------ structure
    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def get_layer(self, name: str) -> QLayer:
        """Look a layer up by name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in model {self.name}")

    def conv_layers(self) -> List[QConv2D]:
        """The convolution layers (the paper's approximation targets)."""
        return [layer for layer in self.layers if isinstance(layer, QConv2D)]

    def mac_layers(self) -> List[QLayer]:
        """Layers that perform MAC work (conv + dense)."""
        return [layer for layer in self.layers if layer.is_mac_layer]

    def layer_shapes(self) -> List[Tuple[str, Tuple[int, ...], Tuple[int, ...]]]:
        """Per-layer ``(name, input_shape, output_shape)`` for one sample."""
        shapes = []
        shape: Tuple[int, ...] = self.input_shape
        for layer in self.layers:
            out_shape = layer.output_shape(shape)
            shapes.append((layer.name, tuple(shape), tuple(out_shape)))
            shape = out_shape
        return shapes

    def layer_input_shapes(self) -> Dict[str, Tuple[int, ...]]:
        """Mapping layer name -> per-sample input shape."""
        return {name: in_shape for name, in_shape, _ in self.layer_shapes()}

    def total_macs(self, masks: Optional[Dict[str, np.ndarray]] = None) -> int:
        """Total MACs per sample, honouring optional skip masks."""
        total = 0
        input_shapes = self.layer_input_shapes()
        for layer in self.layers:
            if not layer.is_mac_layer:
                continue
            full = layer.macs(input_shapes[layer.name])
            if masks and layer.name in masks:
                mask = np.asarray(masks[layer.name], dtype=bool)
                retained_fraction = float(mask.mean()) if mask.size else 1.0
                total += int(round(full * retained_fraction))
            else:
                total += full
        return total

    def conv_macs(self, masks: Optional[Dict[str, np.ndarray]] = None) -> int:
        """Convolution-layer MACs per sample, honouring optional skip masks."""
        total = 0
        input_shapes = self.layer_input_shapes()
        for layer in self.conv_layers():
            full = layer.macs(input_shapes[layer.name])
            if masks and layer.name in masks:
                mask = np.asarray(masks[layer.name], dtype=bool)
                retained_fraction = float(mask.mean()) if mask.size else 1.0
                total += int(round(full * retained_fraction))
            else:
                total += full
        return total

    def weight_nbytes(self) -> int:
        """Total parameter bytes (int8 weights + int32 biases)."""
        return sum(layer.weight_nbytes() for layer in self.layers)

    def activation_nbytes(self) -> int:
        """Peak activation buffer requirement (ping-pong double buffering)."""
        sizes = [int(np.prod(self.input_shape))]
        for _, _, out_shape in self.layer_shapes():
            sizes.append(int(np.prod(out_shape)))
        # Two live buffers at any time (input + output of the current layer).
        pairwise = [sizes[i] + sizes[i + 1] for i in range(len(sizes) - 1)]
        return max(pairwise) if pairwise else 0

    # ------------------------------------------------------------------ execution
    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Quantize float NHWC inputs with the model's input parameters."""
        return quantize(x, self.input_params)

    def forward_quantized(
        self,
        q_input: np.ndarray,
        masks: Optional[Dict[str, np.ndarray]] = None,
        counter: Optional[CycleCounter] = None,
    ) -> np.ndarray:
        """Run the int8 network on an already-quantized input."""
        x = q_input
        for layer in self.layers:
            mask = masks.get(layer.name) if masks else None
            x = layer.forward(x, weight_mask=mask, counter=counter)
        return x

    def forward(
        self,
        x: np.ndarray,
        masks: Optional[Dict[str, np.ndarray]] = None,
        counter: Optional[CycleCounter] = None,
    ) -> np.ndarray:
        """Quantize float inputs, run the network, and return *dequantized* outputs."""
        q_out = self.forward_quantized(self.quantize_input(x), masks=masks, counter=counter)
        return dequantize(q_out, self.layers[-1].output_params)

    def predict_classes(
        self,
        x: np.ndarray,
        masks: Optional[Dict[str, np.ndarray]] = None,
        batch_size: int = 256,
    ) -> np.ndarray:
        """Predicted class indices for float inputs.

        The input is processed in fixed-size chunks; predictions land in one
        preallocated output array instead of a list-and-concatenate round
        trip, and because every full chunk has the same shape the conv
        layers' im2col buffers are recycled across chunks (by the allocator,
        or explicitly via :func:`repro.quant.qlayers.set_im2col_scratch`).
        """
        n = int(x.shape[0])
        predictions = np.empty((n,), dtype=np.int64)
        for start in range(0, n, batch_size):
            stop = min(start + batch_size, n)
            logits = self.forward(x[start:stop], masks=masks)
            predictions[start:stop] = logits.argmax(axis=-1)
        return predictions

    def evaluate_accuracy(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        masks: Optional[Dict[str, np.ndarray]] = None,
        batch_size: int = 256,
    ) -> float:
        """Top-1 accuracy on float inputs/integer labels."""
        predictions = self.predict_classes(x, masks=masks, batch_size=batch_size)
        if predictions.size == 0:
            return 0.0
        return float((predictions == np.asarray(labels)).mean())

    # ------------------------------------------------------------------ reporting
    def summary(self) -> str:
        """Human-readable per-layer summary."""
        lines = [f"QuantizedModel: {self.name}"]
        lines.append(f"{'layer':<22}{'type':<14}{'output shape':<18}{'MACs':>12}{'weights (B)':>14}")
        lines.append("-" * 80)
        input_shapes = self.layer_input_shapes()
        for layer_name, _, out_shape in self.layer_shapes():
            layer = self.get_layer(layer_name)
            macs = layer.macs(input_shapes[layer_name]) if layer.is_mac_layer else 0
            lines.append(
                f"{layer_name:<22}{layer.__class__.__name__:<14}{str(out_shape):<18}"
                f"{macs:>12}{layer.weight_nbytes():>14}"
            )
        lines.append("-" * 80)
        lines.append(
            f"total MACs: {self.total_macs():,}   weights: {self.weight_nbytes():,} B   "
            f"peak activations: {self.activation_nbytes():,} B"
        )
        return "\n".join(lines)
