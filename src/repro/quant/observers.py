"""Activation-range observers used during post-training calibration."""

from __future__ import annotations

import numpy as np

from repro.quant.schemes import QuantizationParams, params_from_minmax


class Observer:
    """Base class: accumulate statistics over batches, then emit quant params."""

    def observe(self, values: np.ndarray) -> None:
        """Update the running statistics with a batch of activations."""
        raise NotImplementedError

    def compute_params(self) -> QuantizationParams:
        """Produce quantization parameters from the accumulated statistics."""
        raise NotImplementedError


class MinMaxObserver(Observer):
    """Track the global minimum and maximum activation value."""

    def __init__(self) -> None:
        self.min_value = np.inf
        self.max_value = -np.inf
        self.count = 0

    def observe(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.size == 0:
            return
        self.min_value = min(self.min_value, float(values.min()))
        self.max_value = max(self.max_value, float(values.max()))
        self.count += values.size

    def compute_params(self) -> QuantizationParams:
        if self.count == 0:
            raise RuntimeError("observer has seen no data")
        return params_from_minmax(self.min_value, self.max_value)


class PercentileObserver(Observer):
    """Track a percentile-clipped range, which is more robust to outliers.

    Keeps a reservoir sample of observed values (bounded memory) and computes
    the ``(lower, upper)`` percentiles at the end.
    """

    def __init__(self, percentile: float = 99.9, reservoir_size: int = 100_000, seed: int = 0):
        if not 50.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (50, 100]")
        self.percentile = float(percentile)
        self.reservoir_size = int(reservoir_size)
        self._rng = np.random.default_rng(seed)
        self._reservoir: np.ndarray | None = None
        self.count = 0

    def observe(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float32).ravel()
        if values.size == 0:
            return
        self.count += values.size
        if values.size > self.reservoir_size:
            values = self._rng.choice(values, size=self.reservoir_size, replace=False)
        if self._reservoir is None:
            self._reservoir = values.copy()
        else:
            combined = np.concatenate([self._reservoir, values])
            if combined.size > self.reservoir_size:
                combined = self._rng.choice(combined, size=self.reservoir_size, replace=False)
            self._reservoir = combined

    def compute_params(self) -> QuantizationParams:
        if self._reservoir is None or self.count == 0:
            raise RuntimeError("observer has seen no data")
        lower = float(np.percentile(self._reservoir, 100.0 - self.percentile))
        upper = float(np.percentile(self._reservoir, self.percentile))
        return params_from_minmax(lower, upper)


def make_observer(kind: str, **kwargs) -> Observer:
    """Factory: ``"minmax"`` or ``"percentile"``."""
    if kind == "minmax":
        return MinMaxObserver()
    if kind == "percentile":
        return PercentileObserver(**kwargs)
    raise ValueError(f"unknown observer kind {kind!r}")
