"""Re-export of the fixed-point requantization primitives.

The implementation lives in :mod:`repro.kernels.requantize` (it is kernel-level
machinery mirroring ``arm_nn_requantize``); this module keeps the historical
``repro.quant.requantize`` import path working and groups it with the rest of
the quantization API.
"""

from repro.kernels.requantize import (
    INT32_MAX,
    INT32_MIN,
    FixedPointMultiplier,
    quantize_multiplier,
    requantize,
    requantize_float,
    saturate_int8,
)

__all__ = [
    "INT32_MIN",
    "INT32_MAX",
    "FixedPointMultiplier",
    "quantize_multiplier",
    "requantize",
    "requantize_float",
    "saturate_int8",
]
