"""Quantized tensor container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.schemes import QuantizationParams, dequantize, quantize


@dataclass
class QTensor:
    """An int8 tensor together with its quantization parameters."""

    values: np.ndarray
    params: QuantizationParams

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.values.dtype != np.int8:
            raise TypeError(f"QTensor values must be int8, got {self.values.dtype}")

    @property
    def shape(self) -> tuple:
        """Shape of the underlying int8 array."""
        return self.values.shape

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return int(self.values.nbytes)

    def dequantize(self) -> np.ndarray:
        """Real-valued view of the tensor."""
        return dequantize(self.values, self.params)

    @classmethod
    def from_float(cls, values: np.ndarray, params: QuantizationParams) -> "QTensor":
        """Quantize a float tensor."""
        return cls(values=quantize(values, params), params=params)
