"""Quantization parameter containers and (de)quantization primitives."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INT8_MIN = -128
INT8_MAX = 127


@dataclass(frozen=True)
class QuantizationParams:
    """Affine quantization parameters ``real = scale * (q - zero_point)``.

    ``scale`` and ``zero_point`` may be scalars (per-tensor) or 1-D arrays
    (per-channel along the last axis of the associated tensor).
    """

    scale: np.ndarray
    zero_point: np.ndarray
    bits: int = 8

    def __post_init__(self) -> None:
        scale = np.atleast_1d(np.asarray(self.scale, dtype=np.float64))
        zero_point = np.atleast_1d(np.asarray(self.zero_point, dtype=np.int64))
        if np.any(scale <= 0):
            raise ValueError("quantization scale must be strictly positive")
        if self.bits != 8:
            raise ValueError("only 8-bit quantization is supported")
        if scale.shape != zero_point.shape and zero_point.size != 1 and scale.size != 1:
            raise ValueError("scale and zero_point must be broadcastable")
        object.__setattr__(self, "scale", scale)
        object.__setattr__(self, "zero_point", zero_point)

    @property
    def is_per_channel(self) -> bool:
        """True when the parameters carry one entry per channel."""
        return self.scale.size > 1

    @property
    def qmin(self) -> int:
        """Smallest representable quantized value."""
        return INT8_MIN

    @property
    def qmax(self) -> int:
        """Largest representable quantized value."""
        return INT8_MAX

    def scalar_scale(self) -> float:
        """Scale as a Python float (per-tensor parameters only)."""
        if self.is_per_channel:
            raise ValueError("per-channel parameters have no scalar scale")
        return float(self.scale[0])

    def scalar_zero_point(self) -> int:
        """Zero point as a Python int (per-tensor parameters only)."""
        if self.zero_point.size > 1:
            raise ValueError("per-channel parameters have no scalar zero point")
        return int(self.zero_point[0])


def quantize(values: np.ndarray, params: QuantizationParams) -> np.ndarray:
    """Quantize real values to int8 using ``params`` (round-to-nearest, saturating)."""
    values = np.asarray(values, dtype=np.float64)
    q = np.rint(values / params.scale + params.zero_point)
    return np.clip(q, INT8_MIN, INT8_MAX).astype(np.int8)


def dequantize(q: np.ndarray, params: QuantizationParams) -> np.ndarray:
    """Map int8 values back to real values."""
    q = np.asarray(q, dtype=np.float64)
    return ((q - params.zero_point) * params.scale).astype(np.float32)


def params_from_minmax(
    min_value: float, max_value: float, bits: int = 8
) -> QuantizationParams:
    """Asymmetric per-tensor parameters covering ``[min_value, max_value]``.

    The range is expanded to include zero (required so that zero padding is
    exactly representable, as TFLite/CMSIS do).
    """
    min_value = float(min(min_value, 0.0))
    max_value = float(max(max_value, 0.0))
    if max_value == min_value:
        max_value = min_value + 1e-8
    span = max_value - min_value
    scale = span / float(INT8_MAX - INT8_MIN)
    zero_point = int(np.clip(np.rint(INT8_MIN - min_value / scale), INT8_MIN, INT8_MAX))
    return QuantizationParams(scale=np.array([scale]), zero_point=np.array([zero_point]), bits=bits)


def symmetric_params_from_absmax(abs_max: np.ndarray, bits: int = 8) -> QuantizationParams:
    """Symmetric (zero-point 0) parameters from per-channel absolute maxima.

    Used for weights: CMSIS-NN requires symmetric per-channel weight
    quantization so that the SMLAD accumulation needs no weight offset.
    """
    abs_max = np.atleast_1d(np.asarray(abs_max, dtype=np.float64))
    abs_max = np.where(abs_max <= 0, 1e-8, abs_max)
    scale = abs_max / float(INT8_MAX)
    zero_point = np.zeros_like(scale, dtype=np.int64)
    return QuantizationParams(scale=scale, zero_point=zero_point, bits=bits)


def quantization_error(values: np.ndarray, params: QuantizationParams) -> float:
    """Mean absolute round-trip error of quantizing ``values``."""
    round_trip = dequantize(quantize(values, params), params)
    return float(np.mean(np.abs(np.asarray(values, dtype=np.float32) - round_trip)))
