"""Post-training quantization: float :class:`Sequential` -> :class:`QuantizedModel`.

The procedure mirrors the TFLite/CMSIS-NN int8 PTQ flow the paper relies on:

1. fold training-only structure (batch-norm, dropout);
2. run the calibration subset through the float model and observe the
   activation range at every quantization boundary;
3. quantize weights per-output-channel (symmetric) and biases to int32;
4. fuse each ReLU into the preceding conv/dense as an output clamp;
5. assemble the chain of :class:`~repro.quant.qlayers.QLayer` executors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers.activations import ReLU, Softmax
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.pooling import AvgPool2D, MaxPool2D
from repro.nn.model import Sequential
from repro.quant.folding import fold_model
from repro.quant.observers import make_observer
from repro.quant.qlayers import (
    QAvgPool2D,
    QConv2D,
    QDense,
    QFlatten,
    QLayer,
    QMaxPool2D,
    QReLU,
)
from repro.quant.qmodel import QuantizedModel
from repro.quant.schemes import (
    QuantizationParams,
    symmetric_params_from_absmax,
)


@dataclass
class PTQConfig:
    """Configuration of the post-training quantization pass.

    Attributes
    ----------
    observer:
        ``"minmax"`` or ``"percentile"`` activation-range observer.
    percentile:
        Clipping percentile when ``observer == "percentile"``.
    fuse_relu:
        Fuse ReLU layers into the preceding conv/dense clamp (what deployed
        graphs do); disable only for debugging.
    calibration_batch_size:
        Batch size used while running calibration data through the float model.
    """

    observer: str = "minmax"
    percentile: float = 99.9
    fuse_relu: bool = True
    calibration_batch_size: int = 64


def _make_observer(config: PTQConfig):
    if config.observer == "percentile":
        return make_observer("percentile", percentile=config.percentile)
    return make_observer(config.observer)


def _quantize_conv_weights(layer: Conv2D) -> Tuple[np.ndarray, QuantizationParams]:
    """Per-output-channel symmetric int8 weights for a convolution."""
    w = layer.weight.value
    abs_max = np.abs(w).reshape(w.shape[0], -1).max(axis=1)
    params = symmetric_params_from_absmax(abs_max)
    scale = params.scale[:, None, None, None]
    q = np.clip(np.rint(w / scale), -127, 127).astype(np.int8)
    return q, params


def _quantize_dense_weights(layer: Dense) -> Tuple[np.ndarray, QuantizationParams]:
    """Per-output-channel symmetric int8 weights for a dense layer."""
    w = layer.weight.value  # (in, out)
    abs_max = np.abs(w).max(axis=0)
    params = symmetric_params_from_absmax(abs_max)
    q = np.clip(np.rint(w / params.scale[None, :]), -127, 127).astype(np.int8)
    return q, params


def _quantize_bias(bias: Optional[np.ndarray], input_scale: float, weight_scale: np.ndarray) -> Optional[np.ndarray]:
    """int32 bias with scale ``input_scale * weight_scale``."""
    if bias is None:
        return None
    scale = input_scale * weight_scale
    return np.rint(bias / scale).astype(np.int64)


def quantize_model(
    model: Sequential,
    calibration_images: np.ndarray,
    config: Optional[PTQConfig] = None,
    name: Optional[str] = None,
) -> QuantizedModel:
    """Quantize a float model to int8 using a calibration set.

    Parameters
    ----------
    model:
        Trained float model with ``input_shape`` set.
    calibration_images:
        Float NHWC calibration inputs (a "small portion of the dataset" in the
        paper's words).
    config:
        PTQ options.
    name:
        Name of the resulting quantized model (defaults to ``model.name``).
    """
    config = config or PTQConfig()
    if model.input_shape is None:
        raise ValueError("model.input_shape must be set before quantization")
    calibration_images = np.asarray(calibration_images, dtype=np.float32)
    if calibration_images.ndim != 4:
        raise ValueError("calibration_images must be NHWC")
    if calibration_images.shape[0] == 0:
        raise ValueError("calibration set is empty")

    folded = fold_model(model)
    folded.eval()
    layers = list(folded.layers)

    # ---------------------------------------------------------------- plan
    # Group float layers into deployable units: (conv|dense)[+relu], pool,
    # flatten, standalone relu.  Softmax at the tail is dropped (argmax of the
    # logits is unaffected, as in deployed classifiers).
    plan: List[Tuple[str, List]] = []
    i = 0
    while i < len(layers):
        layer = layers[i]
        nxt = layers[i + 1] if i + 1 < len(layers) else None
        if isinstance(layer, (Conv2D, Dense)):
            if config.fuse_relu and isinstance(nxt, ReLU):
                plan.append(("mac_relu", [layer, nxt]))
                i += 2
            else:
                plan.append(("mac", [layer]))
                i += 1
        elif isinstance(layer, MaxPool2D):
            plan.append(("max_pool", [layer]))
            i += 1
        elif isinstance(layer, AvgPool2D):
            plan.append(("avg_pool", [layer]))
            i += 1
        elif isinstance(layer, Flatten):
            plan.append(("flatten", [layer]))
            i += 1
        elif isinstance(layer, ReLU):
            plan.append(("relu", [layer]))
            i += 1
        elif isinstance(layer, Softmax):
            if i != len(layers) - 1:
                raise ValueError("Softmax is only supported as the final layer")
            i += 1
        elif isinstance(layer, Dropout):
            i += 1
        else:
            raise TypeError(f"layer type {type(layer).__name__} is not supported by PTQ")

    # ---------------------------------------------------------------- calibration
    input_observer = _make_observer(config)
    input_observer.observe(calibration_images)
    input_params = input_observer.compute_params()

    group_observers = [_make_observer(config) for _ in plan]
    batch = config.calibration_batch_size
    for start in range(0, calibration_images.shape[0], batch):
        x = calibration_images[start : start + batch]
        for observer, (kind, group) in zip(group_observers, plan):
            for float_layer in group:
                x = float_layer.forward(x)
            observer.observe(x)

    # ---------------------------------------------------------------- build q-layers
    qlayers: List[QLayer] = []
    current_params = input_params
    for observer, (kind, group) in zip(group_observers, plan):
        if kind in ("mac", "mac_relu"):
            float_layer = group[0]
            fused_relu = kind == "mac_relu"
            output_params = observer.compute_params()
            if isinstance(float_layer, Conv2D):
                q_weights, weight_params = _quantize_conv_weights(float_layer)
                bias = float_layer.bias.value if float_layer.bias is not None else None
                q_bias = _quantize_bias(bias, current_params.scalar_scale(), weight_params.scale)
                qlayers.append(
                    QConv2D(
                        name=float_layer.name,
                        weights=q_weights,
                        bias=q_bias,
                        input_params=current_params,
                        weight_params=weight_params,
                        output_params=output_params,
                        stride=float_layer.stride,
                        padding=float_layer.padding,
                        fused_relu=fused_relu,
                    )
                )
            else:
                q_weights, weight_params = _quantize_dense_weights(float_layer)
                bias = float_layer.bias.value if float_layer.bias is not None else None
                q_bias = _quantize_bias(bias, current_params.scalar_scale(), weight_params.scale)
                qlayers.append(
                    QDense(
                        name=float_layer.name,
                        weights=q_weights,
                        bias=q_bias,
                        input_params=current_params,
                        weight_params=weight_params,
                        output_params=output_params,
                        fused_relu=fused_relu,
                    )
                )
            current_params = output_params
        elif kind == "max_pool":
            pool = group[0]
            qlayers.append(QMaxPool2D(pool.name, current_params, pool.kernel_size, pool.stride))
        elif kind == "avg_pool":
            pool = group[0]
            qlayers.append(QAvgPool2D(pool.name, current_params, pool.kernel_size, pool.stride))
        elif kind == "flatten":
            qlayers.append(QFlatten(group[0].name, current_params))
        elif kind == "relu":
            qlayers.append(QReLU(group[0].name, current_params))
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown plan kind {kind}")

    qmodel = QuantizedModel(
        layers=qlayers,
        input_params=input_params,
        input_shape=model.input_shape,
        n_classes=0,
        name=name or model.name,
    )
    qmodel.n_classes = int(qmodel.layer_shapes()[-1][2][-1])
    return qmodel
