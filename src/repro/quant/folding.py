"""Graph folding utilities applied before quantization.

Deployment toolchains fold training-only structure into the inference graph:
batch-norm parameters are folded into the preceding convolution and dropout
layers are removed.  The paper's framework additionally "offloads model
structure parameter operations from runtime to compile time"; folding is the
first step of that specialisation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.norm import BatchNorm
from repro.nn.model import Sequential


def fold_batchnorm(conv: Conv2D, bn: BatchNorm) -> Conv2D:
    """Fold a BatchNorm layer into the preceding convolution.

    Returns a *new* convolution whose weights/bias reproduce conv+BN exactly
    at inference time: ``w' = w * gamma / sqrt(var + eps)``,
    ``b' = (b - mean) * gamma / sqrt(var + eps) + beta``.
    """
    if conv.out_channels != bn.num_features:
        raise ValueError("BatchNorm feature count does not match conv output channels")
    gamma = bn.gamma.value
    beta = bn.beta.value
    mean = bn.running_mean
    var = bn.running_var
    scale = gamma / np.sqrt(var + bn.eps)

    folded = Conv2D(
        conv.in_channels,
        conv.out_channels,
        kernel_size=conv.kernel_size,
        stride=conv.stride,
        padding=conv.padding,
        use_bias=True,
        name=conv.name,
    )
    folded.weight.value = (conv.weight.value * scale[:, None, None, None]).astype(np.float32)
    base_bias = conv.bias.value if conv.bias is not None else np.zeros(conv.out_channels, np.float32)
    folded.bias.value = ((base_bias - mean) * scale + beta).astype(np.float32)
    return folded


def fold_model(model: Sequential) -> Sequential:
    """Return an inference-ready copy of ``model``: BN folded, dropout removed."""
    folded_layers: List[Layer] = []
    i = 0
    layers = list(model.layers)
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, Dropout):
            i += 1
            continue
        nxt = layers[i + 1] if i + 1 < len(layers) else None
        if isinstance(layer, Conv2D) and isinstance(nxt, BatchNorm):
            folded_layers.append(fold_batchnorm(layer, nxt))
            i += 2
            continue
        folded_layers.append(layer)
        i += 1
    folded = Sequential(folded_layers, input_shape=model.input_shape, name=model.name)
    folded.eval()
    return folded
