"""CMSIS-NN-style int8 post-training quantization.

The scheme mirrors what TFLite/CMSIS-NN deployments use (and what the paper's
"8-bit post-training quantization" refers to):

* activations: per-tensor *affine* int8 (scale + zero point), ranges observed
  on a calibration subset;
* weights: per-output-channel *symmetric* int8 (zero point fixed at 0);
* biases: int32 with scale ``input_scale * weight_scale``;
* accumulation: int32; requantization to the output scale through a
  fixed-point multiplier + shift (``arm_nn_requantize``).
"""

from repro.quant.schemes import (
    QuantizationParams,
    dequantize,
    quantize,
    params_from_minmax,
    symmetric_params_from_absmax,
)
from repro.quant.observers import MinMaxObserver, PercentileObserver
from repro.quant.requantize import (
    FixedPointMultiplier,
    quantize_multiplier,
    requantize,
    requantize_float,
    saturate_int8,
)
from repro.quant.qtensor import QTensor
from repro.quant.qlayers import (
    QAvgPool2D,
    QConv2D,
    QDense,
    QFlatten,
    QLayer,
    QMaxPool2D,
    QReLU,
)
from repro.quant.qmodel import QuantizedModel
from repro.quant.quantizer import PTQConfig, quantize_model
from repro.quant.serialization import load_quantized_model, save_quantized_model

__all__ = [
    "QuantizationParams",
    "quantize",
    "dequantize",
    "params_from_minmax",
    "symmetric_params_from_absmax",
    "MinMaxObserver",
    "PercentileObserver",
    "FixedPointMultiplier",
    "quantize_multiplier",
    "requantize",
    "requantize_float",
    "saturate_int8",
    "QTensor",
    "QLayer",
    "QConv2D",
    "QDense",
    "QMaxPool2D",
    "QAvgPool2D",
    "QReLU",
    "QFlatten",
    "QuantizedModel",
    "PTQConfig",
    "quantize_model",
    "save_quantized_model",
    "load_quantized_model",
]
