"""Quantized layer executors built on the CMSIS-NN-style kernels."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.accumulate import exact_matmul_dtype
from repro.kernels.activations_s8 import relu_s8
from repro.kernels.conv_s8 import convolve_s8
from repro.kernels.cycle_counters import CycleCounter
from repro.kernels.fully_connected_s8 import fully_connected_s8
from repro.kernels.pooling_s8 import avg_pool_s8, max_pool_s8
from repro.nn.functional import conv_output_shape
from repro.quant.schemes import QuantizationParams

#: Global toggle for dedicated per-layer im2col scratch buffers (see
#: :func:`set_im2col_scratch`).
_IM2COL_SCRATCH_ENABLED = False


def set_im2col_scratch(enabled: bool) -> bool:
    """En/disable dedicated im2col scratch buffers; returns the previous setting.

    With this on, every conv layer keeps a preallocated im2col destination
    and repeated same-shaped forward passes (the serving and evaluation hot
    paths) run allocation-free in the im2col step.  It is OFF by default:
    measured on the serving benchmark, NumPy's caching allocator already
    recycles the just-freed patch buffer of one layer into the next layer's
    allocations, and pinning a dedicated buffer per layer fragments that
    recycling and runs a few percent *slower* once the working set outgrows
    the cache (`benchmarks/bench_serving.py` records both modes).  The
    toggle remains for experimentation on hosts with different allocator or
    cache behaviour.

    The buffers are per-layer, so a model instance must not run ``forward``
    from multiple threads concurrently while enabled -- the serving
    scheduler executes on a single core thread (worker replicas are separate
    processes), so this holds throughout the toolkit.
    """
    global _IM2COL_SCRATCH_ENABLED
    previous = _IM2COL_SCRATCH_ENABLED
    _IM2COL_SCRATCH_ENABLED = bool(enabled)
    return previous


def im2col_scratch_enabled() -> bool:
    """Whether conv layers reuse their im2col scratch buffers."""
    return _IM2COL_SCRATCH_ENABLED


class QLayer:
    """Base class of quantized layers.

    A quantized layer knows its input and output quantization parameters and
    executes on int8 tensors.  Layers that perform MACs (conv, dense) accept a
    ``weight_mask`` implementing the paper's operand skipping.
    """

    def __init__(self, name: str, input_params: QuantizationParams, output_params: QuantizationParams):
        self.name = name
        self.input_params = input_params
        self.output_params = output_params

    #: Whether the layer performs multiply-accumulate work.
    is_mac_layer: bool = False
    #: Whether the layer is a convolution (the target of the paper's skipping).
    is_conv: bool = False

    def forward(
        self,
        x: np.ndarray,
        weight_mask: Optional[np.ndarray] = None,
        counter: Optional[CycleCounter] = None,
    ) -> np.ndarray:
        """Execute the layer on an int8 input."""
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given the per-sample input shape."""
        raise NotImplementedError

    def macs(self, input_shape: Tuple[int, ...]) -> int:
        """MAC count for one sample (0 for non-MAC layers)."""
        return 0

    def weight_nbytes(self) -> int:
        """Bytes of parameter data (weights + biases) the layer stores."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.__class__.__name__}(name={self.name!r})"


class QConv2D(QLayer):
    """Quantized convolution with optional fused ReLU.

    Parameters
    ----------
    weights:
        int8 OHWI weights ``(Cout, kh, kw, Cin)``.
    bias:
        int32 per-channel bias.
    weight_params:
        Per-output-channel symmetric weight quantization parameters.
    stride, padding:
        Geometry.
    fused_relu:
        Clamp outputs at the output zero point (the deployed form of
        conv+ReLU).
    """

    is_mac_layer = True
    is_conv = True

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: Optional[np.ndarray],
        input_params: QuantizationParams,
        weight_params: QuantizationParams,
        output_params: QuantizationParams,
        stride: Tuple[int, int],
        padding: Tuple[int, int],
        fused_relu: bool = False,
    ):
        super().__init__(name, input_params, output_params)
        self.weights = np.asarray(weights, dtype=np.int8)
        self.bias = None if bias is None else np.asarray(bias, dtype=np.int64)
        self.weight_params = weight_params
        self.stride = tuple(stride)
        self.padding = tuple(padding)
        self.fused_relu = bool(fused_relu)

        in_scale = input_params.scalar_scale()
        out_scale = output_params.scalar_scale()
        self.output_multipliers = (in_scale * self.weight_params.scale / out_scale).astype(np.float64)
        self.activation_min = output_params.scalar_zero_point() if fused_relu else -128
        self.activation_max = 127
        #: im2col scratch reused across same-shaped batches (never pickled).
        self._cols_scratch: Optional[np.ndarray] = None

    def __getstate__(self):
        # The scratch buffer is transient working memory; keeping it out of
        # the pickle stream keeps serialized models small and -- crucially --
        # keeps content fingerprints (which hash the pickle bytes) identical
        # before and after a forward pass.
        state = self.__dict__.copy()
        state["_cols_scratch"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Layers pickled before the scratch buffer existed restore without it.
        self.__dict__.setdefault("_cols_scratch", None)

    def _cols_buffer(self, x_shape: Tuple[int, ...]) -> Optional[np.ndarray]:
        """The reusable im2col destination for this input shape (or ``None``)."""
        if not _IM2COL_SCRATCH_ENABLED:
            return None
        n, in_h, in_w, _ = x_shape
        out_h, out_w = conv_output_shape(in_h, in_w, self.kernel_size, self.stride, self.padding)
        shape = (n, out_h, out_w, self.operands_per_channel)
        dtype = exact_matmul_dtype(self.operands_per_channel)
        buf = self._cols_scratch
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._cols_scratch = buf
        return buf

    @property
    def out_channels(self) -> int:
        """Number of output channels."""
        return int(self.weights.shape[0])

    @property
    def kernel_size(self) -> Tuple[int, int]:
        """Spatial kernel size."""
        return int(self.weights.shape[1]), int(self.weights.shape[2])

    @property
    def in_channels(self) -> int:
        """Number of input channels."""
        return int(self.weights.shape[3])

    @property
    def operands_per_channel(self) -> int:
        """K = kh*kw*Cin, the number of operands of each output-channel accumulation."""
        return int(np.prod(self.weights.shape[1:]))

    def forward(self, x, weight_mask=None, counter=None):
        return convolve_s8(
            x,
            self.weights,
            self.bias,
            input_zero_point=self.input_params.scalar_zero_point(),
            output_zero_point=self.output_params.scalar_zero_point(),
            output_multipliers=self.output_multipliers,
            stride=self.stride,
            padding=self.padding,
            activation_min=self.activation_min,
            activation_max=self.activation_max,
            weight_mask=weight_mask,
            counter=counter,
            section=self.name,
            cols_out=self._cols_buffer(np.asarray(x).shape),
        )

    def output_shape(self, input_shape):
        in_h, in_w, in_c = input_shape
        if in_c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} channels, got {in_c}")
        out_h, out_w = conv_output_shape(in_h, in_w, self.kernel_size, self.stride, self.padding)
        return (out_h, out_w, self.out_channels)

    def macs(self, input_shape):
        out_h, out_w, out_c = self.output_shape(input_shape)
        return out_h * out_w * out_c * self.operands_per_channel

    def weight_nbytes(self):
        bias_bytes = 0 if self.bias is None else self.bias.size * 4
        return int(self.weights.nbytes + bias_bytes)


class QDense(QLayer):
    """Quantized fully-connected layer with optional fused ReLU."""

    is_mac_layer = True

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: Optional[np.ndarray],
        input_params: QuantizationParams,
        weight_params: QuantizationParams,
        output_params: QuantizationParams,
        fused_relu: bool = False,
    ):
        super().__init__(name, input_params, output_params)
        self.weights = np.asarray(weights, dtype=np.int8)
        self.bias = None if bias is None else np.asarray(bias, dtype=np.int64)
        self.weight_params = weight_params
        self.fused_relu = bool(fused_relu)

        in_scale = input_params.scalar_scale()
        out_scale = output_params.scalar_scale()
        self.output_multipliers = (in_scale * self.weight_params.scale / out_scale).astype(np.float64)
        self.activation_min = output_params.scalar_zero_point() if fused_relu else -128
        self.activation_max = 127

    @property
    def in_features(self) -> int:
        """Input feature count."""
        return int(self.weights.shape[0])

    @property
    def out_features(self) -> int:
        """Output feature count."""
        return int(self.weights.shape[1])

    def forward(self, x, weight_mask=None, counter=None):
        return fully_connected_s8(
            x,
            self.weights,
            self.bias,
            input_zero_point=self.input_params.scalar_zero_point(),
            output_zero_point=self.output_params.scalar_zero_point(),
            output_multipliers=self.output_multipliers,
            activation_min=self.activation_min,
            activation_max=self.activation_max,
            weight_mask=weight_mask,
            counter=counter,
            section=self.name,
        )

    def output_shape(self, input_shape):
        (in_features,) = input_shape
        if in_features != self.in_features:
            raise ValueError(f"{self.name}: expected {self.in_features} features, got {in_features}")
        return (self.out_features,)

    def macs(self, input_shape):
        return self.in_features * self.out_features

    def weight_nbytes(self):
        bias_bytes = 0 if self.bias is None else self.bias.size * 4
        return int(self.weights.nbytes + bias_bytes)


class QMaxPool2D(QLayer):
    """Quantized max pooling (quantization parameters pass through unchanged)."""

    def __init__(self, name: str, params: QuantizationParams, kernel: Tuple[int, int], stride: Tuple[int, int]):
        super().__init__(name, params, params)
        self.kernel = tuple(kernel)
        self.stride = tuple(stride)

    def forward(self, x, weight_mask=None, counter=None):
        return max_pool_s8(x, self.kernel, self.stride, counter=counter, section=self.name)

    def output_shape(self, input_shape):
        in_h, in_w, c = input_shape
        out_h, out_w = conv_output_shape(in_h, in_w, self.kernel, self.stride, (0, 0))
        return (out_h, out_w, c)


class QAvgPool2D(QLayer):
    """Quantized average pooling."""

    def __init__(self, name: str, params: QuantizationParams, kernel: Tuple[int, int], stride: Tuple[int, int]):
        super().__init__(name, params, params)
        self.kernel = tuple(kernel)
        self.stride = tuple(stride)

    def forward(self, x, weight_mask=None, counter=None):
        return avg_pool_s8(x, self.kernel, self.stride, counter=counter, section=self.name)

    def output_shape(self, input_shape):
        in_h, in_w, c = input_shape
        out_h, out_w = conv_output_shape(in_h, in_w, self.kernel, self.stride, (0, 0))
        return (out_h, out_w, c)


class QReLU(QLayer):
    """Standalone quantized ReLU (only used when fusion is not possible)."""

    def __init__(self, name: str, params: QuantizationParams):
        super().__init__(name, params, params)

    def forward(self, x, weight_mask=None, counter=None):
        return relu_s8(x, self.input_params.scalar_zero_point(), counter=counter, section=self.name)

    def output_shape(self, input_shape):
        return tuple(input_shape)


class QFlatten(QLayer):
    """Flatten bridging conv and dense stages (pure reshape)."""

    def __init__(self, name: str, params: QuantizationParams):
        super().__init__(name, params, params)

    def forward(self, x, weight_mask=None, counter=None):
        return x.reshape(x.shape[0], -1)

    def output_shape(self, input_shape):
        flat = 1
        for dim in input_shape:
            flat *= int(dim)
        return (flat,)
