"""Command-line interface to the reproduction toolkit.

Usage (also installed as the ``repro-tinyml`` console script)::

    python -m repro.cli train     --model lenet --out runs/lenet --samples 3000 --epochs 5
    python -m repro.cli quantize  --model-path runs/lenet --out runs/lenet_q
    python -m repro.cli explore   --qmodel runs/lenet_q --out runs/lenet_dse.json --loss 0.05 \
                                  --strategy exhaustive --resume runs/cache
    python -m repro.cli codegen   --qmodel runs/lenet_q --config runs/lenet_dse.config.json --out runs/lenet.c
    python -m repro.cli verify-codegen --qmodel runs/lenet_q --taus 0.0,0.01,0.05
    python -m repro.cli deploy    --qmodel runs/lenet_q --config runs/lenet_dse.config.json --engine ataman
    python -m repro.cli serve     --qmodel runs/lenet_q --config runs/lenet_dse.json --policy queue-depth
    python -m repro.cli reproduce --table1 --table2 --figure2 --claims

The ``--strategy``, ``--engine``, ``--board`` and ``--policy`` choices are
populated from the plugin registries (:mod:`repro.registry`), so registered
extensions show up automatically.  ``--resume DIR`` points the
explore/codegen/deploy/serve commands at a persistent artifact store: stages
whose configuration and inputs are unchanged are served from the cache
instead of recomputed.

Every command works entirely offline: the dataset is the deterministic
synthetic CIFAR-10 surrogate, regenerated from its seed on demand.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.core import ApproxConfig, DSEConfig
from repro.data import load_synthetic_cifar10, train_val_test_split
from repro.evaluation.reports import format_table
from repro.isa import get_board
from repro.mcu import deploy as mcu_deploy
from repro.models import build_model, list_models
from repro.nn import Adam, Trainer, load_model, save_model
from repro.quant import load_quantized_model, quantize_model, save_quantized_model
from repro.registry import BOARDS, ENGINES, FRONTS, POLICIES, SEARCH_STRATEGIES
from repro.utils.logging import configure_cli_verbosity
from repro.utils.serialization import load_json, save_json
from repro.workflow import (
    ArtifactStore,
    CalibrateStage,
    CascadeStage,
    CodegenStage,
    DSEStage,
    Experiment,
    ServeStage,
    SignificanceStage,
    UnpackStage,
    VerifyStage,
)


def _dataset_split(samples: int, seed: int, calibration: int = 128):
    dataset = load_synthetic_cifar10(samples, seed=seed)
    return train_val_test_split(dataset, val_fraction=0.0, test_fraction=0.2,
                                calibration_size=calibration, rng=seed)


def _store(args: argparse.Namespace) -> Optional[ArtifactStore]:
    """The persistent artifact store behind ``--resume`` (None when unset)."""
    resume = getattr(args, "resume", None)
    return ArtifactStore(resume) if resume else None


def _report_cache(result) -> None:
    if result.cached_stages:
        print(f"served from artifact store: {', '.join(result.cached_stages)}")


# --------------------------------------------------------------------------- commands
def cmd_train(args: argparse.Namespace) -> int:
    """Train a model on the synthetic dataset and save it."""
    split = _dataset_split(args.samples, args.seed)
    model = build_model(args.model, input_shape=split.train.image_shape,
                        n_classes=split.n_classes, rng=args.seed)
    trainer = Trainer(model, Adam(model.parameters(), lr=args.lr), rng=args.seed + 1)
    history = trainer.fit(split.train.images, split.train.labels, epochs=args.epochs,
                          batch_size=args.batch_size,
                          x_val=split.test.images[:256], y_val=split.test.labels[:256])
    path = save_model(model, args.out)
    final_acc = history.val_accuracy[-1] if history.val_accuracy else float("nan")
    print(f"trained {args.model}: val accuracy {final_acc:.3f}; saved to {path}")
    return 0


def cmd_quantize(args: argparse.Namespace) -> int:
    """Quantize a saved float model with a calibration subset."""
    model = load_model(args.model_path)
    split = _dataset_split(args.samples, args.seed, calibration=args.calibration)
    qmodel = quantize_model(model, split.calibration.images)
    accuracy = qmodel.evaluate_accuracy(split.test.images[:256], split.test.labels[:256])
    path = save_quantized_model(qmodel, args.out)
    print(f"quantized model accuracy {accuracy:.3f}; saved to {path}")
    print(qmodel.summary())
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Run the ATAMAN experiment (unpack/calibrate/significance/DSE) on a quantized model."""
    qmodel = load_quantized_model(args.qmodel)
    split = _dataset_split(args.samples, args.seed)
    board = get_board(args.board)
    taus = [float(t) for t in args.taus.split(",")] if args.taus else None
    strategy_options = {}
    if args.strategy == "greedy":
        strategy_options["max_accuracy_loss"] = args.loss
    dse_config = DSEConfig(
        tau_values=taus,
        tau_step=args.tau_step,
        tau_max=args.tau_max,
        max_eval_samples=args.eval_samples,
        n_workers=args.workers,
        strategy=args.strategy,
        strategy_options=strategy_options,
    )
    experiment = Experiment.from_quantized(
        qmodel,
        split.calibration.images,
        split.test.images,
        split.test.labels,
        board=board,
        dse_config=dse_config,
        store=_store(args),
    )
    result = experiment.run()
    _report_cache(result)

    rows = [p.as_dict() for p in result.dse.pareto_points()]
    print(format_table(rows, columns=["label", "accuracy", "conv_mac_reduction", "total_macs"],
                       title="Pareto-optimal designs"))
    out = Path(args.out)
    save_json(out, {"baseline_accuracy": result.baseline_accuracy, "points": result.dse.as_table()})
    design = result.select(args.loss)
    if design is None:
        print(f"no design satisfies an accuracy-loss budget of {args.loss}")
        return 1
    config_path = out.with_suffix(".config.json")
    design.config.save(config_path)
    print(f"selected design within {args.loss:.0%} loss: {design.config.taus()}")
    print(f"DSE table written to {out}; selected config written to {config_path}")
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    """Emit the unpacked (approximate) kernel code for a saved configuration."""
    qmodel = load_quantized_model(args.qmodel)
    split = _dataset_split(args.samples, args.seed)
    approx_config = ApproxConfig.load(args.config) if args.config else None
    experiment = Experiment(
        [
            UnpackStage(),
            CalibrateStage(),
            SignificanceStage(),
            CodegenStage(approx_config=approx_config),
        ],
        inputs={"qmodel": qmodel, "calibration_images": split.calibration.images},
        store=_store(args),
    )
    result = experiment.run()
    _report_cache(result)
    code = result["code"]
    Path(args.out).parent.mkdir(parents=True, exist_ok=True)
    Path(args.out).write_text(code, encoding="utf-8")
    print(f"wrote {len(code.splitlines())} lines of generated kernel code to {args.out}")
    return 0


def _print_lowered_coverage(design) -> None:
    """One-line whole-graph lowering coverage summary of a verified design."""
    if design.fully_lowered:
        print(
            f"lowered coverage: 100% ({design.lowered_layers}/{design.total_layers} "
            "layers, no analytic fallback)"
        )
    else:
        unlowered = design.calibration.unlowered_layers
        print(
            f"lowered coverage: {design.lowered_layers}/{design.total_layers} layers "
            f"(library-kernel fallback: {', '.join(unlowered) or 'unknown'})"
        )


def _calibrate_cost_model(qmodel, unpacked, base, masks=None) -> bool:
    """Apply trace-derived ``UNPACKED`` overrides; print the before/after table.

    ``base`` is the pre-override :class:`~repro.vm.verify.CalibrationReport`
    whose traced/analytic ratios drive the overrides (``masks`` is the design
    it was computed on).  The overrides stay active in this process (the
    point of ``--calibrate-cost-model``: every analytic estimate printed
    afterwards uses the calibrated parameters).  Returns whether the
    post-override ratio landed within the +-5% band.
    """
    from repro.isa.cost_model import ExecutionStyle, apply_cost_calibration
    from repro.vm import calibrate_cycle_model, lower_model

    overrides = base.suggested_cost_overrides()
    apply_cost_calibration(base, ExecutionStyle.UNPACKED)
    program = lower_model(qmodel, unpacked=unpacked, masks=masks)
    after = calibrate_cycle_model(qmodel, program, masks=masks, label=base.label)
    after_by_layer = {layer.name: layer for layer in after.layers}
    rows = []
    for layer in base.layers:
        recalibrated = after_by_layer.get(layer.name)
        rows.append(
            {
                "layer": layer.name,
                "class": layer.op_class,
                "traced_kcycles": f"{layer.traced_cycles / 1e3:.1f}",
                "ratio before": f"{layer.ratio:.3f}",
                "ratio after": f"{recalibrated.ratio:.3f}" if recalibrated else "-",
            }
        )
    print(format_table(rows, title="cost-model calibration (traced/analytic per layer)"))
    print(
        "applied UNPACKED overrides: "
        + ", ".join(f"{name}={value:.3f}" for name, value in sorted(overrides.items()))
    )
    within = abs(after.ratio - 1.0) <= 0.05
    print(
        f"overall traced/analytic ratio: {base.ratio:.3f} -> {after.ratio:.3f} "
        f"({'within' if within else 'OUTSIDE'} +-5%)"
    )
    return within


def cmd_verify_codegen(args: argparse.Namespace) -> int:
    """Differentially verify the generated code through the ISA virtual machine."""
    qmodel = load_quantized_model(args.qmodel)
    split = _dataset_split(args.samples, args.seed)
    taus = [float(t) for t in args.taus.split(",")] if args.taus else [0.01, 0.05]
    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    if not modes:
        print("error: --modes must name at least one VM execution mode", file=sys.stderr)
        return 2
    experiment = Experiment(
        [
            UnpackStage(),
            CalibrateStage(),
            SignificanceStage(),
            VerifyStage(taus=taus, n_samples=args.n_verify, modes=modes),
        ],
        inputs={
            "qmodel": qmodel,
            "calibration_images": split.calibration.images,
            "eval_images": split.test.images,
        },
        store=_store(args),
    )
    result = experiment.run()
    _report_cache(result)
    report = result["verification"]
    print(format_table(
        report.summary_rows(),
        title=f"differential verification of {qmodel.name} "
              f"({len(report.designs)} designs x {len(modes)} VM modes)",
    ))
    exact = next((d for d in report.designs if not d.taus), report.designs[0])
    _print_lowered_coverage(exact)
    if args.calibrate_cost_model:
        _calibrate_cost_model(qmodel, result["unpacked"], exact.calibration)
    if report.all_match:
        print(f"all designs bit-identical to the kernel path on {args.n_verify} samples")
        return 0
    print("MISMATCH: the generated code diverges from the kernel path")
    return 1


def cmd_deploy(args: argparse.Namespace) -> int:
    """Deploy a quantized model with a chosen engine on a board model."""
    qmodel = load_quantized_model(args.qmodel)
    split = _dataset_split(args.samples, args.seed)
    board = get_board(args.board)
    engine_cls = ENGINES.resolve(args.engine)

    if getattr(engine_cls, "supports_approx", False):
        experiment = Experiment(
            [UnpackStage(), CalibrateStage(), SignificanceStage()],
            inputs={"qmodel": qmodel, "calibration_images": split.calibration.images},
            store=_store(args),
        )
        result = experiment.run()
        _report_cache(result)
        config = ApproxConfig.load(args.config) if args.config else ApproxConfig.exact(qmodel.name)
        if args.calibrate_cost_model:
            # Calibrate the analytic UNPACKED model against the VM trace of
            # the deployed design before the engine estimates anything: the
            # overrides stay active, so the deployment table below reports
            # trace-calibrated cycles/latency.
            from repro.vm import calibrate_cycle_model, lower_model

            masks = (
                None
                if config.is_exact
                else config.build_masks(result["significance"], unpacked=result["unpacked"])
            )
            program = lower_model(qmodel, unpacked=result["unpacked"], masks=masks)
            base = calibrate_cycle_model(
                qmodel, program, masks=masks, label=config.label or "deploy"
            )
            _calibrate_cost_model(qmodel, result["unpacked"], base, masks=masks)
        engine = engine_cls(qmodel, config=config, significance=result["significance"],
                            unpacked=result["unpacked"])
    else:
        if args.calibrate_cost_model:
            print(
                f"error: --calibrate-cost-model needs an unpacked-style engine "
                f"(got {args.engine!r}, which has no VM-lowerable design)",
                file=sys.stderr,
            )
            return 2
        engine = engine_cls(qmodel)

    report = mcu_deploy(engine, board, split.test.images[:args.eval_samples],
                        split.test.labels[:args.eval_samples], model_name=qmodel.name)
    print(format_table([report.as_dict()],
                       columns=["engine", "model", "top1_accuracy", "latency_ms", "flash_kb",
                                "ram_kb", "mac_ops", "energy_mj", "fits"],
                       title=f"deployment on {board.name}"))
    return 0 if report.fits else 1


def _smoke_load_ramp(server_url: str, images: np.ndarray, n_requests: int,
                     priority: str = "standard"):
    """Drive a trickle -> burst -> trickle load ramp through an HTTP front.

    The trickle phases keep the queue near-empty (the policy should serve the
    accurate end of the Pareto front); the concurrent burst spikes the queue
    depth so an adaptive policy escalates to an aggressive skip configuration
    -- the switches show up in the metrics summary.  ``priority`` tags every
    request with one class, or cycles through all three with ``"mixed"``.

    Returns ``{priority: (answered, issued)}`` over the classes exercised.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.serving import PRIORITIES, HTTPClient

    import threading

    client = HTTPClient(server_url, timeout_s=120.0)
    cycle = list(PRIORITIES) if priority == "mixed" else [priority]
    counts = {name: [0, 0] for name in cycle}  # answered, issued
    counts_lock = threading.Lock()  # burst workers update concurrently

    def call(i: int) -> None:
        name = cycle[i % len(cycle)]
        with counts_lock:
            counts[name][1] += 1
        body = client.predict(images[i % len(images)], priority=name)
        with counts_lock:
            counts[name][0] += len(body["classes"])

    # Two trickle phases bracket the burst; small -N runs shrink the phases
    # so exactly n_requests are issued.
    trickle = min(max(4, n_requests // 10), n_requests // 3)
    burst = n_requests - 2 * trickle
    index = 0
    for _ in range(trickle):
        call(index)
        index += 1
    # The burst runs through a client thread pool: tens of simultaneous
    # HTTP connections, exactly the traffic the fronts differ on (and deep
    # enough to spike the queue so an adaptive policy visibly escalates).
    with ThreadPoolExecutor(max_workers=max(burst, 1)) as pool:
        for _ in pool.map(call, range(index, index + burst)):
            pass
    index += burst
    for _ in range(trickle):
        call(index)
        index += 1
    return {name: tuple(pair) for name, pair in counts.items()}


def _fleet_smoke(args: argparse.Namespace, fleet, split) -> int:
    """Drive the load ramp through the router and audit the federation.

    Prints the greppable fleet summary: per-replica completion counts, one
    exposition sample per ``replica=`` label, the federated sum check (the
    fleet series must equal the sum of the per-replica series, verified
    through the exposition parser), the traced router->replica hop and the
    health verdict.
    """
    from repro.obs.exposition import parse_prometheus, sum_samples
    from repro.serving import HTTPClient

    counts = _smoke_load_ramp(fleet.url, split.test.images, args.smoke, priority=args.priority)
    client = HTTPClient(fleet.url, timeout_s=120.0)
    # One extra traced round trip: its X-Trace-Id must surface the router's
    # route span AND the replica's pipeline stages in the merged /trace.
    _, response_headers = client.predict_with_headers(split.test.images[0])
    trace_id = response_headers.get("X-Trace-Id", "")
    spans = client.trace(trace_id)
    span_names = sorted({span["name"] for span in spans})
    span_sources = sorted({span["replica"] for span in spans})
    fed_text = client.metrics(format="prometheus")
    rollup = client.metrics()
    health = client.health_detail() or {}

    fleet_completed = sum_samples(parse_prometheus(fed_text), "repro_requests_completed_total")
    replica_completed = 0.0
    for replica in fleet.replicas:
        text = HTTPClient(replica.url, timeout_s=30.0).metrics(format="prometheus")
        replica_completed += sum_samples(
            parse_prometheus(text), "repro_requests_completed_total"
        )
        sample_line = next(
            (line for line in text.splitlines()
             if line.startswith("repro_requests_completed_total{")),
            "(no completions)",
        )
        print(f'exposition replica="{replica.name}": {sample_line}')

    answered = sum(done for done, _ in counts.values())
    fleet_stats = rollup.get("fleet", {})
    for name, (done, issued) in counts.items():
        stats = fleet_stats.get("per_priority", {}).get(name, {})
        print(f"priority {name}: answered {done}/{issued}   shed {stats.get('shed', 0)}")
    print(f"answered: {answered}/{args.smoke}")
    for name, snapshot in sorted(rollup.get("replicas", {}).items()):
        print(f"replica {name}: completed {snapshot.get('requests_completed', 0)}   "
              f"batches {snapshot.get('batches', 0)}")
    sums_ok = fleet_completed == replica_completed and fleet_completed > 0
    verdict = "ok" if sums_ok else "MISMATCH"
    print(f"federated sum check: {verdict} "
          f"(fleet {fleet_completed:g} == replicas {replica_completed:g})")
    print(f"X-Trace-Id: {trace_id}")
    print(f"fleet trace: {len(spans)} spans   stages {','.join(span_names)}   "
          f"sources {','.join(span_sources)}")
    print(f"healthz: {health.get('status', 'unreachable')} "
          f"({health.get('replicas_up', 0)}/{health.get('replicas_total', 0)} replicas up)")
    trace_ok = {"route", "queue-wait", "execute"} <= set(span_names)
    return 0 if (answered == args.smoke and sums_ok and trace_ok) else 1


def _serve_fleet(args: argparse.Namespace, deployment, split, qmodel,
                 cascade_calibration=None, tenant_table=None) -> int:
    """Serve through a router + N independent replica server processes."""
    import json as _json
    import time as _time

    from repro.serving.fleet import Fleet, ReplicaConfig

    policy_options = {}
    if args.depth_per_level is not None:
        if args.policy != "queue-depth":
            raise SystemExit(
                f"--depth-per-level only applies to --policy queue-depth (got {args.policy!r})"
            )
        if args.extra_models:
            raise SystemExit(
                "serve: --depth-per-level builds one shared policy instance per replica "
                "and cannot be combined with --model in fleet mode"
            )
        policy_options["depth_per_level"] = args.depth_per_level
    if args.policy == "cascade":
        # The calibration artifact is plain dataclasses: it pickles into
        # each replica process along with the rest of the config.
        policy_options["calibration"] = cascade_calibration
    config = ReplicaConfig(
        policy=args.policy,
        policy_options=policy_options,
        front=args.front,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        n_workers=args.shard_workers,
        profile_every=args.profile_every,
        host=args.host,
        tenants=tenant_table.as_dicts() if tenant_table is not None else None,
    )
    fleet = Fleet(
        deployment,
        n_replicas=args.replicas,
        config=config,
        host=args.host,
        port=0 if args.smoke is not None else args.port,
        health_interval_s=0.5,
    )
    fleet.start()
    print(f"fleet: router + {args.replicas} replicas ({args.front} front) at {fleet.url}")
    try:
        if args.smoke is not None:
            return _fleet_smoke(args, fleet, split)
        print(
            f"serving {qmodel.name} across the fleet "
            "(POST /predict, GET /metrics, /trace, /events, /healthz, /replicas); "
            "Ctrl-C to stop"
        )
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            print("\nshutting down (draining)")
        return 0
    finally:
        if args.trace_export and fleet.router is not None:
            spans = fleet.router.merged_trace(limit=0)
            with open(args.trace_export, "w", encoding="utf-8") as handle:
                for span in spans:
                    handle.write(_json.dumps(span) + "\n")
            print(f"trace export: {len(spans)} merged spans -> {args.trace_export}")
        fleet.stop()


def _print_cascade_smoke(snapshot, calibration) -> bool:
    """Print the cascade smoke summary; True when the operating point held.

    The greppable verdict line checks the three cascade claims at once: the
    live escalation rate stayed under 50%, the cycles saved against an
    exact-only deployment exceed 25%, and the calibrated operating point
    kept the held-out blended accuracy within the configured budget.
    """
    if calibration is None or calibration.chosen is None:
        print("cascade check: DEGRADED (no cheap level within the accuracy budget)")
        return False
    cascade = snapshot.cascade
    if cascade is None or not cascade["completed"]:
        print("cascade check: DEGRADED (no cascade traffic recorded)")
        return False
    point = calibration.chosen_point
    escalation_pct = 100 * cascade["escalation_rate"]
    saved_pct = 100 * cascade["cycles_saved_frac"]
    print(f"cascade: {cascade['cheap_level']} first, escalate to "
          f"{cascade['exact_level']} below margin {cascade['threshold']:.3f}")
    print(f"escalation rate: {escalation_pct:.1f}% "
          f"({cascade['escalations']}/{cascade['completed']} requests; "
          f"{cascade['suppressed']} kept cheap near their deadline)")
    print(f"cascade cycles saved vs exact-only: {saved_pct:.1f}% "
          f"({cascade['cycles_saved']:,.0f} cycles)")
    proxy = cascade.get("blended_accuracy_proxy")
    if proxy is not None:
        print(f"blended accuracy proxy: {proxy:.3f} "
              f"(held-out blended {point.blended_accuracy:.3f}, "
              f"exact {calibration.exact_accuracy:.3f}, "
              f"budget {calibration.accuracy_budget:g})")
    within_budget = point.within_budget
    ok = cascade["escalation_rate"] < 0.5 and cascade["cycles_saved_frac"] > 0.25 and within_budget
    print(f"cascade check: {'ok' if ok else 'DEGRADED'} "
          f"(escalation {escalation_pct:.1f}% < 50%, cycles saved {saved_pct:.1f}% > 25%, "
          f"held-out blended accuracy within budget: {'yes' if within_budget else 'NO'})")
    return ok


def _extra_deployments(args: argparse.Namespace, split, board) -> list:
    """Build one extra servable deployment per ``--model`` registry name.

    Each extra model is built untrained from the run's seed, quantized on
    the calibration split, swept with a reduced inline DSE and turned into
    service levels -- the same stage graph (and artifact cache behind
    ``--resume``) the primary deployment uses, so repeated smokes hit the
    store.  Any registry name works (``alexnet`` included); unknown names
    fail fast with the available list.
    """
    if not args.extra_models:
        return []
    deployments = []
    seen = set()
    for name in args.extra_models:
        if name not in list_models():
            raise SystemExit(
                f"serve: unknown --model {name!r}; available models: {', '.join(list_models())}"
            )
        if name in seen:
            raise SystemExit(f"serve: --model {name!r} given twice")
        seen.add(name)
        try:
            model = build_model(name, input_shape=split.train.image_shape,
                                n_classes=split.n_classes, rng=args.seed)
        except TypeError as exc:
            # Registry entries that do not take image inputs (e.g. the MLP
            # used by optimizer unit tests) cannot serve this dataset.
            raise SystemExit(
                f"serve: --model {name!r} cannot be built for "
                f"{split.train.image_shape} images ({exc}); image models: "
                + ", ".join(m for m in list_models() if m != name)
            )
        extra_q = quantize_model(model, split.calibration.images)
        dse_config = DSEConfig(
            tau_values=[0.0, 0.01, 0.05],
            max_eval_samples=min(128, args.eval_samples),
            n_workers=args.workers,
        )
        stages = [UnpackStage(), CalibrateStage(), SignificanceStage(),
                  DSEStage(dse_config=dse_config, board=board),
                  ServeStage(max_levels=args.max_levels, board=board,
                             cycle_source=args.cycle_source)]
        experiment = Experiment(stages, inputs={
            "qmodel": extra_q,
            "calibration_images": split.calibration.images,
            "eval_images": split.test.images,
            "eval_labels": split.test.labels,
        }, store=_store(args))
        deployments.append(experiment.run()["serving"])
    return deployments


def _load_tenants(args: argparse.Namespace, model_names) -> Optional["object"]:
    """Load and validate the ``--tenants`` table (None when unset)."""
    if not args.tenants:
        return None
    from repro.serving import TenantTable

    try:
        table = TenantTable.load(args.tenants)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"serve: cannot load --tenants {args.tenants}: {exc}")
    for entry in table.as_dicts():
        pinned = entry.get("model")
        if pinned is not None and pinned not in model_names:
            raise SystemExit(
                f"serve: tenant {entry['name']!r} pins unknown model {pinned!r}; "
                f"served models: {', '.join(sorted(model_names))}"
            )
    return table


def _fairness_probe(weights: dict) -> tuple:
    """Deterministic queue-level fairness check over the tenant weights.

    Loads one synthetic :class:`~repro.serving.RequestQueue` with an equal
    backlog per weighted tenant and drains a fixed slice: smooth weighted
    round-robin is deterministic, so the drained shares must match the
    weight shares to within one round of rotation -- a yes/no check, not a
    statistical one (and therefore safe to gate CI on).

    Returns ``(ok, detail_line)``.
    """
    from repro.serving import Request, RequestQueue, SchedulerStopped

    names = sorted(weights)
    backlog = 24
    queue = RequestQueue(starvation_ms=None, tenant_weights=weights)
    sample = np.zeros(4, dtype=np.float32)
    for i in range(backlog):
        for name in names:
            queue.put(Request(sample, tenant=name))
    drained = {name: 0 for name in names}
    for _ in range(backlog):
        batch = queue.get_batch(1, 0.0, poll_timeout=0.0)
        if not batch:
            break
        drained[batch[0].tenant] += 1
    queue.drain(SchedulerStopped("fairness probe done"))
    total_weight = sum(weights[name] for name in names)
    pulled = sum(drained.values())
    ok = pulled == backlog
    for name in names:
        expected = pulled * weights[name] / total_weight
        # One full WRR rotation of slack: the drain interleaves, it does
        # not run the heavy tenant dry first.
        if abs(drained[name] - expected) > len(names):
            ok = False
    detail = "  ".join(
        f"{name}: {drained[name]}/{pulled} (weight {weights[name]:g})" for name in names
    )
    return ok, detail


def _multitenant_smoke(server_url: str, scheduler, images: np.ndarray,
                       tenant_table) -> tuple:
    """Drive the multi-model / multi-tenant surfaces through a live front.

    Sends a short per-model round so every deployment's ``model=`` series
    exists, a few requests per configured tenant, then deliberately runs a
    rate-limited tenant's token bucket dry to demonstrate the structured
    429.  Returns ``(ok, lines)`` -- greppable verdict lines the caller
    prints with the rest of the smoke summary.
    """
    import json as _json
    import urllib.error

    from repro.serving import DEFAULT_TENANT, HTTPClient

    client = HTTPClient(server_url, timeout_s=120.0)
    ok = True
    lines = []
    models = scheduler.models()
    for name in models[1:]:
        answered = 0
        for i in range(8):
            body = client.predict(images[i % len(images)], model=name)
            answered += len(body["classes"])
        lines.append(f"model {name}: answered {answered}/8")
        ok = ok and answered == 8

    quota_tenant = None
    if tenant_table is not None:
        for entry in tenant_table.as_dicts():
            name = entry["name"]
            if name == DEFAULT_TENANT:
                continue
            if entry.get("rate_limit_rps"):
                # Exercised by the quota check below; normal traffic here
                # would eat the tokens the 429 demonstration needs.
                if quota_tenant is None:
                    quota_tenant = entry
                continue
            for i in range(3):
                client.predict(images[i % len(images)], tenant=name)
    if quota_tenant is not None:
        name = quota_tenant["name"]
        budget = int(quota_tenant.get("burst") or quota_tenant["rate_limit_rps"]) + 10
        rejection = None
        sent = 0
        for i in range(budget):
            sent += 1
            try:
                client.predict(images[i % len(images)], tenant=name)
            except urllib.error.HTTPError as err:
                if err.code != 429:
                    raise
                rejection = _json.loads(err.read().decode("utf-8"))
                rejection["retry_after_header"] = err.headers.get("Retry-After", "")
                break
        if rejection is None:
            lines.append(f"quota check: DEGRADED (tenant {name!r} never hit 429 "
                         f"in {sent} requests)")
            ok = False
        else:
            lines.append(
                f"quota check: ok (tenant {name!r} -> 429 reason={rejection.get('reason')} "
                f"after {sent} requests, Retry-After {rejection['retry_after_header']}s)"
            )
    elif tenant_table is not None:
        lines.append("quota check: skipped (no rate-limited tenant in the table)")

    if tenant_table is not None and len(tenant_table) > 1:
        fair_ok, detail = _fairness_probe(scheduler.tenants.weights())
        lines.append(f"fairness check: {'ok' if fair_ok else 'DEGRADED'} "
                     f"(weighted drain {detail})")
        ok = ok and fair_ok

    text = client.metrics(format="prometheus")
    for name in models:
        sample_line = next(
            (line for line in text.splitlines()
             if line.startswith(f'repro_requests_completed_total{{model="{name}"')),
            "",
        )
        lines.append(f'exposition model="{name}": {sample_line or "(no completions)"}')
        ok = ok and bool(sample_line)
    if quota_tenant is not None:
        rejected_line = next(
            (line for line in text.splitlines()
             if line.startswith("repro_tenant_rejected_total{")),
            "",
        )
        lines.append(f"exposition rejections: {rejected_line or '(none recorded)'}")
        ok = ok and bool(rejected_line)

    if tenant_table is not None:
        snapshot = scheduler.metrics.snapshot()
        for name, stats in sorted(snapshot.per_tenant.items()):
            slo = ""
            if stats.get("slo_ms") is not None:
                slo = (f"   slo {stats['slo_ms']:g}ms "
                       f"{'ok' if stats.get('slo_ok') else 'MISSED'}")
            lines.append(
                f"tenant {name}: completed {stats.get('completed', 0)}   "
                f"rejected {stats.get('rejected_total', 0)}   "
                f"p95 {stats.get('p95_latency_ms', 0.0):.1f} ms{slo}"
            )
    return ok, lines


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve predictions from a deployed model over its DSE Pareto front."""
    from repro.obs import Observability
    from repro.serving import HTTPClient, Scheduler

    qmodel = load_quantized_model(args.qmodel)
    split = _dataset_split(args.samples, args.seed)
    board = get_board(args.board)

    stages = [UnpackStage(), CalibrateStage(), SignificanceStage()]
    inputs = {"qmodel": qmodel, "calibration_images": split.calibration.images}
    if args.config:
        points = load_json(args.config)["points"]
        stages.append(ServeStage(points=points, max_levels=args.max_levels, board=board,
                                 cycle_source=args.cycle_source))
    else:
        # No DSE table supplied: run a small sweep in-graph (cached by --resume).
        dse_config = DSEConfig(
            tau_values=[0.0, 0.005, 0.01, 0.02, 0.05, 0.1],
            max_eval_samples=args.eval_samples,
            n_workers=args.workers,
        )
        stages.append(DSEStage(dse_config=dse_config, board=board))
        stages.append(ServeStage(max_levels=args.max_levels, board=board,
                                 cycle_source=args.cycle_source))
        inputs["eval_images"] = split.test.images
        inputs["eval_labels"] = split.test.labels
    cascade_requested = args.policy == "cascade"
    if args.accuracy_budget is not None and not cascade_requested:
        raise SystemExit(
            f"--accuracy-budget only applies to --policy cascade (got {args.policy!r})"
        )
    if args.extra_models and cascade_requested:
        raise SystemExit(
            "serve: --policy cascade serves a single deployment (its calibration is "
            "per-model); drop --model or pick another policy"
        )
    if cascade_requested:
        # The calibration sweep rides the same stage graph (and cache) as
        # the deployment build; the holdout comes from the eval split.
        inputs.setdefault("eval_images", split.test.images)
        inputs.setdefault("eval_labels", split.test.labels)
        budget = args.accuracy_budget if args.accuracy_budget is not None else 0.02
        stages.append(CascadeStage(accuracy_budget=budget, n_samples=args.eval_samples))
    experiment = Experiment(stages, inputs=inputs, store=_store(args))
    result = experiment.run()
    _report_cache(result)
    deployment = result["serving"]
    print(format_table(
        deployment.describe(),
        columns=["name", "label", "accuracy", "conv_mac_reduction", "mcu_latency_ms"],
        title=f"service levels of {qmodel.name} ({args.policy} policy)",
    ))
    cascade_calibration = result.get("cascade") if cascade_requested else None
    if cascade_calibration is not None:
        print(format_table(
            [point.as_dict() for point in cascade_calibration.points],
            columns=["level", "threshold", "escalation_rate", "blended_accuracy",
                     "cycles_saved_frac", "within_budget"],
            title=(f"cascade calibration on {cascade_calibration.n_samples} held-out samples "
                   f"(exact acc {cascade_calibration.exact_accuracy:.3f}, "
                   f"budget {cascade_calibration.accuracy_budget:g})"),
        ))
        if cascade_calibration.chosen is None:
            print("cascade: no cheap level within the accuracy budget -- serving exact-only")
        else:
            point = cascade_calibration.chosen_point
            print(f"cascade: {point.level} first (margin >= {point.threshold:.3f}), "
                  f"escalate to {cascade_calibration.exact_level}; expected escalation "
                  f"{100 * point.escalation_rate:.1f}%, expected cycles saved "
                  f"{100 * point.cycles_saved_frac:.1f}%")

    extras = _extra_deployments(args, split, board)
    deployments = [deployment, *extras]
    for extra in extras:
        print(format_table(
            extra.describe(),
            columns=["name", "label", "accuracy", "conv_mac_reduction", "mcu_latency_ms"],
            title=f"service levels of {extra.qmodel.name} (--model deployment)",
        ))
    model_names = [d.qmodel.name for d in deployments]
    if len(set(model_names)) != len(model_names):
        raise SystemExit(f"serve: duplicate deployment names {model_names}")
    tenant_table = _load_tenants(args, set(model_names))

    if args.replicas > 1:
        # Fleet mode: a router process federates N independent replica
        # server processes (each its own scheduler + observability bundle).
        return _serve_fleet(args, deployments if extras else deployment, split, qmodel,
                            cascade_calibration=cascade_calibration,
                            tenant_table=tenant_table)

    policy = args.policy
    if args.depth_per_level is not None:
        if args.policy != "queue-depth":
            raise SystemExit(
                f"--depth-per-level only applies to --policy queue-depth (got {args.policy!r})"
            )
        from repro.serving import QueueDepthPolicy

        if extras:
            # Stateful policy instances are per-deployment; a mapping gives
            # every model its own tuned instance.
            policy = {name: QueueDepthPolicy(depth_per_level=args.depth_per_level)
                      for name in model_names}
        else:
            policy = QueueDepthPolicy(depth_per_level=args.depth_per_level)
    if cascade_requested:
        from repro.serving import CascadePolicy

        policy = CascadePolicy(calibration=cascade_calibration)
    obs = Observability(profile_every=args.profile_every)
    scheduler = Scheduler(
        deployments if extras else deployment,
        policy=policy,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        n_workers=args.shard_workers,
        obs=obs,
        tenants=tenant_table,
    )
    front_cls = FRONTS.resolve(args.front)
    scheduler.start()
    try:
        if args.smoke is not None:
            # The smoke ramp drives real HTTP traffic through the selected
            # front on an ephemeral port -- the same code path a deployment
            # exercises, whichever of thread/asyncio is under test.
            with front_cls(scheduler, host=args.host, port=0) as server:
                counts = _smoke_load_ramp(
                    server.url, split.test.images, args.smoke, priority=args.priority
                )
                mt_ok, mt_lines = True, []
                if extras or tenant_table is not None:
                    mt_ok, mt_lines = _multitenant_smoke(
                        server.url, scheduler, split.test.images, tenant_table
                    )
                # One extra traced round trip exercises the observability
                # surface end to end: response header, Prometheus scrape,
                # event ring -- all through the same front under test.
                obs_client = HTTPClient(server.url, timeout_s=120.0)
                _, response_headers = obs_client.predict_with_headers(split.test.images[0])
                prometheus_text = obs_client.metrics(format="prometheus")
                events = obs_client.events()
            snapshot = scheduler.metrics.snapshot()
            rows = [
                {
                    "level": name,
                    "requests": snapshot.per_level_requests.get(name, 0),
                    "batches": snapshot.per_level_batches.get(name, 0),
                }
                for name in (level.name for level in deployment.levels)
            ]
            print(format_table(rows, title="per-level traffic"))
            answered = sum(done for done, _ in counts.values())
            for name, (done, issued) in counts.items():
                stats = snapshot.per_priority.get(name, {})
                print(
                    f"priority {name}: answered {done}/{issued}   "
                    f"p50/p95 {stats.get('p50_latency_ms', 0.0):.1f}/"
                    f"{stats.get('p95_latency_ms', 0.0):.1f} ms   "
                    f"shed {stats.get('shed', 0)}"
                )
            print(f"answered: {answered}/{args.smoke}")
            print(f"level switches: {snapshot.level_switches}")
            print(
                f"throughput: {snapshot.throughput_rps:.1f} req/s lifetime / "
                f"{snapshot.windowed_throughput_rps:.1f} req/s windowed   "
                f"mean batch: {snapshot.mean_batch_size:.1f}   "
                f"p50/p95 latency: {snapshot.p50_latency_ms:.1f}/{snapshot.p95_latency_ms:.1f} ms"
            )
            print(
                f"simulated MCU cycles saved: {snapshot.cycles_saved:,.0f} "
                f"({snapshot.mcu_ms_saved:,.1f} ms on {board.name})"
            )
            cascade_ok = True
            if cascade_requested:
                cascade_ok = _print_cascade_smoke(snapshot, cascade_calibration)
            for line in mt_lines:
                print(line)
            prometheus_series = sum(
                1 for line in prometheus_text.splitlines() if line and not line.startswith("#")
            )
            sample_line = next(
                (
                    line
                    for line in prometheus_text.splitlines()
                    if line.startswith("repro_requests_completed_total{")
                ),
                "",
            )
            print(f"X-Trace-Id: {response_headers.get('X-Trace-Id', '')}")
            print(f"prometheus exposition: {prometheus_series} series   e.g. {sample_line}")
            if cascade_requested:
                cascade_line = next(
                    (
                        line
                        for line in prometheus_text.splitlines()
                        if line.startswith("repro_cascade_")
                    ),
                    "",
                )
                print(f"cascade exposition: e.g. {cascade_line}")
            last_event = f"   last: {events[-1]['kind']}" if events else ""
            print(f"events: {len(events)} recorded{last_event}")
            if obs.profiler.enabled:
                profile_rows = [
                    {"section": name, **stats} for name, stats in obs.profiler.snapshot().items()
                ]
                print(format_table(
                    profile_rows,
                    title=f"profile (sampled every {obs.profiler.sample_every} batches)",
                ))
            return 0 if (answered == args.smoke and cascade_ok and mt_ok) else 1
        server = front_cls(scheduler, host=args.host, port=args.port)
        print(
            f"serving {', '.join(model_names)} at {server.url} via the {args.front} front "
            "(POST /predict, GET /metrics, /levels, /events, /trace, /healthz); "
            "Ctrl-C to stop"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        return 0
    finally:
        if args.trace_export:
            n_spans = obs.tracer.export_jsonl(args.trace_export)
            print(f"trace export: {n_spans} spans -> {args.trace_export}")
        scheduler.stop()


def cmd_trace(args: argparse.Namespace) -> int:
    """Pretty-print per-stage latency breakdowns from a span export."""
    from repro.obs.tracing import STAGES, load_jsonl, trace_breakdown

    try:
        spans = load_jsonl(args.input)
    except FileNotFoundError:
        print(f"error: span export {args.input!r} does not exist "
              "(write one with `repro-tinyml serve --trace-export PATH`)", file=sys.stderr)
        return 2
    except IsADirectoryError:
        print(f"error: {args.input!r} is a directory, not a span JSONL file", file=sys.stderr)
        return 2
    if not spans:
        print(f"error: span export {args.input!r} is empty -- the server recorded no spans "
              "(was tracing disabled, or no traffic served?)", file=sys.stderr)
        return 2
    if args.trace_id:
        spans = [span for span in spans if span.trace_id == args.trace_id]
    if not spans:
        target = f"trace {args.trace_id!r}" if args.trace_id else "any trace"
        print(f"no spans for {target} in {args.input}")
        return 1
    rows = trace_breakdown(spans)
    if args.slowest:
        rows.sort(key=lambda row: row["total_ms"], reverse=True)
    shown = rows[: args.limit] if args.limit else rows
    columns = ["trace_id", *STAGES, "layers_ms", "total_ms", "spans"]
    print(format_table(
        shown,
        columns=columns,
        title=f"per-stage latency breakdown ({len(rows)} traces, ms)",
    ))
    if len(rows) > len(shown):
        print(f"... {len(rows) - len(shown)} more traces (raise --limit)")
    means = {
        stage: sum(row[stage] for row in rows) / len(rows) for stage in (*STAGES, "layers_ms")
    }
    print(
        "stage means (ms): "
        + "   ".join(f"{stage} {value:.3f}" for stage, value in means.items() if value > 0)
    )
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate the paper's tables/figures through the shared experiment context."""
    from repro.evaluation import (
        ExperimentContext,
        build_claims,
        build_figure2,
        build_table1,
        build_table2,
        format_claims,
        format_figure2,
        format_table1,
        format_table2,
    )

    context = ExperimentContext(scale=args.scale, seed=args.seed, n_workers=args.workers)
    wanted_all = args.all or not (args.table1 or args.table2 or args.figure2 or args.claims)
    if args.table1 or wanted_all:
        print(format_table1(build_table1(context)), end="\n\n")
    if args.figure2 or wanted_all:
        print(format_figure2(build_figure2(context)), end="\n\n")
    if args.table2 or wanted_all:
        print(format_table2(build_table2(context)), end="\n\n")
    if args.claims or wanted_all:
        print(format_claims(build_claims(context)))
    return 0


# --------------------------------------------------------------------------- parser
def engine_choices() -> List[str]:
    """Engine names registered in :data:`repro.registry.ENGINES`."""
    return ENGINES.names()


def strategy_choices() -> List[str]:
    """Search-strategy names registered in :data:`repro.registry.SEARCH_STRATEGIES`."""
    return SEARCH_STRATEGIES.names()


def board_choices() -> List[str]:
    """Board names registered in :data:`repro.registry.BOARDS`."""
    return BOARDS.names()


def policy_choices() -> List[str]:
    """Serving-policy names registered in :data:`repro.registry.POLICIES`."""
    return POLICIES.names()


def front_choices() -> List[str]:
    """Server-front names registered in :data:`repro.registry.FRONTS`."""
    return FRONTS.names()


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (choices come from the registries)."""
    parser = argparse.ArgumentParser(prog="repro-tinyml", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("-v", "--verbose", action="store_true", help="enable INFO logging")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="errors only (overrides --verbose)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, samples=2000):
        p.add_argument("--samples", type=int, default=samples, help="synthetic dataset size")
        p.add_argument("--seed", type=int, default=7, help="dataset/model seed")
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes for parallel work (default: all cores minus one)")

    def add_resume(p):
        p.add_argument("--resume", default=None, metavar="DIR",
                       help="artifact-store directory; unchanged stages are read from it")

    p_train = sub.add_parser("train", help="train a model on the synthetic dataset")
    p_train.add_argument("--model", choices=list_models(), default="lenet")
    p_train.add_argument("--out", required=True, help="output path stem for the saved model")
    p_train.add_argument("--epochs", type=int, default=5)
    p_train.add_argument("--batch-size", type=int, default=48)
    p_train.add_argument("--lr", type=float, default=1.5e-3)
    add_common(p_train, samples=3000)
    p_train.set_defaults(func=cmd_train)

    p_quant = sub.add_parser("quantize", help="post-training-quantize a saved model")
    p_quant.add_argument("--model-path", required=True)
    p_quant.add_argument("--out", required=True)
    p_quant.add_argument("--calibration", type=int, default=128)
    add_common(p_quant)
    p_quant.set_defaults(func=cmd_quantize)

    p_explore = sub.add_parser("explore", help="run the approximation DSE on a quantized model")
    p_explore.add_argument("--qmodel", required=True)
    p_explore.add_argument("--out", required=True, help="output JSON for the DSE table")
    p_explore.add_argument("--loss", type=float, default=0.0, help="accuracy-loss budget")
    p_explore.add_argument("--strategy", choices=strategy_choices(), default="exhaustive",
                           help="DSE search strategy (from the strategy registry)")
    p_explore.add_argument("--taus", default=None, help="comma-separated explicit tau values")
    p_explore.add_argument("--tau-step", type=float, default=0.005)
    p_explore.add_argument("--tau-max", type=float, default=0.1)
    p_explore.add_argument("--eval-samples", type=int, default=256)
    p_explore.add_argument("--board", choices=board_choices(), default="stm32u575")
    add_resume(p_explore)
    add_common(p_explore)
    p_explore.set_defaults(func=cmd_explore)

    p_code = sub.add_parser("codegen", help="emit unpacked/approximate kernel code")
    p_code.add_argument("--qmodel", required=True)
    p_code.add_argument("--config", default=None, help="ApproxConfig JSON (omit for exact code)")
    p_code.add_argument("--out", required=True)
    add_resume(p_code)
    # Same dataset defaults as explore/deploy, so a shared --resume store hits.
    add_common(p_code)
    p_code.set_defaults(func=cmd_codegen)

    p_verify = sub.add_parser(
        "verify-codegen",
        help="run generated code through the ISA VM and verify it against the kernels",
    )
    p_verify.add_argument("--qmodel", required=True)
    p_verify.add_argument("--taus", default="0.0,0.01,0.05",
                          help="comma-separated uniform tau designs to verify "
                               "(the exact design is always included)")
    p_verify.add_argument("--modes", default="interp,turbo",
                          help="comma-separated VM execution modes to check")
    p_verify.add_argument("--n-verify", type=int, default=32,
                          help="input samples driven through both execution paths")
    p_verify.add_argument("--calibrate-cost-model", action="store_true",
                          help="derive UNPACKED cost overrides from the VM trace, apply "
                               "them via the override hooks and print the before/after "
                               "traced/analytic table")
    add_resume(p_verify)
    add_common(p_verify)
    p_verify.set_defaults(func=cmd_verify_codegen)

    p_deploy = sub.add_parser("deploy", help="deploy a quantized model on a board model")
    p_deploy.add_argument("--qmodel", required=True)
    p_deploy.add_argument("--engine", choices=engine_choices(), default="cmsis-nn")
    p_deploy.add_argument("--config", default=None, help="ApproxConfig JSON for the ataman engine")
    p_deploy.add_argument("--board", choices=board_choices(), default="stm32u575")
    p_deploy.add_argument("--eval-samples", type=int, default=256)
    p_deploy.add_argument("--calibrate-cost-model", action="store_true",
                          help="calibrate the analytic UNPACKED model against the VM trace "
                               "of the deployed design before estimating cycles/latency "
                               "(unpacked-style engines only)")
    add_resume(p_deploy)
    add_common(p_deploy)
    p_deploy.set_defaults(func=cmd_deploy)

    p_serve = sub.add_parser("serve", help="serve predictions with load-adaptive batching")
    p_serve.add_argument("--qmodel", required=True)
    p_serve.add_argument("--config", default=None,
                         help="DSE table JSON from `explore` (omit to run a small DSE in-line)")
    p_serve.add_argument("--model", action="append", default=None, dest="extra_models",
                         metavar="NAME",
                         help="serve an extra registry model alongside --qmodel (repeatable; "
                              "built untrained from the seed, quantized on the calibration "
                              "split and swept with a reduced inline DSE -- any name from "
                              "the model registry, e.g. alexnet)")
    p_serve.add_argument("--tenants", default=None, metavar="FILE",
                         help="JSON tenant table: a list of {name, model, priority, slo_ms, "
                              "rate_limit_rps, burst, max_inflight, weight} objects "
                              "(token-bucket quotas enforced at enqueue with HTTP 429)")
    p_serve.add_argument("--front", choices=front_choices(), default="thread",
                         help="HTTP front end: thread-per-connection or a single asyncio event loop")
    p_serve.add_argument("--priority",
                         choices=("interactive", "standard", "batch", "mixed"),
                         default="standard",
                         help="priority class of --smoke traffic ('mixed' cycles all three)")
    p_serve.add_argument("--policy", choices=policy_choices(), default="queue-depth",
                         help="adaptive serving policy (from the policy registry)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument("--max-batch-size", type=int, default=32)
    p_serve.add_argument("--depth-per-level", type=int, default=None,
                         help="queue-depth policy: queued requests per escalation step "
                              "(smaller = more eager; default: the policy's own default)")
    p_serve.add_argument("--accuracy-budget", type=float, default=None, metavar="FRAC",
                         help="cascade policy: allowed blended-accuracy drop versus the "
                              "exact level on the held-out calibration split "
                              "(default 0.02; 0 disables cascading)")
    p_serve.add_argument("--max-wait-ms", type=float, default=5.0,
                         help="batch coalescing window in milliseconds")
    p_serve.add_argument("--max-levels", type=int, default=6,
                         help="cap on the number of Pareto service levels")
    p_serve.add_argument("--replicas", type=int, default=1,
                         help="replica server processes behind a fleet router "
                              "(1 = a single in-process server, no router)")
    p_serve.add_argument("--shard-workers", type=int, default=1,
                         help="worker processes sharding batches inside each server "
                              "(per replica in fleet mode)")
    p_serve.add_argument("--board", choices=board_choices(), default="stm32u575",
                         help="board model for the simulated MCU latency/savings")
    p_serve.add_argument("--cycle-source", choices=("analytic", "traced"), default="analytic",
                         help="cost service levels with the analytic model or the "
                              "VM's per-instruction trace")
    p_serve.add_argument("--eval-samples", type=int, default=256,
                         help="evaluation images for the in-line DSE (no --config only)")
    p_serve.add_argument("--smoke", type=int, default=None, metavar="N",
                         help="answer N self-generated requests through a load ramp, "
                              "print the metrics summary and exit")
    p_serve.add_argument("--profile-every", type=int, default=0, metavar="N",
                         help="profile every Nth batch: scheduler loop phases and "
                              "per-layer forwards (0 = off, the default)")
    p_serve.add_argument("--trace-export", default=None, metavar="PATH",
                         help="on shutdown, dump the buffered request spans as JSONL "
                              "(inspect with `repro-tinyml trace --input PATH`)")
    # Same dest as the global flags: `repro-tinyml serve -v` works without
    # having to remember the flag goes before the subcommand.  argparse only
    # applies a subparser default when the attribute is still unset, so the
    # pre-subcommand spelling is not clobbered.
    p_serve.add_argument("-v", "--verbose", action="store_true",
                         help="enable INFO logging (level switches, lifecycle events)")
    p_serve.add_argument("-q", "--quiet", action="store_true",
                         help="errors only (overrides --verbose)")
    add_resume(p_serve)
    add_common(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_trace = sub.add_parser(
        "trace", help="pretty-print per-stage latency breakdowns from a span export"
    )
    p_trace.add_argument("--input", required=True, metavar="PATH",
                         help="JSONL span export written by `serve --trace-export`")
    p_trace.add_argument("--trace-id", default=None,
                         help="show only the spans of one trace (X-Trace-Id header value)")
    p_trace.add_argument("--limit", type=int, default=20, metavar="N",
                         help="show at most N traces (0 = all; default 20)")
    p_trace.add_argument("--slowest", action="store_true",
                         help="sort by total latency, slowest first")
    p_trace.set_defaults(func=cmd_trace)

    p_rep = sub.add_parser("reproduce", help="regenerate the paper's tables and figures")
    p_rep.add_argument("--table1", action="store_true")
    p_rep.add_argument("--table2", action="store_true")
    p_rep.add_argument("--figure2", action="store_true")
    p_rep.add_argument("--claims", action="store_true")
    p_rep.add_argument("--all", action="store_true")
    p_rep.add_argument("--scale", choices=("ci", "fast", "full"), default=None)
    p_rep.add_argument("--seed", type=int, default=7, help="master experiment seed")
    p_rep.add_argument("--workers", type=int, default=None,
                       help="worker processes for parallel work (default: all cores minus one)")
    p_rep.set_defaults(func=cmd_reproduce)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_cli_verbosity(
        verbose=getattr(args, "verbose", False), quiet=getattr(args, "quiet", False)
    )
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
