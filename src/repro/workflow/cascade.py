"""Confidence-cascade calibration over a deployment's Pareto levels.

The DSE hands serving an accuracy/cycles Pareto front of service levels;
by itself that front is a static menu — a policy picks one level per batch.
Cascading turns it into a *dynamic* operating point: run a cheap
(aggressive-skip) level first and escalate only the requests whose softmax
margin (top-1 minus top-2 probability) falls below a calibrated threshold
to the exact level.  Most traffic then pays approximate-level cycles while
blended accuracy stays within a configurable budget of exact.

This module holds the offline half of that story:

* :func:`softmax_margins` — the confidence signal shared with the scheduler.
* :func:`calibrate_cascade` — sweep margin thresholds per cheap level on a
  held-out split and pick the cheapest operating point that stays within
  the accuracy budget.
* :class:`CascadeStage` — the workflow stage that runs the sweep and caches
  the resulting :class:`CascadeCalibration` artifact content-addressed
  (same deployment + data + budget → cache hit).

The online half lives in :class:`repro.serving.policy.CascadePolicy` and
the scheduler's escalation path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.workflow.stage import Stage, StageContext


def softmax_margins(logits: np.ndarray) -> np.ndarray:
    """Return the top-1 minus top-2 softmax probability per row.

    The margin is the cascade's confidence signal: a prediction whose
    probability mass is concentrated on one class (margin near 1) is
    accepted at the cheap level, while an ambiguous one (margin near 0)
    escalates to exact.  Computed in float64 with the usual max-shift for
    numerical stability.
    """
    z = np.asarray(logits, dtype=np.float64)
    z = z - z.max(axis=-1, keepdims=True)
    p = np.exp(z)
    p /= p.sum(axis=-1, keepdims=True)
    if p.shape[-1] < 2:
        return np.ones(p.shape[:-1], dtype=np.float64)
    part = np.partition(p, p.shape[-1] - 2, axis=-1)
    return part[..., -1] - part[..., -2]


@dataclass(frozen=True)
class CascadeLevelPoint:
    """One cheap level's calibrated operating point against the exact level."""

    level: str
    threshold: float
    escalation_rate: float
    blended_accuracy: float
    accept_accuracy: float
    expected_cycles_per_sample: float
    cycles_saved_frac: float
    within_budget: bool

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON reports and the CLI table."""
        return asdict(self)


@dataclass(frozen=True)
class CascadeCalibration:
    """Cached result of a threshold sweep over a deployment's levels.

    ``points`` holds one calibrated operating point per cheap level;
    ``chosen`` names the level the cascade policy should run first (the
    cheapest expected-cycles point that stays within ``accuracy_budget``
    of exact), or ``None`` when no cheap level qualifies — in which case
    the policy degrades to exact-only serving.
    """

    model_name: str
    exact_level: str
    exact_accuracy: float
    exact_cycles_per_sample: float
    accuracy_budget: float
    n_samples: int
    points: List[CascadeLevelPoint] = field(default_factory=list)
    chosen: Optional[str] = None

    @property
    def chosen_point(self) -> Optional[CascadeLevelPoint]:
        """The operating point for ``chosen``, or ``None`` for exact-only."""
        for point in self.points:
            if point.level == self.chosen:
                return point
        return None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON reports and smoke output."""
        payload = asdict(self)
        payload["points"] = [point.as_dict() for point in self.points]
        return payload


def _sweep_threshold(
    margins: np.ndarray,
    cheap_correct: np.ndarray,
    exact_correct: np.ndarray,
    floor: float,
    thresholds: Optional[Sequence[float]],
) -> Optional[float]:
    """Smallest threshold whose blended accuracy reaches ``floor``.

    Candidates are swept ascending so the winner escalates as little
    traffic as possible.  Returns ``None`` when even escalating everything
    (threshold above every margin) cannot reach the floor — which cannot
    happen in practice since full escalation reproduces exact accuracy,
    but guards degenerate inputs.
    """
    if thresholds is None:
        candidates = np.unique(np.concatenate(([0.0], margins, [1.0 + 1e-9])))
    else:
        candidates = np.unique(np.asarray(list(thresholds), dtype=np.float64))
    for threshold in candidates:
        accept = margins >= threshold
        blended = np.where(accept, cheap_correct, exact_correct).mean()
        if blended >= floor:
            return float(threshold)
    return None


def calibrate_cascade(
    deployment,
    images: np.ndarray,
    labels: np.ndarray,
    accuracy_budget: float = 0.02,
    thresholds: Optional[Sequence[float]] = None,
) -> CascadeCalibration:
    """Sweep margin thresholds per cheap level on held-out ``images``.

    For every level cheaper than the deployment's most-accurate ("exact")
    level, find the smallest softmax-margin threshold whose *blended*
    accuracy — cheap predictions where the margin clears the threshold,
    exact predictions below it — stays within ``accuracy_budget`` of the
    exact level's held-out accuracy.  The expected cycle cost of each
    operating point is ``cheap + escalation_rate * exact`` cycles per
    sample; ``chosen`` is the point minimising that cost among those
    within budget that actually beat exact-only.

    ``accuracy_budget <= 0`` short-circuits to exact-only (``chosen`` is
    ``None``): a zero budget admits no approximation error by definition,
    so the sweep is not allowed to accept a lucky-sample threshold.  An
    infinite budget accepts everything at threshold 0 and never escalates.
    """
    labels = np.asarray(labels)
    exact_idx = 0
    exact = deployment.levels[exact_idx]
    exact_logits = deployment.forward(images, level=exact_idx)
    exact_correct = exact_logits.argmax(axis=-1) == labels
    exact_accuracy = float(exact_correct.mean())
    exact_cycles = float(exact.cycles_per_sample)
    floor = exact_accuracy - float(accuracy_budget)

    points: List[CascadeLevelPoint] = []
    for idx in range(1, len(deployment.levels)):
        level = deployment.levels[idx]
        logits = deployment.forward(images, level=idx)
        margins = softmax_margins(logits)
        cheap_correct = logits.argmax(axis=-1) == labels
        threshold = (
            None
            if accuracy_budget <= 0
            else _sweep_threshold(margins, cheap_correct, exact_correct, floor, thresholds)
        )
        if threshold is None:
            # No admissible operating point: report the full-escalation
            # degenerate point so the table stays complete.
            points.append(
                CascadeLevelPoint(
                    level=level.name,
                    threshold=float("inf"),
                    escalation_rate=1.0,
                    blended_accuracy=exact_accuracy,
                    accept_accuracy=exact_accuracy,
                    expected_cycles_per_sample=float(level.cycles_per_sample) + exact_cycles,
                    cycles_saved_frac=-float(level.cycles_per_sample) / exact_cycles,
                    within_budget=False,
                )
            )
            continue
        accept = margins >= threshold
        escalation_rate = float(1.0 - accept.mean())
        blended = float(np.where(accept, cheap_correct, exact_correct).mean())
        accept_accuracy = float(cheap_correct[accept].mean()) if accept.any() else exact_accuracy
        expected = float(level.cycles_per_sample) + escalation_rate * exact_cycles
        points.append(
            CascadeLevelPoint(
                level=level.name,
                threshold=float(threshold),
                escalation_rate=escalation_rate,
                blended_accuracy=blended,
                accept_accuracy=accept_accuracy,
                expected_cycles_per_sample=expected,
                cycles_saved_frac=1.0 - expected / exact_cycles,
                within_budget=True,
            )
        )

    viable = [
        p for p in points if p.within_budget and p.expected_cycles_per_sample < exact_cycles
    ]
    chosen = min(viable, key=lambda p: p.expected_cycles_per_sample).level if viable else None
    return CascadeCalibration(
        model_name=getattr(deployment.qmodel, "name", "model"),
        exact_level=exact.name,
        exact_accuracy=exact_accuracy,
        exact_cycles_per_sample=exact_cycles,
        accuracy_budget=float(accuracy_budget),
        n_samples=int(len(images)),
        points=points,
        chosen=chosen,
    )


class CascadeStage(Stage):
    """Calibrate cascade thresholds on held-out data and cache the artifact.

    Requires a built ``serving`` deployment plus the evaluation split; the
    sweep uses the *last* ``n_samples`` of the split so it overlaps the
    DSE's accuracy-evaluation slice (which consumes the front) as little
    as the data allows.  Like every stage the output is content-addressed:
    rerunning with the same deployment inputs, data and budget is a cache
    hit, while any change to the budget or threshold grid re-sweeps.
    """

    name = "cascade"
    requires = ("serving", "eval_images", "eval_labels")
    provides = ("cascade",)

    def __init__(
        self,
        accuracy_budget: float = 0.02,
        n_samples: int = 256,
        thresholds: Optional[Sequence[float]] = None,
    ):
        self.accuracy_budget = float(accuracy_budget)
        self.n_samples = int(n_samples)
        self.thresholds = None if thresholds is None else [float(t) for t in thresholds]

    def config(self) -> Dict[str, Any]:
        """Cache key: budget + holdout size + explicit threshold grid."""
        return {
            "accuracy_budget": self.accuracy_budget,
            "n_samples": self.n_samples,
            "thresholds": self.thresholds,
        }

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Run the threshold sweep against the deployment in ``ctx``."""
        deployment = ctx["serving"]
        images = np.asarray(ctx["eval_images"])[-self.n_samples :]
        labels = np.asarray(ctx["eval_labels"])[-self.n_samples :]
        calibration = calibrate_cascade(
            deployment,
            images,
            labels,
            accuracy_budget=self.accuracy_budget,
            thresholds=self.thresholds,
        )
        return {"cascade": calibration}
