"""Composable experiment API: stage graph + plugin registries + artifact cache.

This package re-founds the public API of the reproduction on three ideas:

* **Typed stages** (:mod:`repro.workflow.stage`, :mod:`repro.workflow.stages`)
  -- each step of the paper's framework declares the artifacts it consumes
  and produces, so flows are composed rather than hard-coded.
* **An incremental runner** (:class:`Experiment`) -- stages execute in
  dependency order with their outputs cached content-addressed; unchanged
  prefixes of the graph are never re-executed.
* **An artifact store** (:class:`ArtifactStore`) -- the on-disk (or
  in-memory) cache keyed by stage-config + upstream-content hashes, which
  also backs the CLI's ``--resume``.

The legacy :class:`repro.core.AtamanPipeline` remains available as a thin
facade over :class:`Experiment`.
"""

from repro.workflow.artifacts import ArtifactStore, fingerprint
from repro.workflow.cascade import (
    CascadeCalibration,
    CascadeLevelPoint,
    CascadeStage,
    calibrate_cascade,
    softmax_margins,
)
from repro.workflow.stage import Stage, StageContext
from repro.workflow.stages import (
    CalibrateStage,
    CodegenStage,
    DeployStage,
    DSEStage,
    QuantizeStage,
    ServeStage,
    SignificanceStage,
    UnpackStage,
    VerifyStage,
)
from repro.workflow.experiment import (
    Experiment,
    ExperimentError,
    ExperimentResult,
    StageExecution,
)

__all__ = [
    "ArtifactStore",
    "fingerprint",
    "Stage",
    "StageContext",
    "QuantizeStage",
    "UnpackStage",
    "CalibrateStage",
    "SignificanceStage",
    "DSEStage",
    "CodegenStage",
    "DeployStage",
    "ServeStage",
    "VerifyStage",
    "CascadeStage",
    "CascadeCalibration",
    "CascadeLevelPoint",
    "calibrate_cascade",
    "softmax_margins",
    "Experiment",
    "ExperimentError",
    "ExperimentResult",
    "StageExecution",
]
