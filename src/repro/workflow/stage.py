"""The typed stage protocol of the composable experiment API.

A :class:`Stage` is one node of an experiment's dataflow graph.  It declares
the logical artifacts it consumes (:attr:`Stage.requires`) and produces
(:attr:`Stage.provides`), exposes its configuration for fingerprinting
(:meth:`Stage.config`) and implements the actual work in :meth:`Stage.run`.
The :class:`~repro.workflow.experiment.Experiment` runner wires stages
together by artifact name, executes them in dependency order and caches each
stage's outputs in a content-addressed
:class:`~repro.workflow.artifacts.ArtifactStore`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.workflow.artifacts import fingerprint


class StageContext:
    """Read-only view of the artifacts available to a running stage."""

    def __init__(self, artifacts: Mapping[str, Any]):
        self._artifacts = dict(artifacts)

    def __getitem__(self, name: str) -> Any:
        try:
            return self._artifacts[name]
        except KeyError:
            raise KeyError(
                f"stage requested artifact {name!r} which is not available; "
                f"declared inputs: {sorted(self._artifacts)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._artifacts

    def get(self, name: str, default: Any = None) -> Any:
        """Artifact by name, or ``default`` when absent."""
        return self._artifacts.get(name, default)

    def names(self) -> list:
        """Names of the available artifacts."""
        return sorted(self._artifacts)


class Stage:
    """One typed step of an experiment.

    Subclasses set :attr:`name`, :attr:`requires` and :attr:`provides`, and
    implement :meth:`run`.  Anything that influences the stage's output beyond
    its input artifacts must be surfaced through :meth:`config` -- it is
    hashed into the stage's cache signature, so forgetting a knob there means
    stale cache hits when that knob changes.

    Attributes
    ----------
    name:
        Unique stage name inside an experiment.
    requires:
        Logical names of the artifacts the stage consumes (experiment inputs
        or upstream stages' ``provides``).
    provides:
        Logical names of the artifacts the stage produces; :meth:`run` must
        return a dict with exactly these keys.
    version:
        Implementation version; bump it when the stage's semantics change so
        previously cached outputs are invalidated.
    """

    name: str = "stage"
    requires: Tuple[str, ...] = ()
    provides: Tuple[str, ...] = ()
    version: str = "1"

    # ------------------------------------------------------------------ caching
    def config(self) -> Dict[str, Any]:
        """The stage configuration hashed into the cache signature."""
        return {}

    def signature(self, input_digests: Mapping[str, str]) -> str:
        """Content-addressed cache key of this stage given its input digests."""
        return fingerprint(
            {
                "stage": self.name,
                "class": type(self).__name__,
                "version": self.version,
                "config": self.config(),
                "inputs": {key: input_digests[key] for key in self.requires},
            }
        )

    # ------------------------------------------------------------------ execution
    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Execute the stage; return a mapping with exactly ``provides`` keys."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"requires={self.requires!r}, provides={self.provides!r})"
        )
