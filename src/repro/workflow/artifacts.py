"""Content-addressed artifact storage for incremental experiments.

Every stage output is cached under a *signature*: the hash of the stage's
name/version, its configuration fingerprint and the digests of its upstream
artifacts.  Because signatures chain (a stage's signature embeds its inputs'
signatures), any change -- a different tau sweep, a new calibration set, an
edited stage implementation -- invalidates exactly the affected suffix of the
stage graph, and untouched prefixes are served from the store without
executing a single stage body.

The store itself is a flat pickle-per-object layout (``<root>/ab/abcd....pkl``)
or, when constructed without a root directory, a process-local dict -- handy
for tests and for the in-memory caching of :class:`repro.workflow.Experiment`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import threading
import time
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import numpy as np

PathLike = Union[str, Path]

#: Bump to invalidate every existing on-disk artifact (format change).
STORE_FORMAT_VERSION = 1


# --------------------------------------------------------------------------- fingerprinting
def _update(hasher: "hashlib._Hash", token: str) -> None:
    hasher.update(token.encode("utf-8"))
    hasher.update(b"\x00")


def _fingerprint_into(obj: Any, hasher: "hashlib._Hash") -> None:
    """Feed a canonical byte representation of ``obj`` into ``hasher``."""
    if obj is None or isinstance(obj, (bool, int, str)):
        _update(hasher, f"{type(obj).__name__}:{obj!r}")
    elif isinstance(obj, float):
        _update(hasher, f"float:{obj.hex() if obj == obj else 'nan'}")
    elif isinstance(obj, bytes):
        _update(hasher, "bytes")
        hasher.update(obj)
    elif isinstance(obj, Enum):
        _fingerprint_into(obj.value, hasher)
    elif isinstance(obj, np.ndarray):
        _update(hasher, f"ndarray:{obj.dtype.str}:{obj.shape}")
        hasher.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        _fingerprint_into(obj.item(), hasher)
    elif isinstance(obj, (list, tuple)):
        _update(hasher, f"{type(obj).__name__}[{len(obj)}]")
        for item in obj:
            _fingerprint_into(item, hasher)
    elif isinstance(obj, (set, frozenset)):
        _update(hasher, f"set[{len(obj)}]")
        for item in sorted(obj, key=repr):
            _fingerprint_into(item, hasher)
    elif isinstance(obj, dict):
        _update(hasher, f"dict[{len(obj)}]")
        for key in sorted(obj, key=repr):
            _fingerprint_into(key, hasher)
            _fingerprint_into(obj[key], hasher)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        _update(hasher, f"dataclass:{type(obj).__name__}")
        for f in dataclasses.fields(obj):
            _update(hasher, f.name)
            _fingerprint_into(getattr(obj, f.name), hasher)
    else:
        # Arbitrary objects (e.g. QuantizedModel and its QLayers): fall back
        # to pickle, which is content-deterministic for numpy/graph objects
        # built the same way.
        _update(hasher, f"pickle:{type(obj).__name__}")
        hasher.update(pickle.dumps(obj, protocol=4))


def fingerprint(obj: Any) -> str:
    """Stable content digest (sha256 hex) of an arbitrary artifact/config.

    Dataclasses, dicts, sequences, numpy arrays and scalars are hashed
    structurally (order-independent for mappings); other objects fall back to
    their pickle byte stream.  Two objects with equal content produce equal
    fingerprints within and across processes.
    """
    hasher = hashlib.sha256()
    _fingerprint_into(obj, hasher)
    return hasher.hexdigest()


# --------------------------------------------------------------------------- store
class ArtifactStore:
    """Content-addressed artifact cache, on disk or in memory.

    The store is safe for concurrent readers and writers sharing one root --
    serving workers reading deployments while a background ``explore
    --resume`` keeps writing, several processes resuming against the same
    cache, or multiple threads inside one process.  Writes publish through a
    uniquely-named temp file plus an atomic rename, so a reader either sees a
    complete artifact or none; reads retry briefly when they race a writer's
    rename and then degrade to a cache miss.  Because keys are content
    hashes, two writers racing on the same key write identical payloads and
    either rename is correct.

    Parameters
    ----------
    root:
        Directory holding the cached artifacts.  ``None`` keeps everything in
        a process-local dict (no persistence), which is the default store of
        ad-hoc :class:`~repro.workflow.experiment.Experiment` runs.
    """

    #: How often a reader retries after hitting a torn/partial file.
    _READ_RETRIES = 3
    #: Pause between read retries (seconds).
    _READ_RETRY_DELAY = 0.02

    def __init__(self, root: Optional[PathLike] = None):
        self.root = Path(root) if root is not None else None
        self._memory: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self._tmp_counter = 0
        if self.root is not None:
            if self.root.exists() and not self.root.is_dir():
                raise ValueError(
                    f"artifact store root {self.root} exists and is not a directory"
                )
            self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ paths
    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.pkl"

    @property
    def persistent(self) -> bool:
        """True when artifacts are written to disk."""
        return self.root is not None

    def _tmp_path(self, path: Path) -> Path:
        """A collision-free temp name: unique per process *and* per thread/write."""
        with self._lock:
            self._tmp_counter += 1
            n = self._tmp_counter
        return path.with_name(f"{path.name}.{os.getpid()}.{n}.tmp")

    # ------------------------------------------------------------------ access
    def has(self, key: str) -> bool:
        """Whether an artifact is cached under ``key``."""
        with self._lock:
            if key in self._memory:
                return True
        return self.root is not None and self._path(key).exists()

    def save(self, key: str, value: Any) -> str:
        """Store ``value`` under ``key`` and return the key."""
        with self._lock:
            self._memory[key] = value
        if self.root is not None:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self._tmp_path(path)
            try:
                with tmp.open("wb") as fh:
                    pickle.dump({"format": STORE_FORMAT_VERSION, "value": value}, fh, protocol=4)
                tmp.replace(path)  # atomic publish: readers never see partial writes
            except BaseException:
                tmp.unlink(missing_ok=True)
                raise
        return key

    def _load_disk(self, key: str, path: Path) -> Any:
        """Read one on-disk artifact, retrying around racing writers."""
        for attempt in range(self._READ_RETRIES + 1):
            try:
                with path.open("rb") as fh:
                    payload = pickle.load(fh)
                break
            except FileNotFoundError:
                raise KeyError(f"no artifact cached under {key!r}") from None
            except (EOFError, pickle.UnpicklingError):
                # A torn read can only happen against a non-atomic writer
                # (e.g. a copy onto the store from outside); give the writer
                # a moment, then treat the artifact as a cache miss rather
                # than poisoning the run.
                if attempt == self._READ_RETRIES:
                    raise KeyError(f"artifact {key!r} is unreadable (partial write?)") from None
                time.sleep(self._READ_RETRY_DELAY)
        if payload.get("format") != STORE_FORMAT_VERSION:
            # A format bump turns old artifacts into cache misses.
            raise KeyError(
                f"artifact {key!r} was written with store format "
                f"{payload.get('format')!r}, expected {STORE_FORMAT_VERSION}"
            )
        return payload["value"]

    def load(self, key: str) -> Any:
        """Retrieve the artifact stored under ``key`` (``KeyError`` if absent)."""
        with self._lock:
            if key in self._memory:
                return self._memory[key]
        if self.root is not None:
            path = self._path(key)
            if path.exists():
                value = self._load_disk(key, path)
                with self._lock:
                    self._memory[key] = value
                return value
        raise KeyError(f"no artifact cached under {key!r}")

    def get(self, key: str, default: Any = None) -> Any:
        """Like :meth:`load` but returning ``default`` for missing keys."""
        try:
            return self.load(key)
        except KeyError:
            return default

    # ------------------------------------------------------------------ maintenance
    def keys(self) -> List[str]:
        """Keys of every cached artifact (memory plus disk)."""
        with self._lock:
            keys = set(self._memory)
        if self.root is not None:
            keys.update(p.stem for p in self.root.glob("*/*.pkl"))
        return sorted(keys)

    def clear(self) -> None:
        """Drop every cached artifact."""
        with self._lock:
            self._memory.clear()
        if self.root is not None:
            for path in self.root.glob("*/*.pkl"):
                path.unlink(missing_ok=True)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self.has(key)

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        where = str(self.root) if self.root is not None else "memory"
        return f"ArtifactStore({where!r}, {len(self)} artifacts)"
