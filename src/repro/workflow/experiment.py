"""The incremental experiment runner: a stage DAG over an artifact store.

:class:`Experiment` wires :class:`~repro.workflow.stage.Stage` objects
together by artifact name, executes them in dependency order and caches every
stage output in a content-addressed
:class:`~repro.workflow.artifacts.ArtifactStore`.  Cache keys chain through
the graph, so re-running an experiment with an unchanged configuration
executes *zero* stage bodies, while changing one stage's configuration (say,
the tau sweep of the DSE stage) re-runs only that stage and its dependents --
quantization, calibration and significance come straight back from the store.

Typical use::

    experiment = Experiment.from_quantized(
        qmodel, calib_images, eval_images, eval_labels,
        dse_config=DSEConfig(tau_values=[0.0, 0.01, 0.05]),
        store=ArtifactStore("runs/cache"),
    )
    result = experiment.run()          # executes unpack/calibrate/significance/dse
    result = experiment.run()          # pure cache: result.executed_stages == []
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.dse import DSEConfig, DSEResult
from repro.isa.profiles import BoardProfile, STM32U575
from repro.quant.quantizer import PTQConfig
from repro.utils.logging import get_logger
from repro.workflow.artifacts import ArtifactStore, fingerprint
from repro.workflow.stage import Stage, StageContext
from repro.workflow.stages import (
    CalibrateStage,
    DSEStage,
    QuantizeStage,
    SignificanceStage,
    UnpackStage,
)

logger = get_logger("workflow.experiment")


class ExperimentError(RuntimeError):
    """Raised when an experiment's stage graph is malformed."""


@dataclass
class StageExecution:
    """Bookkeeping record of one stage's execution (or cache hit)."""

    stage: str
    signature: str
    cached: bool


@dataclass
class ExperimentResult:
    """Artifacts plus execution records of one experiment run."""

    artifacts: Dict[str, Any]
    executions: List[StageExecution] = field(default_factory=list)

    @property
    def executed_stages(self) -> List[str]:
        """Names of the stages whose bodies actually ran."""
        return [e.stage for e in self.executions if not e.cached]

    @property
    def cached_stages(self) -> List[str]:
        """Names of the stages served entirely from the artifact store."""
        return [e.stage for e in self.executions if e.cached]

    def __getitem__(self, name: str) -> Any:
        return self.artifacts[name]

    def __contains__(self, name: object) -> bool:
        return name in self.artifacts

    def get(self, name: str, default: Any = None) -> Any:
        """Artifact by name, or ``default`` when the experiment lacks it."""
        return self.artifacts.get(name, default)

    # ------------------------------------------------------------------ convenience views
    @property
    def dse(self) -> DSEResult:
        """The design-space exploration outcome."""
        return self.artifacts["dse"]

    @property
    def baseline_accuracy(self) -> float:
        """Accuracy of the exact quantized model on the DSE evaluation set."""
        return self.dse.baseline_accuracy

    def pareto_points(self):
        """Pareto-optimal designs of the exploration."""
        return self.dse.pareto_points()

    def select(self, max_accuracy_loss: float):
        """Best design within an accuracy-loss budget (paper stage 5)."""
        return self.dse.best_within_loss(max_accuracy_loss)


class Experiment:
    """A composable, incrementally cached experiment.

    Parameters
    ----------
    stages:
        The stage graph; order is irrelevant (stages are topologically sorted
        by their ``requires``/``provides`` declarations).
    inputs:
        Root artifacts (e.g. ``qmodel``, ``calibration_images``); their
        content digests seed the cache-key chain.
    store:
        Artifact cache.  Defaults to a fresh in-memory store; pass an
        :class:`ArtifactStore` with a root directory to persist artifacts
        across processes (the CLI's ``--resume``).
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        inputs: Optional[Dict[str, Any]] = None,
        store: Optional[ArtifactStore] = None,
    ):
        self.stages = list(stages)
        self.inputs: Dict[str, Any] = dict(inputs or {})
        self.store = store if store is not None else ArtifactStore()
        self._validate()

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_quantized(
        cls,
        qmodel,
        calibration_images: np.ndarray,
        eval_images: np.ndarray,
        eval_labels: np.ndarray,
        *,
        board: BoardProfile = STM32U575,
        dse_config: Optional[DSEConfig] = None,
        metric: str = "expected_contribution",
        include_dense: bool = False,
        store: Optional[ArtifactStore] = None,
        extra_stages: Sequence[Stage] = (),
    ) -> "Experiment":
        """The standard ATAMAN flow starting from an already quantized model."""
        stages: List[Stage] = [
            UnpackStage(include_dense=include_dense),
            CalibrateStage(include_dense=include_dense),
            SignificanceStage(metric=metric, include_dense=include_dense),
            DSEStage(dse_config=dse_config, board=board),
            *extra_stages,
        ]
        inputs = {
            "qmodel": qmodel,
            "calibration_images": np.asarray(calibration_images, dtype=np.float32),
            "eval_images": np.asarray(eval_images, dtype=np.float32),
            "eval_labels": np.asarray(eval_labels),
        }
        return cls(stages, inputs=inputs, store=store)

    @classmethod
    def from_float(
        cls,
        model,
        calibration_images: np.ndarray,
        eval_images: np.ndarray,
        eval_labels: np.ndarray,
        *,
        board: BoardProfile = STM32U575,
        ptq_config: Optional[PTQConfig] = None,
        dse_config: Optional[DSEConfig] = None,
        metric: str = "expected_contribution",
        include_dense: bool = False,
        store: Optional[ArtifactStore] = None,
        extra_stages: Sequence[Stage] = (),
    ) -> "Experiment":
        """The standard flow starting from a trained float model (adds quantization)."""
        stages: List[Stage] = [
            QuantizeStage(ptq_config=ptq_config),
            UnpackStage(include_dense=include_dense),
            CalibrateStage(include_dense=include_dense),
            SignificanceStage(metric=metric, include_dense=include_dense),
            DSEStage(dse_config=dse_config, board=board),
            *extra_stages,
        ]
        inputs = {
            "float_model": model,
            "calibration_images": np.asarray(calibration_images, dtype=np.float32),
            "eval_images": np.asarray(eval_images, dtype=np.float32),
            "eval_labels": np.asarray(eval_labels),
        }
        return cls(stages, inputs=inputs, store=store)

    # ------------------------------------------------------------------ graph handling
    def _validate(self) -> None:
        seen_names = set()
        provided: Dict[str, str] = {}
        for stage in self.stages:
            if stage.name in seen_names:
                raise ExperimentError(f"duplicate stage name {stage.name!r}")
            seen_names.add(stage.name)
            for artifact in stage.provides:
                if artifact in provided:
                    raise ExperimentError(
                        f"artifact {artifact!r} is provided by both "
                        f"{provided[artifact]!r} and {stage.name!r}"
                    )
                if artifact in self.inputs:
                    raise ExperimentError(
                        f"artifact {artifact!r} is both an experiment input and "
                        f"an output of stage {stage.name!r}"
                    )
                provided[artifact] = stage.name

    def ordered_stages(self) -> List[Stage]:
        """Stages in dependency order (Kahn's algorithm over artifact names)."""
        producer: Dict[str, Stage] = {}
        for stage in self.stages:
            for artifact in stage.provides:
                producer[artifact] = stage
        ordered: List[Stage] = []
        visiting: set = set()
        done: set = set()

        def visit(stage: Stage) -> None:
            if stage.name in done:
                return
            if stage.name in visiting:
                raise ExperimentError(f"stage dependency cycle through {stage.name!r}")
            visiting.add(stage.name)
            for artifact in stage.requires:
                if artifact in self.inputs:
                    continue
                if artifact not in producer:
                    raise ExperimentError(
                        f"stage {stage.name!r} requires artifact {artifact!r}, which is "
                        f"neither an experiment input ({sorted(self.inputs)}) nor provided "
                        f"by any stage"
                    )
                visit(producer[artifact])
            visiting.discard(stage.name)
            done.add(stage.name)
            ordered.append(stage)

        for stage in self.stages:
            visit(stage)
        return ordered

    # ------------------------------------------------------------------ execution
    def run(self) -> ExperimentResult:
        """Execute the stage graph, serving unchanged stages from the store."""
        artifacts: Dict[str, Any] = dict(self.inputs)
        digests: Dict[str, str] = {name: fingerprint(value) for name, value in self.inputs.items()}
        executions: List[StageExecution] = []

        miss = object()
        for stage in self.ordered_stages():
            signature = stage.signature(digests)
            cached_outputs = self.store.get(signature, miss)
            if cached_outputs is not miss:
                outputs = cached_outputs
                cached = True
                logger.info("stage %s: cache hit (%s)", stage.name, signature[:12])
            else:
                ctx = StageContext({name: artifacts[name] for name in stage.requires})
                outputs = stage.run(ctx)
                missing = set(stage.provides) - set(outputs)
                extra = set(outputs) - set(stage.provides)
                if missing or extra:
                    raise ExperimentError(
                        f"stage {stage.name!r} returned artifacts {sorted(outputs)}, "
                        f"declared provides={list(stage.provides)}"
                    )
                self.store.save(signature, outputs)
                cached = False
                logger.info("stage %s: executed (%s)", stage.name, signature[:12])
            artifacts.update(outputs)
            # Downstream keys chain off the producing stage's signature instead
            # of re-hashing (potentially large) output artifacts.
            for artifact in stage.provides:
                digests[artifact] = fingerprint((signature, artifact))
            executions.append(StageExecution(stage=stage.name, signature=signature, cached=cached))

        return ExperimentResult(artifacts=artifacts, executions=executions)
