"""Concrete stages of the cooperative approximation framework.

These map the paper's Fig. 1 flow onto the :class:`~repro.workflow.stage.Stage`
protocol::

    QuantizeStage      float_model + calibration_images -> qmodel
    UnpackStage        qmodel                           -> unpacked       (stage 1)
    CalibrateStage     qmodel + calibration_images      -> calibration    (stage 2)
    SignificanceStage  qmodel + calibration             -> significance   (stage 3)
    DSEStage           qmodel + significance + ...      -> dse            (stage 5)
    CodegenStage       unpacked + significance + dse    -> code           (stage 4)
    VerifyStage        qmodel + significance + ...      -> verification
    DeployStage        qmodel + significance + dse      -> deployment

Each stage declares exactly what it consumes and produces, so the
:class:`~repro.workflow.experiment.Experiment` runner can order them, cache
their outputs content-addressed and re-run only what a config change touches.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.core.calibration import ActivationCalibrator
from repro.core.codegen import generate_model_code
from repro.core.config import ApproxConfig
from repro.core.dse import DSEConfig, run_dse
from repro.core.significance import compute_significance
from repro.core.unpacking import unpack_model
from repro.isa.profiles import BoardProfile, STM32U575
from repro.quant.quantizer import PTQConfig, quantize_model
from repro.registry import ENGINES, SEARCH_STRATEGIES
from repro.utils.rng import SeedLike
from repro.workflow.stage import Stage, StageContext


def _class_identity(cls: type) -> str:
    """Qualified class name used to tie cache keys to the resolved implementation."""
    return f"{cls.__module__}.{cls.__qualname__}"


class QuantizeStage(Stage):
    """Post-training-quantize a float model into the deployable int8 artefact."""

    name = "quantize"
    requires = ("float_model", "calibration_images")
    provides = ("qmodel",)

    def __init__(self, ptq_config: Optional[PTQConfig] = None, model_name: Optional[str] = None):
        self.ptq_config = ptq_config
        self.model_name = model_name

    def config(self) -> Dict[str, Any]:
        """PTQ configuration + model name (the cache key)."""
        return {"ptq_config": self.ptq_config, "model_name": self.model_name}

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Quantize the float model against the calibration images."""
        kwargs = {"name": self.model_name} if self.model_name else {}
        qmodel = quantize_model(
            ctx["float_model"], ctx["calibration_images"], config=self.ptq_config, **kwargs
        )
        return {"qmodel": qmodel}


class UnpackStage(Stage):
    """Stage 1: layer-based code unpacking."""

    name = "unpack"
    requires = ("qmodel",)
    provides = ("unpacked",)

    def __init__(self, include_dense: bool = False):
        self.include_dense = bool(include_dense)

    def config(self) -> Dict[str, Any]:
        """Unpacking options hashed into the cache key."""
        return {"include_dense": self.include_dense}

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Unpack every conv (optionally dense) layer of the quantized model."""
        return {"unpacked": unpack_model(ctx["qmodel"], include_dense=self.include_dense)}


class CalibrateStage(Stage):
    """Stage 2: capture the input distribution E[a_i] on a calibration subset."""

    name = "calibrate"
    requires = ("qmodel", "calibration_images")
    provides = ("calibration",)

    def __init__(self, include_dense: bool = False, batch_size: int = 32):
        self.include_dense = bool(include_dense)
        self.batch_size = int(batch_size)

    def config(self) -> Dict[str, Any]:
        """Calibration options hashed into the cache key."""
        return {"include_dense": self.include_dense, "batch_size": self.batch_size}

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Capture per-operand mean activations on the calibration subset."""
        calibrator = ActivationCalibrator(
            ctx["qmodel"], include_dense=self.include_dense, batch_size=self.batch_size
        )
        return {"calibration": calibrator.calibrate(ctx["calibration_images"])}


class SignificanceStage(Stage):
    """Stage 3: per-operand significance (paper Eq. 2, or any registered metric)."""

    name = "significance"
    requires = ("qmodel", "calibration")
    provides = ("significance",)

    def __init__(
        self,
        metric: str = "expected_contribution",
        include_dense: bool = False,
        rng: SeedLike = 0,
    ):
        self.metric = metric
        self.include_dense = bool(include_dense)
        self.rng = rng

    def config(self) -> Dict[str, Any]:
        """Metric choice + options hashed into the cache key."""
        return {"metric": self.metric, "include_dense": self.include_dense, "rng": self.rng}

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Score every operand with the registered significance metric."""
        significance = compute_significance(
            ctx["qmodel"],
            ctx["calibration"],
            metric=self.metric,
            include_dense=self.include_dense,
            rng=self.rng,
        )
        return {"significance": significance}


class DSEStage(Stage):
    """Stage 5: design-space exploration with the configured search strategy."""

    name = "dse"
    requires = ("qmodel", "significance", "unpacked", "eval_images", "eval_labels")
    provides = ("dse",)

    def __init__(self, dse_config: Optional[DSEConfig] = None, board: Optional[BoardProfile] = None):
        self.dse_config = dse_config or DSEConfig()
        self.board = board

    def config(self) -> Dict[str, Any]:
        """DSE configuration + resolved strategy class (the cache key)."""
        # n_workers only parallelises the sweep -- it cannot change the result,
        # so it is normalised out of the cache key.  The resolved strategy
        # class is hashed alongside its registry name, so re-registering a
        # different implementation under the same name invalidates the cache.
        return {
            "dse_config": replace(self.dse_config, n_workers=None),
            "board": self.board,
            "strategy_class": _class_identity(SEARCH_STRATEGIES.resolve(self.dse_config.strategy)),
        }

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Sweep the design space and return the Pareto-annotated result."""
        dse = run_dse(
            ctx["qmodel"],
            ctx["significance"],
            ctx["eval_images"],
            ctx["eval_labels"],
            dse_config=self.dse_config,
            unpacked=ctx["unpacked"],
            board=self.board,
        )
        return {"dse": dse}


class CodegenStage(Stage):
    """Stage 4: emit the (approximate) unpacked C-like kernel code.

    The emitted design is either an explicit :class:`ApproxConfig` or, when a
    ``max_accuracy_loss`` budget is given, the best design the DSE found
    within that budget (falling back to exact code when nothing qualifies and
    no budget/config is set).
    """

    name = "codegen"
    requires = ("qmodel", "unpacked", "significance", "dse")
    provides = ("code",)

    def __init__(
        self,
        approx_config: Optional[ApproxConfig] = None,
        max_accuracy_loss: Optional[float] = None,
    ):
        if approx_config is not None and max_accuracy_loss is not None:
            raise ValueError("pass either an explicit config or a loss budget, not both")
        self.approx_config = approx_config
        self.max_accuracy_loss = max_accuracy_loss
        # The DSE result is only consumed when selecting by loss budget, so an
        # explicit-config codegen composes without a DSE stage in the graph.
        if max_accuracy_loss is None:
            self.requires = ("qmodel", "unpacked", "significance")

    def config(self) -> Dict[str, Any]:
        """Design selection (explicit config or loss budget) hashed into the key."""
        return {"approx_config": self.approx_config, "max_accuracy_loss": self.max_accuracy_loss}

    def _selected_config(self, ctx: StageContext) -> Optional[ApproxConfig]:
        if self.approx_config is not None:
            return self.approx_config
        if self.max_accuracy_loss is None:
            return None
        design = ctx["dse"].best_within_loss(self.max_accuracy_loss)
        if design is None:
            raise ValueError(
                f"no design satisfies an accuracy-loss budget of {self.max_accuracy_loss:.3f}"
            )
        return design.config

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Emit the C-like kernel code for the selected design."""
        config = self._selected_config(ctx)
        masks = (
            config.build_masks(ctx["significance"], unpacked=ctx["unpacked"])
            if config is not None and not config.is_exact
            else None
        )
        code = generate_model_code(
            ctx["unpacked"], masks=masks, model_name=ctx["qmodel"].name
        )
        return {"code": code}


class VerifyStage(Stage):
    """Differentially verify the generated code through the ISA virtual machine.

    Every selected design is lowered to the instruction IR and executed on
    real inputs in the requested VM modes; the stage asserts bit-identical
    int8 outputs against the :class:`~repro.quant.qmodel.QuantizedModel`
    kernel path and attaches a traced-vs-analytic cycle calibration report
    per design (see :mod:`repro.vm.verify`).

    Designs come either from the in-graph ``dse`` artifact (the Pareto front,
    thinned to ``max_designs``) or, when ``taus`` is given, from explicit
    uniform-tau configurations (exact always included) -- the latter composes
    without a DSE stage in the graph.

    With ``calibrate_cost_model=True`` the stage additionally provides a
    ``cost_calibration`` artifact: the exact design's traced-vs-analytic
    :class:`~repro.vm.verify.CalibrationReport` together with the
    trace-derived ``UNPACKED`` parameter overrides
    (:meth:`~repro.vm.verify.CalibrationReport.suggested_cost_overrides`),
    ready to apply through the PR-4 override hooks
    (:func:`repro.isa.cost_model.set_cost_param_overrides`).
    """

    name = "verify"
    requires = ("qmodel", "unpacked", "significance", "dse", "eval_images")
    provides = ("verification",)

    def __init__(
        self,
        taus: Optional[list] = None,
        max_designs: int = 4,
        n_samples: int = 32,
        modes: tuple = ("interp", "turbo"),
        strict: bool = False,
        calibrate_cost_model: bool = False,
    ):
        self.taus = None if taus is None else [float(t) for t in taus]
        self.max_designs = int(max_designs)
        self.n_samples = int(n_samples)
        self.modes = tuple(modes)
        if not self.modes:
            raise ValueError("VerifyStage needs at least one VM execution mode")
        self.strict = bool(strict)
        self.calibrate_cost_model = bool(calibrate_cost_model)
        if self.taus is not None:
            self.requires = ("qmodel", "unpacked", "significance", "eval_images")
        if self.calibrate_cost_model:
            self.provides = ("verification", "cost_calibration")

    def config(self) -> Dict[str, Any]:
        """Verification scope (designs, modes, sample count) hashed into the key."""
        return {
            "taus": self.taus,
            "max_designs": self.max_designs,
            "n_samples": self.n_samples,
            "modes": self.modes,
            "strict": self.strict,
            "calibrate_cost_model": self.calibrate_cost_model,
        }

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Run every selected design through the VM; assert bit-identical outputs."""
        from repro.vm.verify import uniform_tau_configs, verify_designs, verify_dse

        qmodel = ctx["qmodel"]
        images = ctx["eval_images"][: self.n_samples]
        common = {
            "significance": ctx["significance"],
            "unpacked": ctx["unpacked"],
            "modes": self.modes,
            "strict": self.strict,
        }
        if self.taus is not None:
            configs = uniform_tau_configs(qmodel, ctx["unpacked"], self.taus)
            report = verify_designs(qmodel, configs, images, **common)
        else:
            report = verify_dse(
                qmodel, ctx["dse"], images, max_designs=self.max_designs, **common
            )
        outputs: Dict[str, Any] = {"verification": report}
        if self.calibrate_cost_model:
            # Derive the overrides from the least-masked design: the exact
            # design when present, otherwise the first (most accurate) one.
            design = next((d for d in report.designs if not d.taus), report.designs[0])
            outputs["cost_calibration"] = {
                "report": design.calibration,
                "overrides": design.calibration.suggested_cost_overrides(),
            }
        return outputs


class ServeStage(Stage):
    """Turn DSE output into a servable :class:`~repro.serving.deployment.Deployment`.

    The stage prebuilds every service level's skip masks and per-sample
    simulated MCU cycle cost, so the resulting artifact is ready for the
    batching scheduler with zero warm-up -- and, like any other stage output,
    it is cached content-addressed: unchanged model/significance/DSE inputs
    serve the deployment straight from the artifact store.

    Service levels come either from the in-graph ``dse`` artifact (the
    default) or from an explicit ``points`` table (the JSON written by
    ``repro-tinyml explore``), in which case no DSE stage is needed.

    A graph can hold *several* serve stages -- one per model of a
    multi-deployment scheduler -- by giving each a distinct ``artifact``
    name (which also namespaces the stage name, keeping the graph's
    uniqueness invariants) and remapping its inputs via ``inputs`` (e.g.
    ``{"qmodel": "qmodel_alexnet"}``) to model-specific upstream artifacts.
    Both knobs are part of the content-addressed cache key, so two serve
    stages over different inputs never collide in the artifact store.
    """

    name = "serve"
    requires = ("qmodel", "significance", "unpacked", "dse")
    provides = ("serving",)

    def __init__(
        self,
        points: Optional[list] = None,
        max_levels: int = 8,
        board: BoardProfile = STM32U575,
        cycle_source: str = "analytic",
        artifact: str = "serving",
        inputs: Optional[Dict[str, str]] = None,
    ):
        self.points = None if points is None else [dict(p) for p in points]
        self.max_levels = int(max_levels)
        self.board = board
        self.cycle_source = str(cycle_source)
        self.artifact = str(artifact)
        if not self.artifact:
            raise ValueError("ServeStage artifact name must be non-empty")
        self.inputs = dict(inputs) if inputs else {}
        self.provides = (self.artifact,)
        if self.artifact != "serving":
            self.name = f"serve:{self.artifact}"
        # An explicit point table replaces the DSE artifact, so serving
        # composes without a DSE stage in the graph.
        base = ("qmodel", "significance", "unpacked")
        if self.points is None:
            base = base + ("dse",)
        unknown = set(self.inputs) - set(base)
        if unknown:
            raise ValueError(
                f"ServeStage inputs remap unknown artifacts {sorted(unknown)}; "
                f"remappable inputs are {sorted(base)}"
            )
        self.requires = tuple(self.inputs.get(name, name) for name in base)

    def _input(self, ctx: StageContext, name: str) -> Any:
        """Fetch a logical input through the per-stage artifact remap."""
        return ctx[self.inputs.get(name, name)]

    def config(self) -> Dict[str, Any]:
        """Level sources + build options hashed into the cache key."""
        return {
            "points": self.points,
            "max_levels": self.max_levels,
            "board": self.board,
            "cycle_source": self.cycle_source,
            "artifact": self.artifact,
            "inputs": dict(sorted(self.inputs.items())),
        }

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Build the deployment (service levels with prebuilt masks + costs)."""
        from repro.serving.deployment import Deployment

        common = {
            "significance": self._input(ctx, "significance"),
            "unpacked": self._input(ctx, "unpacked"),
            "board": self.board,
            "max_levels": self.max_levels,
            "cycle_source": self.cycle_source,
        }
        qmodel = self._input(ctx, "qmodel")
        if self.points is not None:
            deployment = Deployment.from_points(qmodel, self.points, **common)
        else:
            deployment = Deployment.from_dse(qmodel, self._input(ctx, "dse"), **common)
        return {self.artifact: deployment}


class DeployStage(Stage):
    """Select a design within a loss budget and deploy it on the board model."""

    name = "deploy"
    requires = ("qmodel", "significance", "unpacked", "dse", "eval_images", "eval_labels")
    provides = ("deployment",)

    def __init__(
        self,
        max_accuracy_loss: float = 0.0,
        board: BoardProfile = STM32U575,
        engine: str = "ataman",
        eval_samples: Optional[int] = None,
        strict: bool = False,
    ):
        self.max_accuracy_loss = float(max_accuracy_loss)
        self.board = board
        self.engine = engine
        self.eval_samples = eval_samples
        self.strict = bool(strict)

    def config(self) -> Dict[str, Any]:
        """Deployment target + resolved engine class (the cache key)."""
        return {
            "max_accuracy_loss": self.max_accuracy_loss,
            "board": self.board,
            "engine": self.engine,
            "engine_class": _class_identity(ENGINES.resolve(self.engine)),
            "eval_samples": self.eval_samples,
            "strict": self.strict,
        }

    def run(self, ctx: StageContext) -> Dict[str, Any]:
        """Deploy the best in-budget design through the selected engine."""
        from repro.mcu.deploy import deploy as mcu_deploy

        qmodel = ctx["qmodel"]
        engine_cls = ENGINES.resolve(self.engine)
        if getattr(engine_cls, "supports_approx", False):
            design = ctx["dse"].best_within_loss(self.max_accuracy_loss)
            if design is None:
                raise ValueError(
                    f"no design satisfies an accuracy-loss budget of {self.max_accuracy_loss:.3f}"
                )
            engine = engine_cls(
                qmodel,
                config=design.config,
                significance=ctx["significance"],
                unpacked=ctx["unpacked"],
            )
        else:
            engine = engine_cls(qmodel)
        images = ctx["eval_images"]
        labels = ctx["eval_labels"]
        if self.eval_samples is not None:
            images = images[: self.eval_samples]
            labels = labels[: self.eval_samples]
        report = mcu_deploy(
            engine,
            self.board,
            eval_images=images,
            eval_labels=labels,
            model_name=qmodel.name,
            strict=self.strict,
        )
        return {"deployment": report}
