"""Shared utilities: RNG handling, logging, serialization, parallel map, validation."""

from repro.utils.rng import RngMixin, as_rng, spawn_rngs
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.serialization import load_json, load_npz, save_json, save_npz
from repro.utils.parallel import parallel_map
from repro.utils.validation import (
    check_positive,
    check_in_range,
    check_shape,
    check_dtype,
    check_choice,
)

__all__ = [
    "RngMixin",
    "as_rng",
    "spawn_rngs",
    "get_logger",
    "set_verbosity",
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
    "parallel_map",
    "check_positive",
    "check_in_range",
    "check_shape",
    "check_dtype",
    "check_choice",
]
