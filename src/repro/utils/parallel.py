"""A small, dependency-free parallel map used by the DSE.

The paper's design-space exploration evaluated >10,000 approximate
configurations offline using 6 CPU threads.  Our DSE uses the same pattern:
the work items are pure functions of picklable arguments, so a process pool
is sufficient.  For small workloads (or ``n_workers <= 1``) we fall back to a
plain serial loop to avoid pool start-up overhead -- profiling first,
parallelising only when it pays off, per the HPC guides.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Default worker count: all cores minus one, at least one."""
    return max(1, (os.cpu_count() or 1) - 1)


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    n_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    min_items_for_pool: int = 8,
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
) -> List[R]:
    """Map ``func`` over ``items``, optionally using a process pool.

    Parameters
    ----------
    func:
        Picklable callable applied to each item.
    items:
        Work items; materialised into a list.
    n_workers:
        Number of worker processes.  ``None`` uses :func:`default_workers`;
        ``0`` or ``1`` forces serial execution.
    chunksize:
        Items handed to each worker at a time (larger amortises IPC
        overhead).  ``None`` picks ``len(items) / (4 * n_workers)`` -- a few
        chunks per worker for load balance without per-item IPC.
    min_items_for_pool:
        Below this many items the serial path is always used.
    initializer, initargs:
        Per-worker setup hook: use it to ship large *invariant* state to each
        worker once (e.g. as module globals) instead of pickling it into
        every work item.  The serial path calls it once in-process.

    Returns
    -------
    list
        Results in input order.
    """
    items = list(items)
    if n_workers is None:
        n_workers = default_workers()
    if n_workers <= 1 or len(items) < min_items_for_pool:
        if initializer is not None:
            initializer(*initargs)
        return [func(item) for item in items]
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * n_workers))
    with ProcessPoolExecutor(
        max_workers=n_workers, initializer=initializer, initargs=initargs
    ) as pool:
        return list(pool.map(func, items, chunksize=max(1, chunksize)))


class WorkerPool:
    """A persistent process pool with per-worker initializer state.

    :func:`parallel_map` spins a pool up and down per call, which is right
    for one-shot sweeps like the DSE but wrong for long-lived consumers such
    as the serving scheduler, where the pool (and the model replica each
    worker holds) must outlive any single batch.  ``WorkerPool`` keeps the
    executor alive until :meth:`shutdown`; the ``initializer`` runs once per
    worker process and typically installs large invariant state (a model
    replica) as module globals.

    Usable as a context manager; ``n_workers <= 1`` raises -- callers should
    use the serial path directly instead of paying pool overhead.
    """

    def __init__(
        self,
        n_workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
    ):
        if n_workers <= 1:
            raise ValueError("WorkerPool needs n_workers >= 2; run serially otherwise")
        self.n_workers = int(n_workers)
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers, initializer=initializer, initargs=initargs
        )

    def submit(self, func: Callable[..., R], *args) -> "Future[R]":
        """Schedule ``func(*args)`` on a worker; returns the future."""
        return self._pool.submit(func, *args)

    def map(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``func`` to every item concurrently; results in input order."""
        futures = [self._pool.submit(func, item) for item in items]
        return [f.result() for f in futures]

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers (idempotent)."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
