"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps runs
reproducible and makes it easy to spawn independent child generators for
parallel work (the recommended NumPy pattern, see the SeedSequence docs).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list:
    """Spawn ``n`` statistically independent generators from a single seed.

    Uses ``SeedSequence.spawn`` so children are independent regardless of the
    order in which they are consumed -- important for parallel DSE workers.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's bit stream.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class RngMixin:
    """Mixin providing a lazily-created ``self.rng`` generator.

    Classes using the mixin should set ``self._seed`` (possibly ``None``)
    in their ``__init__``.
    """

    _seed: SeedLike = None
    _rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        """The instance's random generator (created on first access)."""
        if self._rng is None:
            self._rng = as_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the generator with a new seed."""
        self._seed = seed
        self._rng = as_rng(seed)


def permutation_batches(
    n_items: int, batch_size: int, rng: SeedLike = None, drop_last: bool = False
) -> Iterable[np.ndarray]:
    """Yield shuffled index batches covering ``range(n_items)``.

    Parameters
    ----------
    n_items:
        Total number of indices.
    batch_size:
        Number of indices per batch (the final batch may be smaller unless
        ``drop_last``).
    rng:
        Seed or generator used for the shuffle.
    drop_last:
        Drop the trailing partial batch.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    gen = as_rng(rng)
    order = gen.permutation(n_items)
    for start in range(0, n_items, batch_size):
        batch = order[start : start + batch_size]
        if drop_last and batch.shape[0] < batch_size:
            return
        yield batch


def deterministic_hash(values: Sequence) -> int:
    """Return a small deterministic hash of a sequence of hashables.

    Unlike built-in ``hash`` this is stable across interpreter runs, which
    keeps derived seeds reproducible.
    """
    acc = 0x811C9DC5
    for value in values:
        for byte in repr(value).encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x01000193) % (2**32)
    return acc
