"""Small argument-validation helpers producing consistent error messages."""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Raise ``ValueError`` unless ``value`` is (strictly) positive."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    inclusive: Tuple[bool, bool] = (True, True),
) -> float:
    """Raise ``ValueError`` unless ``low <(=) value <(=) high``."""
    lo_ok = value >= low if inclusive[0] else value > low
    hi_ok = value <= high if inclusive[1] else value < high
    if not (lo_ok and hi_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ValueError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value!r}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence[int | None]) -> np.ndarray:
    """Validate an array's shape; ``None`` entries act as wildcards."""
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ValueError(f"{name} must have {len(shape)} dims, got shape {array.shape}")
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} has shape {array.shape}, expected {tuple(shape)} (mismatch at axis {axis})"
            )
    return array


def check_dtype(name: str, array: np.ndarray, dtypes: Iterable[Any]) -> np.ndarray:
    """Validate that ``array.dtype`` is one of ``dtypes``."""
    array = np.asarray(array)
    allowed = tuple(np.dtype(d) for d in dtypes)
    if array.dtype not in allowed:
        raise TypeError(f"{name} must have dtype in {allowed}, got {array.dtype}")
    return array


def check_choice(name: str, value: Any, choices: Iterable[Any]) -> Any:
    """Validate that ``value`` is one of ``choices``."""
    choices = tuple(choices)
    if value not in choices:
        raise ValueError(f"{name} must be one of {choices}, got {value!r}")
    return value
