"""JSON / NPZ serialization helpers with NumPy-aware encoding."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

PathLike = Union[str, Path]


class NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands NumPy scalars and arrays."""

    def default(self, obj: Any) -> Any:  # noqa: D102 - inherited
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(path: PathLike, payload: Mapping[str, Any], indent: int = 2) -> Path:
    """Write ``payload`` as JSON, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, cls=NumpyJSONEncoder, indent=indent, sort_keys=True)
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Load a JSON file into a dict."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)


def save_npz(path: PathLike, arrays: Mapping[str, np.ndarray], compress: bool = True) -> Path:
    """Save a mapping of arrays to ``.npz``; keys must be valid identifiers."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    saver = np.savez_compressed if compress else np.savez
    saver(path, **{str(k): np.asarray(v) for k, v in arrays.items()})
    return path


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an ``.npz`` file into a plain dict of arrays."""
    with np.load(Path(path), allow_pickle=False) as data:
        return {key: np.array(data[key]) for key in data.files}
