"""Lightweight logging helpers shared by the whole library."""

from __future__ import annotations

import logging
import sys

_ROOT_NAME = "repro"
_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    logger = logging.getLogger(_ROOT_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(asctime)s] %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        logger.addHandler(handler)
    logger.setLevel(logging.WARNING)
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace."""
    _configure_root()
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def set_verbosity(level: int | str) -> None:
    """Set the verbosity of every ``repro`` logger.

    Accepts either a ``logging`` level constant or its string name
    (``"DEBUG"``, ``"INFO"``...).
    """
    _configure_root()
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logging.getLogger(_ROOT_NAME).setLevel(level)


def configure_cli_verbosity(verbose: bool = False, quiet: bool = False) -> None:
    """Map the CLI's ``-v``/``-q`` flags to a root log level.

    ``-q`` wins over ``-v``; the default (neither flag) is ``WARNING``, which
    is why INFO-level events (level switches, serving lifecycle) only stream
    to stderr when ``-v`` is given.
    """
    if quiet:
        set_verbosity(logging.ERROR)
    elif verbose:
        set_verbosity(logging.INFO)
    else:
        set_verbosity(logging.WARNING)
