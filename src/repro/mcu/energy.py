"""Inference energy model.

Table II's energy column is consistent with a constant active power draw
(energy = latency x ~33 mW for every engine), so the energy model is simply
``E = P_active * t`` on the given board profile.  A small per-inference
static overhead term is exposed for sensitivity studies.
"""

from __future__ import annotations

from repro.isa.profiles import BoardProfile


def energy_mj(latency_ms: float, board: BoardProfile, static_overhead_mj: float = 0.0) -> float:
    """Energy in millijoules for one inference of ``latency_ms`` on ``board``."""
    if latency_ms < 0:
        raise ValueError("latency_ms must be non-negative")
    if static_overhead_mj < 0:
        raise ValueError("static_overhead_mj must be non-negative")
    return board.active_power_w * (latency_ms / 1e3) * 1e3 + static_overhead_mj
