"""Flash and RAM budgeting for deployed models.

Flash holds the model weights, the kernel code (stock library kernels or the
paper's unpacked per-layer code) and runtime support; RAM holds the
activation buffers (ping-pong double buffering as CMSIS-NN and TinyEngine
use), the im2col scratch buffer and the runtime's working memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.isa.profiles import BoardProfile


@dataclass
class FlashBudget:
    """Per-category flash usage in bytes."""

    weights: int = 0
    kernel_code: int = 0
    runtime: int = 0
    unpacked_code: int = 0

    @property
    def total(self) -> int:
        """Total flash bytes."""
        return int(self.weights + self.kernel_code + self.runtime + self.unpacked_code)

    @property
    def total_kb(self) -> float:
        """Total flash in KiB."""
        return self.total / 1024.0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view."""
        return {
            "weights": int(self.weights),
            "kernel_code": int(self.kernel_code),
            "runtime": int(self.runtime),
            "unpacked_code": int(self.unpacked_code),
            "total": self.total,
        }


@dataclass
class RamBudget:
    """Per-category RAM usage in bytes."""

    activations: int = 0
    im2col_buffer: int = 0
    runtime: int = 0

    @property
    def total(self) -> int:
        """Total RAM bytes."""
        return int(self.activations + self.im2col_buffer + self.runtime)

    @property
    def total_kb(self) -> float:
        """Total RAM in KiB."""
        return self.total / 1024.0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view."""
        return {
            "activations": int(self.activations),
            "im2col_buffer": int(self.im2col_buffer),
            "runtime": int(self.runtime),
            "total": self.total,
        }


@dataclass
class MemoryLayout:
    """Combined flash + RAM budget of a deployment."""

    flash: FlashBudget
    ram: RamBudget

    def fits(self, board: BoardProfile) -> bool:
        """Whether both budgets fit the board (capacity minus reserved)."""
        return (
            self.flash.total <= board.available_flash_bytes
            and self.ram.total <= board.available_ram_bytes
        )

    def flash_utilisation(self, board: BoardProfile) -> float:
        """Fraction of the board's flash used (0-1)."""
        return self.flash.total / board.flash_bytes

    def ram_utilisation(self, board: BoardProfile) -> float:
        """Fraction of the board's RAM used (0-1)."""
        return self.ram.total / board.ram_bytes

    def headroom(self, board: BoardProfile) -> Dict[str, int]:
        """Remaining flash/RAM bytes (negative = over budget)."""
        return {
            "flash": board.available_flash_bytes - self.flash.total,
            "ram": board.available_ram_bytes - self.ram.total,
        }

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Plain-dict view."""
        return {"flash": self.flash.as_dict(), "ram": self.ram.as_dict()}
