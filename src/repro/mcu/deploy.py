"""Deployment simulation: check fit, measure latency/energy/accuracy, produce a report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from repro.isa.profiles import BoardProfile
from repro.mcu.energy import energy_mj
from repro.mcu.memory import MemoryLayout


@runtime_checkable
class InferenceEngineProtocol(Protocol):
    """Duck-typed interface every inference engine in :mod:`repro.frameworks` satisfies."""

    name: str

    def latency_ms(self, board: BoardProfile) -> float:
        """Estimated single-inference latency on ``board``."""

    def memory_layout(self, board: BoardProfile) -> MemoryLayout:
        """Flash/RAM budget of the deployment."""

    def evaluate_accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on a labelled evaluation set."""

    def total_macs(self) -> int:
        """MAC operations actually executed per inference."""


class DeploymentError(RuntimeError):
    """Raised when a model does not fit the target board."""


@dataclass
class DeploymentReport:
    """All the metrics the paper reports per deployed design (Table II columns)."""

    engine: str
    model: str
    board: str
    top1_accuracy: float
    latency_ms: float
    flash_kb: float
    ram_kb: float
    mac_ops: int
    energy_mj: float
    fits: bool
    details: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for JSON serialization."""
        return {
            "engine": self.engine,
            "model": self.model,
            "board": self.board,
            "top1_accuracy": self.top1_accuracy,
            "latency_ms": self.latency_ms,
            "flash_kb": self.flash_kb,
            "ram_kb": self.ram_kb,
            "mac_ops": self.mac_ops,
            "energy_mj": self.energy_mj,
            "fits": self.fits,
            "details": self.details,
        }


def deploy(
    engine: InferenceEngineProtocol,
    board: BoardProfile,
    eval_images: Optional[np.ndarray] = None,
    eval_labels: Optional[np.ndarray] = None,
    model_name: Optional[str] = None,
    strict: bool = False,
) -> DeploymentReport:
    """Simulate deploying ``engine`` on ``board`` and measure every Table-II metric.

    Parameters
    ----------
    engine:
        An inference engine (see :mod:`repro.frameworks`).
    board:
        Target board profile.
    eval_images, eval_labels:
        Optional labelled evaluation set; accuracy is reported as NaN when
        omitted.
    model_name:
        Model name for the report (defaults to the engine's model name when
        available).
    strict:
        Raise :class:`DeploymentError` when the model does not fit the board
        (otherwise the report simply records ``fits=False``).
    """
    layout = engine.memory_layout(board)
    fits = layout.fits(board)
    if strict and not fits:
        raise DeploymentError(
            f"{engine.name} does not fit {board.name}: "
            f"flash {layout.flash.total_kb:.0f} KiB / RAM {layout.ram.total_kb:.0f} KiB"
        )
    latency = engine.latency_ms(board)
    if eval_images is not None and eval_labels is not None:
        accuracy = engine.evaluate_accuracy(eval_images, eval_labels)
    else:
        accuracy = float("nan")
    return DeploymentReport(
        engine=engine.name,
        model=model_name or getattr(engine, "model_name", "model"),
        board=board.name,
        top1_accuracy=accuracy,
        latency_ms=latency,
        flash_kb=layout.flash.total_kb,
        ram_kb=layout.ram.total_kb,
        mac_ops=engine.total_macs(),
        energy_mj=energy_mj(latency, board),
        fits=fits,
        details={"memory": layout.as_dict()},
    )
