"""MCU deployment simulator: memory budgeting, latency, energy, fit checks."""

from repro.mcu.memory import FlashBudget, MemoryLayout, RamBudget
from repro.mcu.energy import energy_mj
from repro.mcu.deploy import DeploymentReport, DeploymentError, deploy

__all__ = [
    "MemoryLayout",
    "FlashBudget",
    "RamBudget",
    "energy_mj",
    "DeploymentReport",
    "DeploymentError",
    "deploy",
]
