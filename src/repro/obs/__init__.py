"""Unified observability: metrics registry, tracing, profiling, event log.

One :class:`Observability` bundle travels with a serving stack (the
scheduler owns it, both HTTP fronts read it): a
:class:`~repro.obs.metrics.MetricsRegistry` backing the
:class:`~repro.serving.metrics.ServerMetrics` sink and the Prometheus
exposition, a :class:`~repro.obs.tracing.Tracer` holding the per-request
span ring, a :class:`~repro.obs.profiling.Profiler` sampling the hot path,
and an :class:`~repro.obs.events.EventLog` recording control-plane
decisions.

Defaults are chosen for "always-on but cheap": tracing and events are
enabled (bounded rings, a few dict ops per request), profiling is off
(``sample_every=0``) until asked for.  :meth:`Observability.disabled`
switches every pillar off for overhead measurements and
latency-at-all-costs deployments.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import Event, EventLog
from repro.obs.exposition import (
    ExpositionParseError,
    MetricFamily,
    Sample,
    federate_families,
    parse_prometheus,
    render_families,
    sum_samples,
)
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiling import Profiler
from repro.obs.tracing import Span, Tracer, load_jsonl, new_trace_id, trace_breakdown

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "LATENCY_BUCKETS_MS",
    "Counter",
    "Event",
    "EventLog",
    "ExpositionParseError",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Observability",
    "Profiler",
    "Sample",
    "Span",
    "Tracer",
    "federate_families",
    "load_jsonl",
    "new_trace_id",
    "parse_prometheus",
    "render_families",
    "sum_samples",
    "trace_breakdown",
]


class Observability:
    """The bundle of observability pillars shared by one serving stack.

    Parameters
    ----------
    registry:
        Metrics registry; created on demand if omitted (the scheduler shares
        it with its :class:`~repro.serving.metrics.ServerMetrics` sink).
    trace / trace_capacity:
        Whether to record request spans, and the span ring size.
    profile_every:
        Profile every Nth batch (0 = profiling off, the default).
    events / event_capacity:
        Whether to record structured events, and the event ring size.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        trace: bool = True,
        trace_capacity: int = 4096,
        profile_every: int = 0,
        events: bool = True,
        event_capacity: int = 512,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(capacity=trace_capacity, enabled=trace)
        self.profiler = Profiler(sample_every=profile_every)
        self.events = EventLog(capacity=event_capacity, enabled=events)

    @classmethod
    def disabled(cls) -> "Observability":
        """Every pillar off: the minimal-overhead configuration."""
        return cls(trace=False, profile_every=0, events=False)

    @property
    def enabled(self) -> bool:
        """Whether any pillar records anything."""
        return self.tracer.enabled or self.profiler.enabled or self.events.enabled
