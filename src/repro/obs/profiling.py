"""Sampled wall-clock profiling hooks for the serving hot path.

Profiling the scheduler loop and every per-layer forward on *every* batch
would tax exactly the latency the serving stack is built to minimise, so the
:class:`Profiler` samples: with ``sample_every=N`` only every Nth batch is
timed, and on unsampled batches every hook collapses to one attribute read.
``sample_every=0`` (the default) disables profiling entirely.

On a sampled batch the scheduler times its loop phases (``poll`` /
``policy`` / ``execute`` / ``callback``), the deployment times each layer's
quantised forward (``layer:NAME``) and the VM times each layer program
(``vm:NAME`` / ``kernel:NAME`` for library fallbacks).  Aggregated stats are
surfaced in the ``GET /metrics`` JSON view next to the cycle-model numbers,
and the raw per-section intervals of the latest sampled batch become
children of that batch's trace span.

Timestamps use ``time.monotonic()`` -- the same clock as spans, so profiled
sections can be attached to the trace tree without conversion.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Tuple


class Profiler:
    """Sampled section timer: cheap when idle, detailed every Nth batch.

    Parameters
    ----------
    sample_every:
        Profile every Nth batch (``1`` = every batch); ``0`` disables.
    """

    def __init__(self, sample_every: int = 0):
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0 (0 disables profiling)")
        self.sample_every = int(sample_every)
        self.active = False  # whether the current batch is being profiled
        self._counter = 0
        self._lock = threading.Lock()
        # section -> [count, total_s, max_s]
        self._stats: Dict[str, List[float]] = {}
        # (section, start_s, end_s) intervals of the current sampled batch
        self._sections: List[Tuple[str, float, float]] = []

    @property
    def enabled(self) -> bool:
        """Whether profiling can ever trigger (``sample_every > 0``)."""
        return self.sample_every > 0

    def begin_batch(self) -> bool:
        """Advance the sampling counter; returns whether to profile this batch.

        Called once per batch by the scheduler loop (single consumer); the
        ``active`` flag it sets is what the per-layer hooks check.
        """
        if not self.sample_every:
            self.active = False
            return False
        self._counter += 1
        self.active = self._counter % self.sample_every == 0
        if self.active:
            self._sections = []
        return self.active

    def add(self, section: str, start_s: float, end_s: float) -> None:
        """Record one timed interval (monotonic clock) for ``section``."""
        with self._lock:
            stats = self._stats.get(section)
            if stats is None:
                stats = self._stats[section] = [0, 0.0, 0.0]
            duration = end_s - start_s
            stats[0] += 1
            stats[1] += duration
            stats[2] = max(stats[2], duration)
            self._sections.append((section, start_s, end_s))

    @contextmanager
    def timer(self, section: str):
        """Time the body as one section -- a no-op unless the batch is sampled."""
        if not self.active:
            yield
            return
        start_s = time.monotonic()
        try:
            yield
        finally:
            self.add(section, start_s, time.monotonic())

    # ------------------------------------------------------------------ reading
    def batch_sections(self) -> List[Tuple[str, float, float]]:
        """The timed intervals of the most recent sampled batch."""
        with self._lock:
            return list(self._sections)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Aggregated per-section stats: count / total / mean / max (ms)."""
        with self._lock:
            stats = {name: list(values) for name, values in self._stats.items()}
        return {
            name: {
                "count": int(count),
                "total_ms": round(total * 1e3, 4),
                "mean_ms": round(total / count * 1e3, 4) if count else 0.0,
                "max_ms": round(peak * 1e3, 4),
            }
            for name, (count, total, peak) in sorted(stats.items())
        }

    def clear(self) -> None:
        """Reset aggregated stats and the sampling counter."""
        with self._lock:
            self._stats.clear()
            self._sections = []
            self._counter = 0
            self.active = False
