"""Prometheus text-exposition parsing and federation.

This module is the *inverse* of
:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`: the fleet
router scrapes every replica's ``/metrics?format=prometheus``, parses the
text back into typed metric families, sums the summable series (counters and
histograms) across replicas, and re-renders one fleet-wide exposition.

The parser is deliberately scoped to the dialect our renderer emits (plus
the obvious liberal extensions): ``# HELP`` / ``# TYPE`` comments, samples
with escape-aware quoted label values, one metric family per ``TYPE`` line,
histogram ``_bucket`` / ``_sum`` / ``_count`` suffixes attached to their
family.  Round-tripping is exact: ``render_families(parse_prometheus(text))
== text`` for any text our renderer produced, because both sides share the
same value/label formatting helpers (floats render via ``repr`` which
round-trips binary-exactly).

Federation semantics (:func:`federate_families`):

* **counters and histograms are summed** across sources after dropping the
  per-replica label (cumulative bucket counts stay valid because every
  replica uses identical bucket bounds -- the ``le`` label is part of the
  grouping key, so mismatched bounds would simply stay as disjoint series);
* **gauges (and untyped series) are kept per-replica** -- a queue depth or
  an uptime summed across replicas is a lie, attributed it is a signal.

No dependency on any serving module -- usable standalone, like the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import _escape_help, _format_value, _render_labels

#: Family kinds whose series are summed across replicas by federation.
SUMMED_KINDS = ("counter", "histogram")


@dataclass
class Sample:
    """One exposition line: series name, ordered label pairs, value."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float

    def label(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Value of one label, or ``default`` when absent."""
        for key, value in self.labels:
            if key == name:
                return value
        return default

    def without_label(self, name: str) -> "Sample":
        """A copy of this sample with one label dropped (order preserved)."""
        return Sample(self.name, tuple(p for p in self.labels if p[0] != name), self.value)


@dataclass
class MetricFamily:
    """One ``# TYPE`` group: family name, kind, help text, its samples."""

    name: str
    kind: str = "untyped"
    help: str = ""
    samples: List[Sample] = field(default_factory=list)


class ExpositionParseError(ValueError):
    """Raised on text the exposition parser cannot understand."""

    def __init__(self, message: str, lineno: int):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _unescape(value: str, lineno: int) -> str:
    """Reverse :func:`~repro.obs.metrics._escape_label` escaping."""
    if "\\" not in value:
        return value
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise ExpositionParseError("dangling backslash in label value", lineno)
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise ExpositionParseError(f"unknown escape '\\{nxt}' in label value", lineno)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: str, lineno: int) -> Tuple[Tuple[Tuple[str, str], ...], int]:
    """Parse ``{a="x",...}`` starting at ``text[0] == '{'``.

    Returns ``(pairs, end_index)`` where ``end_index`` points one past the
    closing brace.  A character-level scanner (not a regex) because label
    values may contain escaped quotes, braces and commas.
    """
    pairs: List[Tuple[str, str]] = []
    i = 1  # past '{'
    n = len(text)
    while True:
        if i >= n:
            raise ExpositionParseError("unterminated label set", lineno)
        if text[i] == "}":
            return tuple(pairs), i + 1
        eq = text.find("=", i)
        if eq < 0 or eq + 1 >= n or text[eq + 1] != '"':
            raise ExpositionParseError("expected label_name=\"value\"", lineno)
        label_name = text[i:eq].strip()
        if not label_name:
            raise ExpositionParseError("empty label name", lineno)
        # Scan the quoted value respecting backslash escapes.
        j = eq + 2
        raw: List[str] = []
        while True:
            if j >= n:
                raise ExpositionParseError("unterminated label value", lineno)
            ch = text[j]
            if ch == "\\":
                if j + 1 >= n:
                    raise ExpositionParseError("dangling backslash in label value", lineno)
                raw.append(text[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        pairs.append((label_name, _unescape("".join(raw), lineno)))
        i = j + 1  # past closing quote
        if i < n and text[i] == ",":
            i += 1


def _parse_sample(line: str, lineno: int) -> Sample:
    """Parse one ``name{labels} value`` exposition line."""
    brace = line.find("{")
    space = line.find(" ")
    if brace >= 0 and (space < 0 or brace < space):
        name = line[:brace]
        labels, end = _parse_labels(line[brace:], lineno)
        rest = line[brace + end :].strip()
    else:
        if space < 0:
            raise ExpositionParseError("sample line has no value", lineno)
        name = line[:space]
        labels = ()
        rest = line[space:].strip()
    if not name:
        raise ExpositionParseError("sample line has no metric name", lineno)
    # A timestamp suffix would appear as a second token; we never emit one.
    value_token = rest.split()[0] if rest else ""
    if not value_token:
        raise ExpositionParseError("sample line has no value", lineno)
    try:
        value = float(value_token)
    except ValueError:
        raise ExpositionParseError(f"unparseable sample value {value_token!r}", lineno) from None
    return Sample(name, labels, value)


def _unescape_help(text: str, lineno: int) -> str:
    """Reverse :func:`~repro.obs.metrics._escape_help` escaping."""
    if "\\" not in text:
        return text
    out: List[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text) and text[i + 1] in ("\\", "n"):
            out.append("\\" if text[i + 1] == "\\" else "\n")
            i += 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def _family_for(
    sample_name: str, families: Dict[str, MetricFamily], order: List[MetricFamily]
) -> MetricFamily:
    """The family a sample belongs to, creating an untyped one if unknown.

    Histogram samples carry ``_bucket`` / ``_sum`` / ``_count`` suffixes on
    top of their family name, so the lookup strips them when the base name
    names a histogram family.
    """
    family = families.get(sample_name)
    if family is not None:
        return family
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = families.get(sample_name[: -len(suffix)])
            if base is not None and base.kind == "histogram":
                return base
    family = MetricFamily(sample_name)
    families[sample_name] = family
    order.append(family)
    return family


def parse_prometheus(text: str) -> List[MetricFamily]:
    """Parse Prometheus text exposition into metric families, order preserved.

    The inverse of :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`:
    every family keeps its kind, help text and samples (with label order and
    exact float values), so :func:`render_families` reproduces the input
    bit-identically.
    """
    families: Dict[str, MetricFamily] = {}
    order: List[MetricFamily] = []
    pending_help: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3].strip() if len(parts) > 3 else "untyped"
                family = families.get(name)
                if family is None:
                    family = MetricFamily(name)
                    families[name] = family
                    order.append(family)
                family.kind = kind
                family.help = pending_help.pop(name, family.help)
            elif len(parts) >= 3 and parts[1] == "HELP":
                pending_help[parts[2]] = _unescape_help(
                    parts[3] if len(parts) > 3 else "", lineno
                )
            # Any other comment is legal exposition: ignore it.
            continue
        sample = _parse_sample(line, lineno)
        _family_for(sample.name, families, order).samples.append(sample)
    # HELP lines for families that never got a TYPE (liberal input).
    for name, help_text in pending_help.items():
        family = families.get(name)
        if family is not None and not family.help:
            family.help = help_text
    return order


def render_families(families: Iterable[MetricFamily]) -> str:
    """Render metric families back to text exposition.

    Uses the same formatting helpers as the registry renderer, so parsing
    and re-rendering a :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`
    output reproduces it byte for byte.
    """
    lines: List[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            value = sample.value
            # Histogram bucket/count samples are integral counts; _format_value
            # already renders integral floats without a trailing ".0".
            lines.append(f"{sample.name}{_render_labels(sample.labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def federate_families(
    sources: Sequence[Iterable[MetricFamily]], drop_label: str = "replica"
) -> List[MetricFamily]:
    """Merge per-replica metric families into one fleet-wide view.

    Counters and histograms are summed across sources after dropping
    ``drop_label`` from their series; gauges and untyped series pass through
    unchanged (keeping their replica attribution).  Family order follows
    first appearance across sources; series order follows first appearance
    of each grouping key.

    Raises :class:`ValueError` when the same family name arrives with two
    different kinds -- that is a scrape of two incompatible schema versions,
    not something summation can paper over.
    """
    merged: Dict[str, MetricFamily] = {}
    order: List[MetricFamily] = []
    sums: Dict[str, Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Sample]] = {}
    for families in sources:
        for family in families:
            out = merged.get(family.name)
            if out is None:
                out = MetricFamily(family.name, family.kind, family.help)
                merged[family.name] = out
                order.append(out)
                sums[family.name] = {}
            elif out.kind != family.kind:
                raise ValueError(
                    f"family {family.name!r} is {out.kind} in one source "
                    f"and {family.kind} in another; refusing to federate"
                )
            if family.kind in SUMMED_KINDS:
                bucket = sums[family.name]
                for sample in family.samples:
                    reduced = sample.without_label(drop_label)
                    key = (reduced.name, reduced.labels)
                    existing = bucket.get(key)
                    if existing is None:
                        bucket[key] = reduced
                        out.samples.append(reduced)
                    else:
                        existing.value += reduced.value
            else:
                out.samples.extend(family.samples)
    return order


def sum_samples(families: Iterable[MetricFamily], name: str) -> float:
    """Total value of one family's plain samples (convenience for checks).

    For histograms, sums the ``_count`` samples (one per series) rather than
    buckets, so the result is the total number of observations.
    """
    total = 0.0
    for family in families:
        if family.name != name:
            continue
        if family.kind == "histogram":
            total += sum(s.value for s in family.samples if s.name == f"{name}_count")
        else:
            total += sum(s.value for s in family.samples)
    return total
