"""Per-request tracing: trace ids, spans, a bounded ring, JSONL export.

A *trace* follows one HTTP request through the serving stack; a *span* is a
named timed stage of that trace.  The canonical stages are::

    route          router -> replica forward + reply     (fleet router)
    parse          body decode + validation + enqueue   (front thread)
    queue-wait     enqueued -> batch leader popped       (scheduler clock)
    batch-execute  the whole coalesced batch's forward   (one per batch)
    execute        this request's share of the batch     (child of batch)
    layer:NAME     per-layer forward, on profiled batches (child of batch)
    vm:NAME        per-layer VM program execution         (child of batch)
    respond        response serialisation + socket write  (front thread)

``queue-wait`` + ``execute`` reproduce the request's reported end-to-end
latency (``wait_ms + service_ms``) exactly, so a trace is an audit of the
latency the metrics already aggregate.  Batch spans carry the member trace
ids in their attributes, linking co-riders of one coalesced batch.

Span timestamps use ``time.monotonic()`` (same clock as the scheduler), plus
one wall-clock anchor per span for cross-process correlation.  The ring is
bounded (``deque(maxlen=...)``) so an unscraped server cannot grow without
bound; :meth:`Tracer.export_jsonl` dumps the ring for the ``repro-tinyml
trace`` CLI.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

#: Stage names in pipeline order -- the column order of trace breakdowns.
#: ``route`` is stamped by the fleet router (the hop in front of a replica);
#: single-server traces simply never record it.  ``escalate`` is the cascade
#: hop between a low-margin cheap attempt and its exact-level re-enqueue;
#: non-cascading traces never record it.
STAGES: tuple = ("route", "parse", "queue-wait", "batch-execute", "escalate", "execute", "respond")

_trace_counter = itertools.count(1)
_span_counter = itertools.count(1)
#: Per-process prefix: keeps ids unique across restarts (and, later, replicas).
_RUN_PREFIX = uuid.uuid4().hex[:8]


def new_trace_id() -> str:
    """A process-unique trace id (cheap: one counter tick, no RNG per call)."""
    return f"{_RUN_PREFIX}-{next(_trace_counter):08x}"


class Span:
    """One named, timed stage of a trace."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_s", "end_s", "ts", "attrs")

    def __init__(
        self,
        name: str,
        trace_id: str,
        start_s: float,
        end_s: float,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        ts: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else f"s{next(_span_counter):x}"
        self.parent_id = parent_id
        self.start_s = float(start_s)  # monotonic clock
        self.end_s = float(end_s)
        self.ts = float(ts) if ts is not None else time.time()  # wall-clock anchor
        self.attrs = attrs or {}

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds."""
        return (self.end_s - self.start_s) * 1e3

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view (one JSONL line)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_ms": round(self.duration_ms, 4),
            "ts": self.ts,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`as_dict` (used by the trace CLI)."""
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            start_s=payload["start_s"],
            end_s=payload["end_s"],
            parent_id=payload.get("parent_id"),
            span_id=payload.get("span_id"),
            ts=payload.get("ts"),
            attrs=payload.get("attrs") or {},
        )


class Tracer:
    """Bounded in-memory span ring shared by the fronts and the scheduler.

    Parameters
    ----------
    capacity:
        Ring size; the oldest spans are evicted first.
    enabled:
        ``False`` turns every record call into a cheap no-op (the
        disabled-observability hot path).
    """

    def __init__(self, capacity: int = 4096, enabled: bool = True):
        self.enabled = bool(enabled)
        self._spans: deque = deque(maxlen=int(capacity))
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def record_span(
        self,
        name: str,
        trace_id: str,
        start_s: float,
        end_s: float,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Record one completed span; returns it (``None`` when disabled)."""
        if not self.enabled:
            return None
        span = Span(name, trace_id, start_s, end_s, parent_id=parent_id, attrs=attrs or None)
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, trace_id: str, parent_id: Optional[str] = None, **attrs: Any):
        """Context manager timing its body as one span."""
        if not self.enabled:
            yield None
            return
        start_s = time.monotonic()
        try:
            yield None
        finally:
            self.record_span(name, trace_id, start_s, time.monotonic(), parent_id=parent_id, **attrs)

    # ------------------------------------------------------------------ reading
    def spans(self, trace_id: Optional[str] = None, name: Optional[str] = None) -> List[Span]:
        """Spans in the ring, oldest first, optionally filtered."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def clear(self) -> None:
        """Drop every buffered span."""
        with self._lock:
            self._spans.clear()

    def export_jsonl(self, path) -> int:
        """Write the ring as JSON-lines; returns the number of spans written."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.as_dict()) + "\n")
        return len(spans)


def load_jsonl(path) -> List[Span]:
    """Read a :meth:`Tracer.export_jsonl` file back into spans."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def trace_breakdown(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Per-trace stage breakdown: one row per trace id, stage sums in ms.

    ``total_ms`` is the wall span of the trace (max end - min start across
    its request-scoped stages); ``layers_ms`` sums any per-layer
    (``layer:*`` / ``vm:*`` / ``kernel:*``) child spans from profiled
    batches.  Rows keep first-seen order.
    """
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    rows: List[Dict[str, Any]] = []
    for trace_id, members in by_trace.items():
        row: Dict[str, Any] = {"trace_id": trace_id}
        stage_sums: Dict[str, float] = {}
        layers = 0.0
        request_scoped = []
        for span in members:
            if span.name in STAGES:
                stage_sums[span.name] = stage_sums.get(span.name, 0.0) + span.duration_ms
                if span.name != "batch-execute":
                    request_scoped.append(span)
            elif ":" in span.name:
                layers += span.duration_ms
        for stage in STAGES:
            row[stage] = round(stage_sums.get(stage, 0.0), 3)
        row["layers_ms"] = round(layers, 3)
        if request_scoped:
            start = min(s.start_s for s in request_scoped)
            end = max(s.end_s for s in request_scoped)
            row["total_ms"] = round((end - start) * 1e3, 3)
        else:
            row["total_ms"] = 0.0
        row["spans"] = len(members)
        rows.append(row)
    return rows
