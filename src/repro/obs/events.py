"""Structured event log: bounded ring of control-plane decisions.

Metrics answer "how much", traces answer "where did this request go" -- the
event log answers "*why* did the server do that": every level switch carries
the policy's EWMA-p95 reading at the moment of the decision, every shed the
deadline that expired, every starvation promotion the age that triggered it.
Events land in a bounded ring (``GET /events``) and are mirrored to the
``repro`` logger at their severity, so ``repro-tinyml serve -v`` streams
them live while the HTTP endpoint keeps the recent history queryable.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.utils.logging import get_logger

_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO, "warning": logging.WARNING,
           "error": logging.ERROR}


class Event:
    """One structured event: kind, message, severity, free-form fields."""

    __slots__ = ("ts", "kind", "message", "level", "fields")

    def __init__(self, kind: str, message: str, level: str = "info", fields: Optional[Dict] = None):
        if level not in _LEVELS:
            raise ValueError(f"unknown event level {level!r}; expected one of {sorted(_LEVELS)}")
        self.ts = time.time()
        self.kind = kind
        self.message = message
        self.level = level
        self.fields = fields or {}

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view."""
        return {
            "ts": self.ts,
            "kind": self.kind,
            "level": self.level,
            "message": self.message,
            **self.fields,
        }


class EventLog:
    """Bounded, thread-safe ring of :class:`Event` instances.

    Parameters
    ----------
    capacity:
        Ring size; oldest events are evicted first.
    enabled:
        ``False`` turns :meth:`emit` into a no-op.
    logger:
        Logger the events are mirrored to (default: ``repro.obs.events``).
    """

    def __init__(
        self,
        capacity: int = 512,
        enabled: bool = True,
        logger: Optional[logging.Logger] = None,
    ):
        self.enabled = bool(enabled)
        self._events: deque = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._logger = logger if logger is not None else get_logger("obs.events")

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def emit(self, kind: str, message: str, level: str = "info", **fields: Any) -> Optional[Event]:
        """Record one event; returns it (``None`` when disabled)."""
        if not self.enabled:
            return None
        event = Event(kind, message, level=level, fields=fields or None)
        with self._lock:
            self._events.append(event)
        if self._logger.isEnabledFor(_LEVELS[level]):
            detail = " ".join(f"{k}={v}" for k, v in event.fields.items())
            self._logger.log(_LEVELS[level], "%s: %s%s", kind, message,
                             f" ({detail})" if detail else "")
        return event

    def snapshot(self, limit: Optional[int] = None, kind: Optional[str] = None) -> List[Dict]:
        """Recent events as dicts, oldest first, optionally filtered."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if limit is not None and limit >= 0:
            events = events[-limit:] if limit else []  # [-0:] would be "all"
        return [event.as_dict() for event in events]

    def clear(self) -> None:
        """Drop every buffered event."""
        with self._lock:
            self._events.clear()
