"""Thread-safe metrics registry: Counter / Gauge / Histogram with labels.

The registry is the storage layer of the observability subsystem: the
serving-side :class:`~repro.serving.metrics.ServerMetrics` sink records into
these primitives, and both HTTP fronts expose the same state as Prometheus
text exposition format on ``GET /metrics?format=prometheus``.

Design notes:

* **Labels are positional tuples internally.**  An instrument declares its
  ``labelnames`` once; every sample is keyed by the tuple of label *values*
  in that order.  This keeps the hot path (one dict lookup + add under a
  per-instrument lock) cheap enough to sit inside the scheduler loop.
* **Constant labels** (e.g. ``replica="3"``) are attached at the registry
  level and rendered onto every series, so a future fleet router can scrape
  N replicas and ``sum()`` the per-replica series without name collisions.
* **Histograms use fixed bucket boundaries** (exponential by default, see
  :data:`LATENCY_BUCKETS_MS`): cumulative ``_bucket`` counts, ``_sum`` and
  ``_count`` follow the Prometheus data model, so the exposition is directly
  scrapeable.

No dependency on any serving module -- the registry is usable standalone.
"""

from __future__ import annotations

import platform
import threading
import time
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Fixed exponential latency buckets (milliseconds): 0.5 ms .. ~4 s.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
)

#: Power-of-two batch-size buckets matching the scheduler's coalescing range.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape a HELP line per the exposition format."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    """``{a="x",b="y"}`` or the empty string for an unlabelled series."""
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


class _Instrument:
    """Base class: name, help text, declared label names, per-child state."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = str(name)
        self.help = str(help)
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not self.labelnames:
            # Pre-seed the unlabelled series so the metric renders (at zero)
            # from the first scrape, before any sample lands.
            self._children[()] = self._zero()

    def _zero(self) -> Any:
        return 0.0

    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        if len(labels) != len(self.labelnames) or any(n not in labels for n in self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    # ------------------------------------------------------------------ reading
    def collect(self) -> Dict[Tuple[str, ...], Any]:
        """Point-in-time copy of every child series."""
        with self._lock:
            return dict(self._children)

    def render_into(self, lines: List[str], const: Sequence[Tuple[str, str]]) -> None:
        for key, value in sorted(self.collect().items()):
            pairs = list(const) + list(zip(self.labelnames, key))
            lines.append(f"{self.name}{_render_labels(pairs)} {_format_value(value)}")


class Counter(_Instrument):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (must be >= 0) to the series selected by ``labels``."""
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc by {value})")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current value of one series (0 if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))

    def total(self) -> float:
        """Sum across every labelled series."""
        with self._lock:
            return float(sum(self._children.values()))


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, windowed throughput)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (may be negative) to the series."""
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current value of one series (0 if never set)."""
        key = self._key(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))


class _HistogramState:
    """Per-series histogram accumulator: bucket counts + sum + count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative) counts
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket histogram following the Prometheus data model.

    ``observe(v)`` lands in the first bucket whose upper bound is >= ``v``;
    values beyond the last bound count only toward ``+Inf`` (i.e. ``_count``).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = LATENCY_BUCKETS_MS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be non-empty and strictly increasing")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _zero(self) -> "_HistogramState":
        return _HistogramState(len(self.buckets))

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the series selected by ``labels``."""
        value = float(value)
        key = self._key(labels)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            state = self._children.get(key)
            if state is None:
                state = self._children[key] = _HistogramState(len(self.buckets))
            if idx < len(self.buckets):
                state.counts[idx] += 1
            state.sum += value
            state.count += 1

    def series(self, **labels: Any) -> Tuple[List[int], float, int]:
        """``(cumulative_bucket_counts, sum, count)`` of one series."""
        key = self._key(labels)
        with self._lock:
            state = self._children.get(key)
            if state is None:
                return [0] * len(self.buckets), 0.0, 0
            cumulative, running = [], 0
            for count in state.counts:
                running += count
                cumulative.append(running)
            return cumulative, state.sum, state.count

    def total_count(self) -> int:
        """Total observations across every labelled series."""
        with self._lock:
            return sum(state.count for state in self._children.values())

    def render_into(self, lines: List[str], const: Sequence[Tuple[str, str]]) -> None:
        """Append the ``_bucket``/``_sum``/``_count`` exposition lines."""
        with self._lock:
            children = {key: (list(s.counts), s.sum, s.count) for key, s in self._children.items()}
        for key, (counts, total, count) in sorted(children.items()):
            base = list(const) + list(zip(self.labelnames, key))
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                pairs = base + [("le", f"{bound:g}")]
                lines.append(f"{self.name}_bucket{_render_labels(pairs)} {cumulative}")
            pairs = base + [("le", "+Inf")]
            lines.append(f"{self.name}_bucket{_render_labels(pairs)} {count}")
            lines.append(f"{self.name}_sum{_render_labels(base)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_render_labels(base)} {count}")


class MetricsRegistry:
    """Named collection of instruments with one text-exposition renderer.

    Parameters
    ----------
    const_labels:
        Labels stamped onto every rendered series (e.g. ``{"replica": "3"}``)
        so a fleet aggregator can sum the same metric across replicas.
    """

    def __init__(self, const_labels: Optional[Mapping[str, Any]] = None):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}
        self.const_labels: Tuple[Tuple[str, str], ...] = tuple(
            (str(k), str(v)) for k, v in (const_labels or {}).items()
        )
        self._uptime_gauge: Optional[Gauge] = None
        self._uptime_started: float = 0.0

    def enable_target_metadata(self, version: Optional[str] = None) -> "MetricsRegistry":
        """Register the standard target-metadata instruments (idempotent).

        Adds ``repro_process_uptime_seconds`` (refreshed on every
        :meth:`render_prometheus` call) and the Prometheus info-style
        ``repro_build_info`` gauge whose ``version`` / ``python`` labels --
        on top of the registry's const labels -- let a fleet scrape identify
        exactly which build answers behind each ``replica=`` series.
        """
        if version is None:
            from repro._version import __version__ as version
        info = self.gauge(
            "repro_build_info",
            "Build metadata carried as labels; the value is always 1.",
            ("version", "python"),
        )
        info.set(1, version=version, python=platform.python_version())
        if self._uptime_gauge is None:
            self._uptime_started = time.monotonic()
            self._uptime_gauge = self.gauge(
                "repro_process_uptime_seconds", "Seconds since this registry came up."
            )
            self._uptime_gauge.set(0.0)
        return self

    def _get_or_create(self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Register (or fetch, if identical) a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Register (or fetch, if identical) a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = LATENCY_BUCKETS_MS,
    ) -> Histogram:
        """Register (or fetch, if identical) a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def instruments(self) -> List[_Instrument]:
        """Registered instruments, in registration order."""
        with self._lock:
            return list(self._metrics.values())

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        if self._uptime_gauge is not None:
            self._uptime_gauge.set(time.monotonic() - self._uptime_started)
        lines: List[str] = []
        for metric in self.instruments():
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            metric.render_into(lines, self.const_labels)
        return "\n".join(lines) + "\n"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ish debugging view: metric name -> {label-tuple-str: value}."""
        view: Dict[str, Any] = {}
        for metric in self.instruments():
            series: Dict[str, Any] = {}
            for key, value in sorted(metric.collect().items()):
                label = ",".join(f"{n}={v}" for n, v in zip(metric.labelnames, key))
                if isinstance(value, _HistogramState):
                    series[label] = {"count": value.count, "sum": value.sum}
                else:
                    series[label] = value
            view[metric.name] = series
        return view
