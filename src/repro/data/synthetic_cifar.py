"""Synthetic CIFAR-10-class image generator.

The paper trains LeNet/AlexNet on CIFAR-10 (32x32x3, 10 classes, inputs
normalised to [0, 1]).  CIFAR-10 is not available offline, so this module
generates a *deterministic* procedural surrogate with the same geometry and a
comparable learning difficulty:

* every class is a parametric texture family -- an oriented sinusoidal grating
  with class-specific orientation and spatial frequency, a class-specific
  colour tint, and a class-dependent geometric overlay (disc, square, cross,
  ring, or diagonal bar);
* per-sample nuisance factors (random phase, position jitter, brightness,
  contrast, additive Gaussian noise, occasional occlusion) create substantial
  intra-class variability so that small CNNs neither fail nor saturate at
  100% accuracy.

What matters for reproducing the paper is not the absolute accuracy but that
(1) the models learn a non-trivial 10-way task at CIFAR geometry, and (2) the
calibration subset provides a realistic activation distribution E[a_i] for the
significance analysis.  Both properties hold for this surrogate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import as_rng

#: Human-readable class names (mirroring CIFAR-10's ten categories in spirit).
CLASS_NAMES = (
    "grating_0",
    "grating_18",
    "disc",
    "square",
    "cross",
    "ring",
    "diag_bar",
    "checker",
    "blob_pair",
    "stripe_burst",
)


@dataclass
class SyntheticCifarConfig:
    """Configuration of the synthetic CIFAR-10 surrogate.

    Attributes
    ----------
    image_size:
        Spatial resolution (the paper uses 32).
    n_classes:
        Number of classes (10 for CIFAR-10).
    noise_std:
        Standard deviation of the additive Gaussian pixel noise.  Larger
        values reduce the achievable accuracy; the default is tuned so small
        CNNs land in the 70-90% band.
    jitter:
        Maximum absolute positional jitter (pixels) of the class overlay.
    brightness_range / contrast_range:
        Per-sample multiplicative photometric nuisance ranges.
    occlusion_prob:
        Probability of a random occluding patch per sample.
    seed:
        Base seed; the full dataset is a pure function of (config, n_samples).
    """

    image_size: int = 32
    n_classes: int = 10
    noise_std: float = 0.34
    jitter: int = 8
    brightness_range: Tuple[float, float] = (0.6, 1.4)
    contrast_range: Tuple[float, float] = (0.5, 1.4)
    occlusion_prob: float = 0.55
    label_noise: float = 0.12
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")
        if not 1 <= self.n_classes <= 10:
            raise ValueError("n_classes must be in [1, 10]")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if not 0.0 <= self.label_noise < 1.0:
            raise ValueError("label_noise must be in [0, 1)")


# Colour tints applied per *sample* (not per class) so that colour alone is a
# weak, non-discriminative cue -- the network has to learn texture and shape,
# which keeps the task difficulty in the CIFAR-10-small-CNN band rather than
# being trivially separable by a colour histogram.
_SAMPLE_TINTS = np.array(
    [
        [1.00, 0.55, 0.55],
        [0.55, 1.00, 0.55],
        [0.55, 0.55, 1.00],
        [1.00, 1.00, 0.55],
        [1.00, 0.55, 1.00],
        [0.55, 1.00, 1.00],
        [0.95, 0.75, 0.50],
        [0.50, 0.80, 0.95],
        [0.85, 0.85, 0.85],
        [0.65, 0.95, 0.70],
    ],
    dtype=np.float32,
)


class SyntheticCifar10:
    """Deterministic generator of the synthetic 10-class image distribution."""

    def __init__(self, config: Optional[SyntheticCifarConfig] = None):
        self.config = config or SyntheticCifarConfig()
        size = self.config.image_size
        ys, xs = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        self._ys = ys.astype(np.float32)
        self._xs = xs.astype(np.float32)

    # ------------------------------------------------------------------ per-class structure
    def _grating(self, label: int, phase: float) -> np.ndarray:
        """Oriented sinusoidal grating with class-specific orientation/frequency."""
        size = self.config.image_size
        # Orientations span only ~130 degrees and frequencies differ by small
        # steps, so neighbouring classes are genuinely confusable under noise,
        # jitter and occlusion -- keeping the achievable accuracy of small CNNs
        # in the CIFAR-10 band rather than at ceiling.
        theta = np.pi * (label / 14.0)
        freq = 2.0 * np.pi * (1.6 + 0.15 * label) / size
        proj = np.cos(theta) * self._xs + np.sin(theta) * self._ys
        return 0.5 + 0.5 * np.sin(freq * proj + phase)

    def _overlay(self, label: int, cx: float, cy: float, radius: float) -> np.ndarray:
        """Class-dependent geometric overlay mask in [0, 1]."""
        xs, ys = self._xs, self._ys
        dx, dy = xs - cx, ys - cy
        dist = np.sqrt(dx * dx + dy * dy)
        kind = label % 5
        if kind == 0:  # disc
            mask = (dist <= radius).astype(np.float32)
        elif kind == 1:  # square
            mask = ((np.abs(dx) <= radius) & (np.abs(dy) <= radius)).astype(np.float32)
        elif kind == 2:  # cross
            width = max(1.5, radius / 2.5)
            mask = ((np.abs(dx) <= width) | (np.abs(dy) <= width)).astype(np.float32)
            mask *= (dist <= 1.8 * radius).astype(np.float32)
        elif kind == 3:  # ring
            mask = ((dist <= radius) & (dist >= 0.55 * radius)).astype(np.float32)
        else:  # diagonal bar
            width = max(1.5, radius / 2.0)
            mask = (np.abs(dx - dy) <= width).astype(np.float32)
            mask *= (dist <= 2.0 * radius).astype(np.float32)
        return mask

    # ------------------------------------------------------------------ sample generation
    def generate_sample(self, label: int, rng: np.random.Generator) -> np.ndarray:
        """Generate a single (H, W, 3) image in [0, 1] for ``label``."""
        cfg = self.config
        size = cfg.image_size
        phase = rng.uniform(0.0, 2.0 * np.pi)
        base = self._grating(label, phase)

        center = size / 2.0
        cx = center + rng.integers(-cfg.jitter, cfg.jitter + 1)
        cy = center + rng.integers(-cfg.jitter, cfg.jitter + 1)
        radius = size * (0.18 + 0.02 * (label % 3)) * rng.uniform(0.8, 1.2)
        overlay = self._overlay(label, cx, cy, radius)

        # Blend grating and overlay; classes >= 5 invert the overlay polarity,
        # which doubles the number of visually distinct families.
        polarity = 1.0 if label < 5 else -1.0
        gray = np.clip(0.65 * base + polarity * 0.40 * overlay, 0.0, 1.0)

        tint = _SAMPLE_TINTS[rng.integers(0, len(_SAMPLE_TINTS))]
        image = gray[:, :, None] * tint[None, None, :]

        # Photometric nuisances.
        brightness = rng.uniform(*cfg.brightness_range)
        contrast = rng.uniform(*cfg.contrast_range)
        image = np.clip((image - 0.5) * contrast + 0.5 * brightness, 0.0, 1.0)

        # Occasional occluding patch (size range adapts to small images).
        if rng.random() < cfg.occlusion_prob:
            lo = max(2, size // 8)
            hi = max(lo + 1, size // 3)
            ph, pw = rng.integers(lo, hi, size=2)
            py, px = rng.integers(0, size - ph), rng.integers(0, size - pw)
            image[py : py + ph, px : px + pw, :] = rng.uniform(0.0, 1.0)

        # Additive noise.
        if cfg.noise_std > 0:
            image = image + rng.normal(0.0, cfg.noise_std, size=image.shape)
        return np.clip(image, 0.0, 1.0).astype(np.float32)

    def generate(self, n_samples: int, seed: Optional[int] = None, name: str = "synthetic_cifar10") -> Dataset:
        """Generate a balanced dataset of ``n_samples`` images.

        The dataset is a pure function of ``(config, n_samples, seed)``; the
        same arguments always yield bit-identical arrays.
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        cfg = self.config
        rng = as_rng(cfg.seed if seed is None else seed)
        labels = np.tile(np.arange(cfg.n_classes), n_samples // cfg.n_classes + 1)[:n_samples]
        rng.shuffle(labels)
        images = np.empty((n_samples, cfg.image_size, cfg.image_size, 3), dtype=np.float32)
        for i, label in enumerate(labels):
            images[i] = self.generate_sample(int(label), rng)

        # Label noise models the irreducible ambiguity of natural-image
        # datasets (CIFAR-10 small CNNs plateau around 70-85%); flipped labels
        # put a ceiling on the achievable accuracy without changing the images.
        labels = labels.astype(np.int64)
        if cfg.label_noise > 0 and cfg.n_classes > 1:
            flip = rng.random(n_samples) < cfg.label_noise
            offsets = rng.integers(1, cfg.n_classes, size=n_samples)
            labels = np.where(flip, (labels + offsets) % cfg.n_classes, labels)
        return Dataset(images=images, labels=labels, n_classes=cfg.n_classes, name=name)


def load_synthetic_cifar10(
    n_samples: int = 2000,
    config: Optional[SyntheticCifarConfig] = None,
    seed: Optional[int] = None,
) -> Dataset:
    """Convenience wrapper: build a generator and produce ``n_samples`` images."""
    return SyntheticCifar10(config).generate(n_samples, seed=seed)
