"""Dataset containers and split helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass
class Dataset:
    """An in-memory labelled image dataset.

    Attributes
    ----------
    images:
        ``(N, H, W, C)`` float32 array, normalised to ``[0, 1]`` as in the
        paper ("inputs have a 32x32 resolution and are normalized to [0, 1]").
    labels:
        ``(N,)`` int64 class indices.
    n_classes:
        Number of distinct classes.
    name:
        Dataset name used in reports.
    """

    images: np.ndarray
    labels: np.ndarray
    n_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(f"images must be (N, H, W, C), got shape {self.images.shape}")
        if self.labels.ndim != 1 or self.labels.shape[0] != self.images.shape[0]:
            raise ValueError("labels must be 1-D and aligned with images")
        if self.labels.size and (self.labels.min() < 0 or self.labels.max() >= self.n_classes):
            raise ValueError("labels out of range")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Per-sample (H, W, C) shape."""
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            images=self.images[indices],
            labels=self.labels[indices],
            n_classes=self.n_classes,
            name=name or f"{self.name}_subset",
        )

    def take(self, n: int, name: Optional[str] = None) -> "Dataset":
        """Return the first ``n`` samples (or all if fewer)."""
        n = min(n, len(self))
        return self.subset(np.arange(n), name=name or f"{self.name}_take{n}")

    def shuffled(self, rng: SeedLike = None) -> "Dataset":
        """Return a shuffled copy."""
        order = as_rng(rng).permutation(len(self))
        return self.subset(order, name=self.name)

    def batches(
        self, batch_size: int, shuffle: bool = False, rng: SeedLike = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate ``(images, labels)`` mini-batches."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = as_rng(rng).permutation(len(self)) if shuffle else np.arange(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.labels[idx]

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=self.n_classes)


@dataclass
class DataSplit:
    """Train / validation / test / calibration split of a dataset.

    The calibration split feeds both post-training quantization and the
    paper's activation-distribution capture (step 2 of the framework).
    """

    train: Dataset
    val: Dataset
    test: Dataset
    calibration: Dataset

    @property
    def n_classes(self) -> int:
        """Number of classes (shared by all splits)."""
        return self.train.n_classes

    def summary(self) -> str:
        """Human-readable split sizes."""
        return (
            f"train={len(self.train)} val={len(self.val)} "
            f"test={len(self.test)} calibration={len(self.calibration)}"
        )


def train_val_test_split(
    dataset: Dataset,
    val_fraction: float = 0.1,
    test_fraction: float = 0.2,
    calibration_size: int = 128,
    rng: SeedLike = 0,
) -> DataSplit:
    """Split a dataset into train/val/test plus a calibration subset.

    The calibration subset is drawn from the *training* portion (never from
    test data) to mirror the paper's offline profiling procedure.
    """
    if not 0 <= val_fraction < 1 or not 0 < test_fraction < 1:
        raise ValueError("fractions must lie in [0, 1)")
    if val_fraction + test_fraction >= 1:
        raise ValueError("val_fraction + test_fraction must be < 1")
    n = len(dataset)
    order = as_rng(rng).permutation(n)
    n_test = int(round(n * test_fraction))
    n_val = int(round(n * val_fraction))
    test_idx = order[:n_test]
    val_idx = order[n_test : n_test + n_val]
    train_idx = order[n_test + n_val :]
    if len(train_idx) == 0:
        raise ValueError("split leaves no training data")

    calibration_size = min(calibration_size, len(train_idx))
    calib_idx = train_idx[:calibration_size]

    return DataSplit(
        train=dataset.subset(train_idx, name=f"{dataset.name}_train"),
        val=dataset.subset(val_idx, name=f"{dataset.name}_val"),
        test=dataset.subset(test_idx, name=f"{dataset.name}_test"),
        calibration=dataset.subset(calib_idx, name=f"{dataset.name}_calib"),
    )
