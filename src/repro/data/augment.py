"""Light-weight data augmentation (training-time only)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def random_horizontal_flip(images: np.ndarray, prob: float = 0.5, rng: SeedLike = None) -> np.ndarray:
    """Flip each image horizontally with probability ``prob``."""
    if not 0.0 <= prob <= 1.0:
        raise ValueError("prob must be in [0, 1]")
    gen = as_rng(rng)
    out = images.copy()
    flips = gen.random(images.shape[0]) < prob
    out[flips] = out[flips, :, ::-1, :]
    return out


def random_crop(images: np.ndarray, padding: int = 4, rng: SeedLike = None) -> np.ndarray:
    """Pad-and-random-crop augmentation (the standard CIFAR recipe)."""
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if padding == 0:
        return images.copy()
    gen = as_rng(rng)
    n, h, w, c = images.shape
    padded = np.pad(images, ((0, 0), (padding, padding), (padding, padding), (0, 0)), mode="reflect")
    out = np.empty_like(images)
    offsets_y = gen.integers(0, 2 * padding + 1, size=n)
    offsets_x = gen.integers(0, 2 * padding + 1, size=n)
    for i in range(n):
        oy, ox = offsets_y[i], offsets_x[i]
        out[i] = padded[i, oy : oy + h, ox : ox + w, :]
    return out


def add_gaussian_noise(images: np.ndarray, std: float = 0.02, rng: SeedLike = None) -> np.ndarray:
    """Add clipped Gaussian pixel noise."""
    if std < 0:
        raise ValueError("std must be non-negative")
    if std == 0:
        return images.copy()
    gen = as_rng(rng)
    noisy = images + gen.normal(0.0, std, size=images.shape).astype(images.dtype)
    return np.clip(noisy, 0.0, 1.0)


def augment_batch(
    images: np.ndarray,
    flip_prob: float = 0.5,
    crop_padding: int = 2,
    noise_std: float = 0.01,
    rng: SeedLike = None,
) -> np.ndarray:
    """Apply the full augmentation pipeline to a batch."""
    gen = as_rng(rng)
    out = random_horizontal_flip(images, prob=flip_prob, rng=gen)
    out = random_crop(out, padding=crop_padding, rng=gen)
    out = add_gaussian_noise(out, std=noise_std, rng=gen)
    return out
