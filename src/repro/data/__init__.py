"""Datasets and data loading.

CIFAR-10 itself is not redistributable/downloadable in this offline
environment, so :mod:`repro.data.synthetic_cifar` provides a deterministic,
procedurally generated 10-class 32x32x3 image distribution with CIFAR-like
geometry and difficulty.  See DESIGN.md section 2 for the substitution
rationale.
"""

from repro.data.dataset import DataSplit, Dataset, train_val_test_split
from repro.data.synthetic_cifar import SyntheticCifarConfig, SyntheticCifar10, load_synthetic_cifar10
from repro.data.augment import random_crop, random_horizontal_flip, add_gaussian_noise, augment_batch

__all__ = [
    "Dataset",
    "DataSplit",
    "train_val_test_split",
    "SyntheticCifarConfig",
    "SyntheticCifar10",
    "load_synthetic_cifar10",
    "random_crop",
    "random_horizontal_flip",
    "add_gaussian_noise",
    "augment_batch",
]
