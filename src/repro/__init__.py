"""ATAMAN reproduction: accelerating TinyML inference on MCUs through approximate kernels.

This package reimplements, in pure Python/NumPy, the cooperative approximation
framework of Armeniakos et al. (ICECS 2024) together with every substrate it
depends on:

* ``repro.nn``         -- float CNN training/inference stack.
* ``repro.data``       -- synthetic CIFAR-10-class dataset and loaders.
* ``repro.models``     -- LeNet / AlexNet model zoo matching the paper's topologies.
* ``repro.quant``      -- CMSIS-NN-style int8 post-training quantization.
* ``repro.kernels``    -- CMSIS-NN-like software kernels (im2col, SMLAD matmul, ...).
* ``repro.isa``        -- Cortex-M33 instruction cost model and board profiles.
* ``repro.mcu``        -- MCU deployment simulator (flash/RAM/latency/energy).
* ``repro.core``       -- the paper's contribution: code unpacking, significance
                          calculation, computation skipping, DSE, Pareto analysis,
                          code generation and the end-to-end pipeline.
* ``repro.frameworks`` -- baseline inference engines (CMSIS-NN, X-CUBE-AI, uTVM,
                          CMix-NN stand-ins) plus the ATAMAN engine.
* ``repro.evaluation`` -- drivers regenerating every table and figure of the paper.
* ``repro.workflow``   -- the composable experiment API: typed stages, the
                          incremental ``Experiment`` runner and the
                          content-addressed ``ArtifactStore``.
* ``repro.registry``   -- plugin registries for significance metrics, skipping
                          granularities, DSE search strategies, inference
                          engines and board profiles.
"""

from repro._version import __version__

__all__ = ["__version__"]
