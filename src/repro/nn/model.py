"""Sequential model container."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense


class Sequential:
    """A plain feed-forward stack of layers.

    The container is deliberately minimal: CNNs deployed on MCUs through
    CMSIS-NN-style libraries are linear chains of kernels, and the paper's
    approximation framework operates layer by layer on exactly such chains.

    Parameters
    ----------
    layers:
        The layers in execution order.
    input_shape:
        Per-sample input shape (H, W, C) or (features,).  Required for static
        shape/MAC analysis and by the quantization and deployment passes.
    name:
        Model name used in reports.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: Optional[Tuple[int, ...]] = None,
        name: str = "model",
    ):
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self.name = name
        seen: Dict[str, int] = {}
        for layer in self.layers:
            # Ensure unique layer names so state dicts and reports are unambiguous.
            if layer.name in seen:
                seen[layer.name] += 1
                layer.name = f"{layer.name}_{seen[layer.name]}"
            else:
                seen[layer.name] = 0

    # ------------------------------------------------------------------ basics
    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer to the stack."""
        self.layers.append(layer)
        return self

    # ------------------------------------------------------------------ modes
    def train(self, mode: bool = True) -> "Sequential":
        """Set training/evaluation mode on every layer."""
        for layer in self.layers:
            layer.train(mode)
        return self

    def eval(self) -> "Sequential":
        """Switch every layer to evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------ compute
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full forward pass."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Run the full backward pass, returning the input gradient."""
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Batched inference in eval mode; returns raw model outputs."""
        was_training = any(layer.training for layer in self.layers)
        self.eval()
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start : start + batch_size]))
        if was_training:
            self.train(True)
        return np.concatenate(outputs, axis=0) if outputs else np.empty((0,))

    def predict_classes(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted class indices."""
        return self.predict(x, batch_size=batch_size).argmax(axis=-1)

    # ------------------------------------------------------------------ parameters
    def parameters(self) -> List[Parameter]:
        """All parameters of the model."""
        return [p for layer in self.layers for p in layer.parameters()]

    def zero_grad(self) -> None:
        """Reset every parameter gradient."""
        for layer in self.layers:
            layer.zero_grad()

    @property
    def n_params(self) -> int:
        """Total number of scalar parameters."""
        return sum(layer.n_params for layer in self.layers)

    # ------------------------------------------------------------------ shape / MAC analysis
    def layer_shapes(self) -> List[Tuple[str, Tuple[int, ...], Tuple[int, ...]]]:
        """Per-layer ``(name, input_shape, output_shape)`` (sample shapes, no batch)."""
        if self.input_shape is None:
            raise ValueError("input_shape must be set for static shape analysis")
        shapes = []
        shape = self.input_shape
        for layer in self.layers:
            out_shape = layer.output_shape(shape)
            shapes.append((layer.name, tuple(shape), tuple(out_shape)))
            shape = out_shape
        return shapes

    def layer_input_shapes(self) -> Dict[str, Tuple[int, ...]]:
        """Mapping layer name -> per-sample input shape."""
        return {name: in_shape for name, in_shape, _ in self.layer_shapes()}

    def total_macs(self) -> int:
        """Total MAC operations (conv + dense) for one input sample."""
        total = 0
        for (name, in_shape, _), layer in zip(self.layer_shapes(), self.layers):
            if isinstance(layer, (Conv2D, Dense)):
                total += layer.macs(in_shape)
        return total

    def conv_macs(self) -> int:
        """MAC operations of the convolution layers only."""
        total = 0
        for (name, in_shape, _), layer in zip(self.layer_shapes(), self.layers):
            if isinstance(layer, Conv2D):
                total += layer.macs(in_shape)
        return total

    def topology(self) -> Dict[str, int]:
        """Topology summary in the paper's Table-I format (conv/pool/fc counts)."""
        from repro.nn.layers.pooling import AvgPool2D, MaxPool2D

        counts = {"conv": 0, "pool": 0, "fc": 0}
        for layer in self.layers:
            if isinstance(layer, Conv2D):
                counts["conv"] += 1
            elif isinstance(layer, (MaxPool2D, AvgPool2D)):
                counts["pool"] += 1
            elif isinstance(layer, Dense):
                counts["fc"] += 1
        return counts

    def summary(self) -> str:
        """Human-readable per-layer summary table."""
        lines = [f"Model: {self.name}", f"{'layer':<24}{'output shape':<20}{'params':>10}"]
        lines.append("-" * 54)
        if self.input_shape is not None:
            for (name, _, out_shape), layer in zip(self.layer_shapes(), self.layers):
                lines.append(f"{name:<24}{str(out_shape):<20}{layer.n_params:>10}")
        else:
            for layer in self.layers:
                lines.append(f"{layer.name:<24}{'?':<20}{layer.n_params:>10}")
        lines.append("-" * 54)
        lines.append(f"total params: {self.n_params}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ serialization
    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Nested parameter state keyed by layer name."""
        return {layer.name: layer.state_dict() for layer in self.layers}

    def load_state_dict(self, state: Dict[str, Dict[str, np.ndarray]]) -> None:
        """Load a nested state dict produced by :meth:`state_dict`."""
        for layer in self.layers:
            if layer.state_dict() and layer.name not in state:
                raise KeyError(f"missing state for layer {layer.name!r}")
            if layer.name in state:
                layer.load_state_dict(dict(state[layer.name]))

    def config(self) -> Dict[str, object]:
        """JSON-serialisable architecture description."""
        return {
            "name": self.name,
            "input_shape": list(self.input_shape) if self.input_shape else None,
            "layers": [layer.config() for layer in self.layers],
        }
