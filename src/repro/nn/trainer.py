"""Mini-batch training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.losses import CrossEntropyLoss, Loss
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential
from repro.nn.optim import LRScheduler, Optimizer
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_rng

logger = get_logger("nn.trainer")


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of recorded epochs."""
        return len(self.train_loss)

    def best_val_accuracy(self) -> float:
        """Best validation accuracy seen (0.0 if no validation data)."""
        return max(self.val_accuracy) if self.val_accuracy else 0.0

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view for JSON serialization."""
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


class Trainer:
    """Mini-batch gradient-descent trainer for :class:`Sequential` models.

    Parameters
    ----------
    model:
        The model to train.
    optimizer:
        Optimizer managing the model's parameters.
    loss:
        Loss object (defaults to cross-entropy).
    scheduler:
        Optional per-epoch learning-rate scheduler.
    rng:
        Seed/generator controlling batch shuffling.
    """

    def __init__(
        self,
        model: Sequential,
        optimizer: Optimizer,
        loss: Optional[Loss] = None,
        scheduler: Optional[LRScheduler] = None,
        rng: SeedLike = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss = loss or CrossEntropyLoss()
        self.scheduler = scheduler
        self.rng = as_rng(rng)
        self.history = TrainingHistory()

    def train_epoch(self, x: np.ndarray, y: np.ndarray, batch_size: int) -> Tuple[float, float]:
        """Run one epoch; returns ``(mean_loss, accuracy)`` over the epoch."""
        self.model.train(True)
        n = x.shape[0]
        order = self.rng.permutation(n)
        losses: List[float] = []
        correct = 0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            xb, yb = x[idx], y[idx]
            self.optimizer.zero_grad()
            logits = self.model.forward(xb)
            loss_value = self.loss.forward(logits, yb)
            grad = self.loss.backward()
            self.model.backward(grad)
            self.optimizer.step()
            losses.append(loss_value * len(idx))
            correct += int((logits.argmax(axis=-1) == yb).sum())
        return float(np.sum(losses) / n), correct / n

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> Tuple[float, float]:
        """Evaluate loss/accuracy on held-out data (eval mode)."""
        self.model.eval()
        n = x.shape[0]
        losses: List[float] = []
        logits_all: List[np.ndarray] = []
        for start in range(0, n, batch_size):
            xb, yb = x[start : start + batch_size], y[start : start + batch_size]
            logits = self.model.forward(xb)
            losses.append(self.loss.forward(logits, yb) * len(yb))
            logits_all.append(logits)
        logits = np.concatenate(logits_all, axis=0)
        return float(np.sum(losses) / n), accuracy(logits, y)

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        epochs: int,
        batch_size: int = 64,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        callback: Optional[Callable[[int, TrainingHistory], None]] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs and return the accumulated history."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        for epoch in range(epochs):
            train_loss, train_acc = self.train_epoch(x_train, y_train, batch_size)
            self.history.train_loss.append(train_loss)
            self.history.train_accuracy.append(train_acc)
            if x_val is not None and y_val is not None:
                val_loss, val_acc = self.evaluate(x_val, y_val, batch_size)
                self.history.val_loss.append(val_loss)
                self.history.val_accuracy.append(val_acc)
            if self.scheduler is not None:
                self.scheduler.step()
            if verbose:
                msg = f"epoch {epoch + 1}/{epochs}: loss={train_loss:.4f} acc={train_acc:.3f}"
                if self.history.val_accuracy:
                    msg += (
                        f" val_loss={self.history.val_loss[-1]:.4f}"
                        f" val_acc={self.history.val_accuracy[-1]:.3f}"
                    )
                logger.warning(msg)
            if callback is not None:
                callback(epoch, self.history)
        self.model.eval()
        return self.history
