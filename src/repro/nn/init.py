"""Weight initialisation schemes for the float CNN stack."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense ((in, out)) and OHWI conv weights."""
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    elif len(shape) == 4:
        out_c, kh, kw, in_c = shape
        receptive = kh * kw
        fan_in = in_c * receptive
        fan_out = out_c * receptive
    else:
        size = int(np.prod(shape))
        fan_in = fan_out = max(1, size)
    return max(1, fan_in), max(1, fan_out)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float32)


def uniform(shape: Tuple[int, ...], low: float, high: float, rng: SeedLike = None) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    return as_rng(rng).uniform(low, high, size=shape).astype(np.float32)


def normal(shape: Tuple[int, ...], std: float, rng: SeedLike = None) -> np.ndarray:
    """Zero-mean Gaussian initialisation."""
    return (as_rng(rng).standard_normal(shape) * std).astype(np.float32)


def glorot_uniform(shape: Tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return uniform(shape, -limit, limit, rng)


def he_normal(shape: Tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """He/Kaiming normal initialisation (suited to ReLU networks)."""
    fan_in, _ = _fan_in_out(shape)
    return normal(shape, float(np.sqrt(2.0 / fan_in)), rng)


def he_uniform(shape: Tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """He/Kaiming uniform initialisation."""
    fan_in, _ = _fan_in_out(shape)
    limit = float(np.sqrt(6.0 / fan_in))
    return uniform(shape, -limit, limit, rng)


_INITIALIZERS = {
    "zeros": lambda shape, rng=None: zeros(shape),
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "he_uniform": he_uniform,
}


def get_initializer(name: str):
    """Look up an initialiser by name."""
    try:
        return _INITIALIZERS[name]
    except KeyError as exc:
        raise ValueError(f"unknown initializer {name!r}; choices: {sorted(_INITIALIZERS)}") from exc
