"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy.

    ``predictions`` may be logits/probabilities ``(N, classes)`` or already
    class indices ``(N,)``.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predicted = predictions.argmax(axis=-1)
    else:
        predicted = predictions
    if predicted.shape[0] != labels.shape[0]:
        raise ValueError("prediction/label count mismatch")
    if predicted.shape[0] == 0:
        return 0.0
    return float((predicted == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy from logits/probabilities."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError("top_k_accuracy requires 2-D logits")
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, logits.shape[1])
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (topk == labels[:, None]).any(axis=1)
    return float(hits.mean()) if hits.size else 0.0


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class."""
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=-1)
    labels = np.asarray(labels)
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Per-class recall (diagonal of the row-normalised confusion matrix)."""
    matrix = confusion_matrix(predictions, labels, n_classes)
    totals = matrix.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        recalls = np.where(totals > 0, np.diag(matrix) / np.maximum(totals, 1), 0.0)
    return recalls.astype(np.float64)
