"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.layers.base import Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter` objects."""

    def __init__(self, parameters: List[Parameter], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.parameters = [p for p in parameters if p.trainable]
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self._step_count = 0

    def zero_grad(self) -> None:
        """Reset gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the parameters' accumulated gradients."""
        self._step_count += 1
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.value
            self._update(param, grad)

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def step_count(self) -> int:
        """Number of ``step`` calls applied so far."""
        return self._step_count


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        if self.momentum > 0:
            key = id(param)
            vel = self._velocity.get(key)
            if vel is None:
                vel = np.zeros_like(param.value)
            vel = self.momentum * vel + grad
            self._velocity[key] = vel
            update = grad + self.momentum * vel if self.nesterov else vel
        else:
            update = grad
        param.value -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param.value)
            v = np.zeros_like(param.value)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * (grad * grad)
        self._m[key] = m
        self._v[key] = v
        t = self._step_count
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRScheduler:
    """Simple step-decay learning-rate scheduler."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the (possibly decayed) learning rate."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
