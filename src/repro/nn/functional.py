"""Vectorised numerical primitives shared by the float and quantized stacks.

All convolution-like operators are expressed through :func:`im2col` so the hot
path is a single large matrix multiplication (BLAS) rather than Python loops,
following the vectorisation guidance of the scientific-Python optimisation
notes.  The same im2col layout is reused by the CMSIS-NN-style int8 kernels in
:mod:`repro.kernels`, which is what makes the paper's "unpacked operand"
bookkeeping identical between the float and quantized paths.

Layout conventions
------------------
* Activations: ``(batch, height, width, channels)`` -- NHWC.
* Convolution weights: ``(out_channels, kernel_h, kernel_w, in_channels)`` --
  CMSIS-NN's OHWI order.
* im2col patches: ``(batch, out_h, out_w, kernel_h * kernel_w * in_channels)``
  with the last axis ordered ``(kh, kw, in_ch)`` -- i.e. the flattened
  receptive field an MCU kernel walks over.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def pair(value: int | Tuple[int, int]) -> Tuple[int, int]:
    """Normalise a scalar-or-pair hyperparameter to a 2-tuple."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_shape(
    in_h: int, in_w: int, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
) -> Tuple[int, int]:
    """Spatial output shape of a convolution/pool with the given geometry."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (in_h + 2 * ph - kh) // sh + 1
    out_w = (in_w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"invalid convolution geometry: input {in_h}x{in_w}, kernel {kh}x{kw}, "
            f"stride {sh}x{sw}, padding {ph}x{pw} -> output {out_h}x{out_w}"
        )
    return out_h, out_w


def pad_nhwc(x: np.ndarray, padding: Tuple[int, int], value: float = 0.0) -> np.ndarray:
    """Zero-pad (or constant-pad) the spatial dims of an NHWC tensor."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    return np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)), mode="constant", constant_values=value)


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    pad_value: float = 0.0,
) -> np.ndarray:
    """Extract convolution patches as a matrix.

    Parameters
    ----------
    x:
        NHWC input of shape ``(N, H, W, C)``.
    kernel, stride, padding:
        Convolution geometry.
    pad_value:
        Constant used for padding (the quantized path pads with the input
        zero-point rather than 0).

    Returns
    -------
    ndarray
        ``(N, out_h, out_w, kh * kw * C)`` patch matrix whose last axis is
        ordered ``(kh, kw, c)``.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"im2col expects NHWC input, got shape {x.shape}")
    n, in_h, in_w, in_c = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h, out_w = conv_output_shape(in_h, in_w, kernel, stride, padding)
    xp = pad_nhwc(x, padding, value=pad_value)

    # Strided sliding-window view: (N, out_h, out_w, kh, kw, C) without copy.
    s = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, out_h, out_w, kh, kw, in_c),
        strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
        writeable=False,
    )
    return np.ascontiguousarray(windows.reshape(n, out_h, out_w, kh * kw * in_c))


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Scatter-add patch gradients back to an NHWC input gradient.

    Inverse (adjoint) of :func:`im2col`; used by ``Conv2D`` backward.
    """
    n, in_h, in_w, in_c = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = conv_output_shape(in_h, in_w, kernel, stride, padding)
    cols = cols.reshape(n, out_h, out_w, kh, kw, in_c)

    padded = np.zeros((n, in_h + 2 * ph, in_w + 2 * pw, in_c), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, i:i_end:sh, j:j_end:sw, :] += cols[:, :, :, i, j, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, ph : ph + in_h, pw : pw + in_w, :]


def conv2d_forward(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
) -> Tuple[np.ndarray, np.ndarray]:
    """Float convolution via im2col.

    Parameters
    ----------
    x:
        NHWC input ``(N, H, W, Cin)``.
    weights:
        OHWI weights ``(Cout, kh, kw, Cin)``.
    bias:
        Optional ``(Cout,)`` bias.

    Returns
    -------
    (output, cols):
        ``output`` is ``(N, out_h, out_w, Cout)``; ``cols`` is the im2col
        matrix (cached by the layer for the backward pass).
    """
    out_c, kh, kw, in_c = weights.shape
    if x.shape[-1] != in_c:
        raise ValueError(f"channel mismatch: input has {x.shape[-1]}, weights expect {in_c}")
    cols = im2col(x, (kh, kw), stride, padding)
    w_mat = weights.reshape(out_c, kh * kw * in_c)
    out = cols @ w_mat.T
    if bias is not None:
        out = out + bias
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_input, grad_weights, grad_bias)``.
    """
    out_c, kh, kw, in_c = weights.shape
    n, out_h, out_w, _ = grad_out.shape
    g = grad_out.reshape(n * out_h * out_w, out_c)
    cols_flat = cols.reshape(n * out_h * out_w, kh * kw * in_c)

    grad_w = (g.T @ cols_flat).reshape(out_c, kh, kw, in_c)
    grad_b = g.sum(axis=0)
    grad_cols = g @ weights.reshape(out_c, kh * kw * in_c)
    grad_x = col2im(
        grad_cols.reshape(n, out_h, out_w, kh * kw * in_c), input_shape, (kh, kw), stride, padding
    )
    return grad_x, grad_w, grad_b


def maxpool_forward(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Max pooling; returns output and argmax indices for the backward pass."""
    n, in_h, in_w, c = x.shape
    kh, kw = kernel
    out_h, out_w = conv_output_shape(in_h, in_w, kernel, stride, (0, 0))
    cols = im2col(x, kernel, stride, (0, 0)).reshape(n, out_h, out_w, kh * kw, c)
    arg = cols.argmax(axis=3)
    out = np.take_along_axis(cols, arg[:, :, :, None, :], axis=3).squeeze(axis=3)
    return out, arg


def maxpool_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
) -> np.ndarray:
    """Backward pass of max pooling (route gradient to argmax positions)."""
    n, in_h, in_w, c = input_shape
    kh, kw = kernel
    out_h, out_w = grad_out.shape[1], grad_out.shape[2]
    grad_cols = np.zeros((n, out_h, out_w, kh * kw, c), dtype=grad_out.dtype)
    np.put_along_axis(grad_cols, argmax[:, :, :, None, :], grad_out[:, :, :, None, :], axis=3)
    grad_cols = grad_cols.reshape(n, out_h, out_w, kh * kw * c)
    # im2col last-axis order is (kh, kw, c): reshape above already matches it
    # because argmax was computed on the same layout.
    return col2im(grad_cols, input_shape, kernel, stride, (0, 0))


def avgpool_forward(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    """Average pooling forward."""
    n, in_h, in_w, c = x.shape
    kh, kw = kernel
    out_h, out_w = conv_output_shape(in_h, in_w, kernel, stride, (0, 0))
    cols = im2col(x, kernel, stride, (0, 0)).reshape(n, out_h, out_w, kh * kw, c)
    return cols.mean(axis=3)


def avgpool_backward(
    grad_out: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
) -> np.ndarray:
    """Average pooling backward (spread gradient uniformly)."""
    kh, kw = kernel
    n, out_h, out_w, c = grad_out.shape
    share = grad_out[:, :, :, None, :] / float(kh * kw)
    grad_cols = np.broadcast_to(share, (n, out_h, out_w, kh * kw, c)).reshape(
        n, out_h, out_w, kh * kw * c
    )
    return col2im(grad_cols, input_shape, kernel, stride, (0, 0))


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= n_classes):
        raise ValueError(f"labels out of range for {n_classes} classes")
    out = np.zeros((labels.shape[0], n_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of ReLU given the forward input."""
    return grad_out * (x > 0)
