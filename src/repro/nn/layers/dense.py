"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.init import get_initializer, zeros
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike


class Dense(Layer):
    """Fully-connected layer ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        weight_init: str = "glorot_uniform",
        rng: SeedLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)

        init = get_initializer(weight_init)
        self.weight = self.add_parameter("weight", init((in_features, out_features), rng=rng))
        self.bias = self.add_parameter("bias", zeros((out_features,))) if use_bias else None
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"{self.name}: expected 2-D input (batch, features), got {x.shape}")
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, got {x.shape[1]}"
            )
        if self.training:
            self._cache = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or layer in eval mode)")
        x = self._cache
        self.weight.accumulate_grad(x.T @ grad_out)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_out.sum(axis=0))
        self._cache = None
        return grad_out @ self.weight.value.T

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        (in_features,) = input_shape
        if in_features != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, got {in_features}"
            )
        return (self.out_features,)

    def macs(self, input_shape: Tuple[int, ...]) -> int:
        """Multiply-accumulate count for one input sample."""
        return self.in_features * self.out_features

    def config(self):
        cfg = super().config()
        cfg.update(
            in_features=self.in_features,
            out_features=self.out_features,
            use_bias=self.use_bias,
        )
        return cfg
