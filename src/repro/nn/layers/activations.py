"""Elementwise activation layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers.base import Layer


class _Elementwise(Layer):
    """Common machinery for stateless elementwise activations."""

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)


class ReLU(_Elementwise):
    """Rectified linear unit."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if self.training:
            self._cache = x
        return F.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or layer in eval mode)")
        x = self._cache
        self._cache = None
        return F.relu_grad(x, grad_out)


class Sigmoid(_Elementwise):
    """Logistic sigmoid."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        out = 1.0 / (1.0 + np.exp(-x))
        if self.training:
            self._cache = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or layer in eval mode)")
        out = self._cache
        self._cache = None
        return grad_out * out * (1.0 - out)


class Tanh(_Elementwise):
    """Hyperbolic tangent."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(np.asarray(x, dtype=np.float32))
        if self.training:
            self._cache = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or layer in eval mode)")
        out = self._cache
        self._cache = None
        return grad_out * (1.0 - out * out)


class Softmax(_Elementwise):
    """Softmax over the last axis.

    Normally the loss fuses softmax with cross-entropy; this layer exists for
    inference-time probability outputs and for parity with the deployed model
    graph (CMSIS-NN ships an ``arm_softmax_s8`` kernel).
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.softmax(np.asarray(x, dtype=np.float32), axis=-1)
        if self.training:
            self._cache = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or layer in eval mode)")
        out = self._cache
        self._cache = None
        dot = (grad_out * out).sum(axis=-1, keepdims=True)
        return out * (grad_out - dot)
