"""2-D convolution layer (NHWC activations, OHWI weights)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.init import get_initializer, zeros
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike


class Conv2D(Layer):
    """2-D convolution with the CMSIS-NN OHWI weight layout.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size, stride, padding:
        Spatial geometry (scalar or ``(h, w)`` pair).
    use_bias:
        Add a per-output-channel bias.
    weight_init:
        Name of the initialiser (see :mod:`repro.nn.init`).
    rng:
        Seed or generator for the initialiser.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | Tuple[int, int],
        stride: int | Tuple[int, int] = 1,
        padding: int | Tuple[int, int] = 0,
        use_bias: bool = True,
        weight_init: str = "he_normal",
        rng: SeedLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = F.pair(kernel_size)
        self.stride = F.pair(stride)
        self.padding = F.pair(padding)
        self.use_bias = bool(use_bias)

        kh, kw = self.kernel_size
        init = get_initializer(weight_init)
        self.weight = self.add_parameter(
            "weight", init((out_channels, kh, kw, in_channels), rng=rng)
        )
        if self.use_bias:
            self.bias = self.add_parameter("bias", zeros((out_channels,)))
        else:
            self.bias = None

        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    # ------------------------------------------------------------------ compute
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        bias = self.bias.value if self.bias is not None else None
        out, cols = F.conv2d_forward(x, self.weight.value, bias, self.stride, self.padding)
        if self.training:
            self._cache = (cols, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or layer in eval mode)")
        cols, input_shape = self._cache
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_out, cols, self.weight.value, input_shape, self.stride, self.padding
        )
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_b)
        self._cache = None
        return grad_x

    # ------------------------------------------------------------------ metadata
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        in_h, in_w, in_c = input_shape
        if in_c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} input channels, got {in_c}")
        out_h, out_w = F.conv_output_shape(in_h, in_w, self.kernel_size, self.stride, self.padding)
        return (out_h, out_w, self.out_channels)

    def macs(self, input_shape: Tuple[int, ...]) -> int:
        """Multiply-accumulate count of this layer for one input sample."""
        out_h, out_w, out_c = self.output_shape(input_shape)
        kh, kw = self.kernel_size
        return out_h * out_w * out_c * kh * kw * self.in_channels

    def config(self):
        cfg = super().config()
        cfg.update(
            in_channels=self.in_channels,
            out_channels=self.out_channels,
            kernel_size=list(self.kernel_size),
            stride=list(self.stride),
            padding=list(self.padding),
            use_bias=self.use_bias,
        )
        return cfg
