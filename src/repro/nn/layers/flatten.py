"""Flatten layer bridging convolutional and dense stages."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Flatten all non-batch dimensions into one feature axis."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        shape = self._input_shape
        self._input_shape = None
        return grad_out.reshape(shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        flat = 1
        for dim in input_shape:
            flat *= int(dim)
        return (flat,)
