"""Batch normalisation layer (per-channel, NHWC or flat inputs)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer


class BatchNorm(Layer):
    """Batch normalisation over the channel (last) axis.

    During training, statistics come from the current batch and running
    estimates are updated with momentum; at inference the running estimates
    are used.  At deployment time batch-norm is folded into the preceding
    convolution (see :func:`repro.quant.folding.fold_batchnorm`), mirroring
    what TFLite/CMSIS deployments do.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)

        self.gamma = self.add_parameter("gamma", np.ones(num_features, dtype=np.float32))
        self.beta = self.add_parameter("beta", np.zeros(num_features, dtype=np.float32))
        # Running statistics are state, not trainable parameters.
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache = None

    def _reduce_axes(self, x: np.ndarray) -> Tuple[int, ...]:
        return tuple(range(x.ndim - 1))

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"{self.name}: expected {self.num_features} channels, got {x.shape[-1]}"
            )
        axes = self._reduce_axes(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        out = self.gamma.value * x_hat + self.beta.value
        if self.training:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or layer in eval mode)")
        x_hat, inv_std = self._cache
        self._cache = None
        axes = self._reduce_axes(grad_out)
        m = float(np.prod([grad_out.shape[a] for a in axes]))

        self.gamma.accumulate_grad((grad_out * x_hat).sum(axis=axes))
        self.beta.accumulate_grad(grad_out.sum(axis=axes))

        g = grad_out * self.gamma.value
        grad_x = (
            inv_std
            / m
            * (m * g - g.sum(axis=axes) - x_hat * (g * x_hat).sum(axis=axes))
        )
        return grad_x.astype(np.float32)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)

    def state_dict(self):
        state = super().state_dict()
        state["running_mean"] = self.running_mean.copy()
        state["running_var"] = self.running_var.copy()
        return state

    def load_state_dict(self, state):
        running_mean = state.pop("running_mean", None)
        running_var = state.pop("running_var", None)
        super().load_state_dict(state)
        if running_mean is not None:
            self.running_mean = np.asarray(running_mean, dtype=np.float32).copy()
        if running_var is not None:
            self.running_var = np.asarray(running_var, dtype=np.float32).copy()

    def config(self):
        cfg = super().config()
        cfg.update(num_features=self.num_features, momentum=self.momentum, eps=self.eps)
        return cfg
