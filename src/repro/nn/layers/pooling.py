"""Max and average pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers.base import Layer


class MaxPool2D(Layer):
    """2-D max pooling over NHWC inputs."""

    def __init__(
        self,
        kernel_size: int | Tuple[int, int] = 2,
        stride: int | Tuple[int, int] | None = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.kernel_size = F.pair(kernel_size)
        self.stride = F.pair(stride) if stride is not None else self.kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        out, argmax = F.maxpool_forward(x, self.kernel_size, self.stride)
        if self.training:
            self._cache = (argmax, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or layer in eval mode)")
        argmax, input_shape = self._cache
        self._cache = None
        return F.maxpool_backward(grad_out, argmax, input_shape, self.kernel_size, self.stride)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        in_h, in_w, c = input_shape
        out_h, out_w = F.conv_output_shape(in_h, in_w, self.kernel_size, self.stride, (0, 0))
        return (out_h, out_w, c)

    def config(self):
        cfg = super().config()
        cfg.update(kernel_size=list(self.kernel_size), stride=list(self.stride))
        return cfg


class AvgPool2D(Layer):
    """2-D average pooling over NHWC inputs."""

    def __init__(
        self,
        kernel_size: int | Tuple[int, int] = 2,
        stride: int | Tuple[int, int] | None = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.kernel_size = F.pair(kernel_size)
        self.stride = F.pair(stride) if stride is not None else self.kernel_size
        self._input_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if self.training:
            self._input_shape = x.shape
        return F.avgpool_forward(x, self.kernel_size, self.stride)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward (or layer in eval mode)")
        shape = self._input_shape
        self._input_shape = None
        return F.avgpool_backward(grad_out, shape, self.kernel_size, self.stride)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        in_h, in_w, c = input_shape
        out_h, out_w = F.conv_output_shape(in_h, in_w, self.kernel_size, self.stride, (0, 0))
        return (out_h, out_w, c)

    def config(self):
        cfg = super().config()
        cfg.update(kernel_size=list(self.kernel_size), stride=list(self.stride))
        return cfg
