"""Base classes for layers and trainable parameters."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable tensor together with its accumulated gradient.

    Attributes
    ----------
    value:
        The parameter values (``float32``).
    grad:
        Accumulated gradient of the most recent backward pass, or ``None``
        before the first backward call.
    name:
        Human-readable name used in state dicts and reports.
    trainable:
        Optimizers skip parameters with ``trainable=False``.
    """

    def __init__(self, value: np.ndarray, name: str = "param", trainable: bool = True):
        self.value = np.asarray(value, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self.trainable = trainable

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.value.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` to the accumulated gradient."""
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.value.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter {self.name} "
                f"shape {self.value.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.shape}, trainable={self.trainable})"


class Layer:
    """Base class of every layer.

    A layer implements ``forward`` and ``backward`` and exposes its trainable
    :class:`Parameter` objects through :meth:`parameters`.  Layers are
    stateful across a forward/backward pair (they cache whatever the backward
    pass needs) but hold no optimizer state.
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name or self.__class__.__name__
        self.training = True
        self._params: Dict[str, Parameter] = {}

    # -- parameter management -------------------------------------------------
    def add_parameter(self, key: str, value: np.ndarray, trainable: bool = True) -> Parameter:
        """Register a trainable parameter under ``key``."""
        param = Parameter(value, name=f"{self.name}.{key}", trainable=trainable)
        self._params[key] = param
        return param

    def parameters(self) -> List[Parameter]:
        """All registered parameters of this layer."""
        return list(self._params.values())

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        """Iterate ``(key, parameter)`` pairs."""
        return iter(self._params.items())

    def zero_grad(self) -> None:
        """Reset the gradients of every parameter."""
        for param in self._params.values():
            param.zero_grad()

    @property
    def n_params(self) -> int:
        """Total number of scalar parameters in the layer."""
        return sum(p.size for p in self._params.values())

    # -- training / evaluation mode -------------------------------------------
    def train(self, mode: bool = True) -> "Layer":
        """Switch between training and evaluation behaviour."""
        self.training = mode
        return self

    def eval(self) -> "Layer":
        """Shortcut for ``train(False)``."""
        return self.train(False)

    # -- computation -----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_out`` and return the gradient w.r.t. the input."""
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output (excluding batch) given the input shape (excluding batch)."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- serialization ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Parameter values keyed by parameter key."""
        return {key: param.value.copy() for key, param in self._params.items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        for key, param in self._params.items():
            if key not in state:
                raise KeyError(f"missing parameter {key!r} for layer {self.name}")
            value = np.asarray(state[key], dtype=np.float32)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {self.name}.{key}: "
                    f"expected {param.value.shape}, got {value.shape}"
                )
            param.value = value.copy()

    def config(self) -> Dict[str, object]:
        """JSON-serialisable description of the layer's hyperparameters."""
        return {"type": self.__class__.__name__, "name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r}, params={self.n_params})"
