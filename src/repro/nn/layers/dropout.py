"""Inverted dropout regularisation layer."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_rng


class Dropout(Layer):
    """Inverted dropout: active only in training mode, identity at inference.

    Dropout never appears in the deployed quantized graph (it is a pure
    training-time regulariser), so the quantization pass simply skips it.
    """

    def __init__(self, rate: float = 0.5, rng: SeedLike = None, name: Optional[str] = None):
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = as_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        mask = self._mask
        self._mask = None
        return grad_out * mask

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)

    def config(self):
        cfg = super().config()
        cfg.update(rate=self.rate)
        return cfg
