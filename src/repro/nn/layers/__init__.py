"""Layer implementations for the float CNN stack."""

from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.pooling import AvgPool2D, MaxPool2D
from repro.nn.layers.activations import ReLU, Sigmoid, Softmax, Tanh
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.norm import BatchNorm

__all__ = [
    "Layer",
    "Parameter",
    "Conv2D",
    "Dense",
    "MaxPool2D",
    "AvgPool2D",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Flatten",
    "Dropout",
    "BatchNorm",
]
