"""Persistence of float models (architecture + weights) to disk.

A trained model is stored as a pair of files:

* ``<stem>.json`` -- the architecture description (:meth:`Sequential.config`);
* ``<stem>.npz``  -- every parameter tensor, keyed ``<layer>/<param>``, plus
  batch-norm running statistics.

The loader rebuilds the layers from the architecture description and then
restores the weights, so a model round-trips bit-exactly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.model import Sequential
from repro.utils.serialization import load_json, load_npz, save_json, save_npz

PathLike = Union[str, Path]

_LAYER_BUILDERS = {
    "Conv2D": lambda cfg: Conv2D(
        cfg["in_channels"],
        cfg["out_channels"],
        kernel_size=tuple(cfg["kernel_size"]),
        stride=tuple(cfg["stride"]),
        padding=tuple(cfg["padding"]),
        use_bias=cfg.get("use_bias", True),
        name=cfg["name"],
    ),
    "Dense": lambda cfg: Dense(
        cfg["in_features"],
        cfg["out_features"],
        use_bias=cfg.get("use_bias", True),
        name=cfg["name"],
    ),
    "MaxPool2D": lambda cfg: MaxPool2D(
        kernel_size=tuple(cfg["kernel_size"]), stride=tuple(cfg["stride"]), name=cfg["name"]
    ),
    "AvgPool2D": lambda cfg: AvgPool2D(
        kernel_size=tuple(cfg["kernel_size"]), stride=tuple(cfg["stride"]), name=cfg["name"]
    ),
    "ReLU": lambda cfg: ReLU(name=cfg["name"]),
    "Sigmoid": lambda cfg: Sigmoid(name=cfg["name"]),
    "Tanh": lambda cfg: Tanh(name=cfg["name"]),
    "Softmax": lambda cfg: Softmax(name=cfg["name"]),
    "Flatten": lambda cfg: Flatten(name=cfg["name"]),
    "Dropout": lambda cfg: Dropout(rate=cfg.get("rate", 0.5), name=cfg["name"]),
    "BatchNorm": lambda cfg: BatchNorm(
        cfg["num_features"],
        momentum=cfg.get("momentum", 0.9),
        eps=cfg.get("eps", 1e-5),
        name=cfg["name"],
    ),
}


def _paths(stem: PathLike) -> tuple[Path, Path]:
    stem = Path(stem)
    if stem.suffix in {".json", ".npz"}:
        stem = stem.with_suffix("")
    return stem.with_suffix(".json"), stem.with_suffix(".npz")


def save_model(model: Sequential, stem: PathLike) -> Path:
    """Save ``model`` under ``<stem>.json`` + ``<stem>.npz``; returns the JSON path."""
    json_path, npz_path = _paths(stem)
    save_json(json_path, model.config())
    arrays: Dict[str, np.ndarray] = {}
    for layer in model.layers:
        for key, value in layer.state_dict().items():
            arrays[f"{layer.name}/{key}"] = value
    if arrays:
        save_npz(npz_path, arrays)
    return json_path


def load_model(stem: PathLike) -> Sequential:
    """Load a model saved by :func:`save_model`."""
    json_path, npz_path = _paths(stem)
    config = load_json(json_path)

    layers = []
    for layer_cfg in config["layers"]:
        layer_type = layer_cfg["type"]
        if layer_type not in _LAYER_BUILDERS:
            raise ValueError(f"cannot rebuild layer of type {layer_type!r}")
        layers.append(_LAYER_BUILDERS[layer_type](layer_cfg))

    input_shape = tuple(config["input_shape"]) if config.get("input_shape") else None
    model = Sequential(layers, input_shape=input_shape, name=config.get("name", "model"))

    if npz_path.exists():
        arrays = load_npz(npz_path)
        state: Dict[str, Dict[str, np.ndarray]] = {}
        for key, value in arrays.items():
            layer_name, param_key = key.split("/", 1)
            state.setdefault(layer_name, {})[param_key] = value
        model.load_state_dict(state)
    model.eval()
    return model
