"""Loss functions with fused gradients."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import functional as F


class Loss:
    """Base class: ``forward`` returns the scalar loss, ``backward`` the logits gradient."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over integer class labels (fused softmax gradient).

    Parameters
    ----------
    label_smoothing:
        Optional label smoothing factor in ``[0, 1)``.
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = float(label_smoothing)
        self._cache: Tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float32)
        targets = np.asarray(targets)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (batch, classes), got {logits.shape}")
        n, n_classes = logits.shape
        if targets.shape[0] != n:
            raise ValueError("batch size mismatch between logits and targets")

        target_dist = F.one_hot(targets, n_classes)
        if self.label_smoothing > 0:
            target_dist = (
                target_dist * (1.0 - self.label_smoothing) + self.label_smoothing / n_classes
            )
        log_probs = F.log_softmax(logits, axis=-1)
        loss = float(-(target_dist * log_probs).sum(axis=-1).mean())
        self._cache = (F.softmax(logits, axis=-1), target_dist)
        return loss

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, target_dist = self._cache
        self._cache = None
        return (probs - target_dist) / probs.shape[0]


class MSELoss(Loss):
    """Mean squared error (used by regression-style unit tests)."""

    def __init__(self):
        self._cache: Tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float32)
        targets = np.asarray(targets, dtype=np.float32)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        self._cache = (predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        predictions, targets = self._cache
        self._cache = None
        return 2.0 * (predictions - targets) / predictions.size
