"""Float CNN substrate: layers, models, optimizers, losses, training loop.

The stack operates on NHWC (batch, height, width, channels) ``float32`` arrays,
matching the HWC data layout used by CMSIS-NN on microcontrollers, so that the
downstream quantization (:mod:`repro.quant`) and kernel (:mod:`repro.kernels`)
packages can consume trained weights without layout shuffles.
"""

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.model import Sequential
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.trainer import Trainer, TrainingHistory
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.serialization import load_model, save_model

__all__ = [
    "Layer",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "Trainer",
    "TrainingHistory",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "save_model",
    "load_model",
]
