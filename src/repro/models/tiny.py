"""Small models used by unit tests and quickstart examples."""

from __future__ import annotations

from typing import Tuple

from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.utils.rng import SeedLike, spawn_rngs


def build_tiny_cnn(
    input_shape: Tuple[int, int, int] = (16, 16, 3),
    n_classes: int = 10,
    rng: SeedLike = 0,
) -> Sequential:
    """A two-conv CNN small enough for fast unit tests yet structurally
    identical (conv -> relu -> pool -> conv -> relu -> flatten -> fc) to the
    paper's models, so every pipeline stage exercises the same code paths."""
    h, w, c = input_shape
    rngs = spawn_rngs(rng, 4)
    flat = (h // 2) * (w // 2) * 12
    return Sequential(
        [
            Conv2D(c, 8, kernel_size=3, padding=1, rng=rngs[0], name="conv1"),
            ReLU(name="relu1"),
            MaxPool2D(kernel_size=2, name="pool1"),
            Conv2D(8, 12, kernel_size=3, padding=1, rng=rngs[1], name="conv2"),
            ReLU(name="relu2"),
            Flatten(name="flatten"),
            Dense(flat, n_classes, rng=rngs[2], name="fc1"),
        ],
        input_shape=input_shape,
        name="tiny_cnn",
    )


def build_micro_cnn(
    input_shape: Tuple[int, int, int] = (8, 8, 1),
    n_classes: int = 4,
    rng: SeedLike = 0,
) -> Sequential:
    """The smallest meaningful conv model; used by property-based tests."""
    h, w, c = input_shape
    rngs = spawn_rngs(rng, 3)
    flat = (h // 2) * (w // 2) * 4
    return Sequential(
        [
            Conv2D(c, 4, kernel_size=3, padding=1, rng=rngs[0], name="conv1"),
            ReLU(name="relu1"),
            MaxPool2D(kernel_size=2, name="pool1"),
            Flatten(name="flatten"),
            Dense(flat, n_classes, rng=rngs[1], name="fc1"),
        ],
        input_shape=input_shape,
        name="micro_cnn",
    )


def build_tiny_mlp(
    in_features: int = 16,
    n_classes: int = 4,
    hidden: int = 32,
    rng: SeedLike = 0,
) -> Sequential:
    """A small MLP for optimizer/loss unit tests."""
    rngs = spawn_rngs(rng, 2)
    return Sequential(
        [
            Dense(in_features, hidden, rng=rngs[0], name="fc1"),
            ReLU(name="relu1"),
            Dense(hidden, n_classes, rng=rngs[1], name="fc2"),
        ],
        input_shape=(in_features,),
        name="tiny_mlp",
    )
