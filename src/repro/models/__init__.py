"""Model zoo matching the paper's Table-I topologies plus small test models."""

from repro.models.lenet import build_lenet
from repro.models.alexnet import build_alexnet
from repro.models.tiny import build_tiny_cnn, build_tiny_mlp, build_micro_cnn
from repro.models.registry import MODEL_REGISTRY, build_model, list_models

__all__ = [
    "build_lenet",
    "build_alexnet",
    "build_tiny_cnn",
    "build_micro_cnn",
    "build_tiny_mlp",
    "build_model",
    "list_models",
    "MODEL_REGISTRY",
]
