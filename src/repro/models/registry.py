"""Model registry: build models by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.models.alexnet import build_alexnet
from repro.models.lenet import build_lenet
from repro.models.tiny import build_micro_cnn, build_tiny_cnn, build_tiny_mlp
from repro.nn.model import Sequential

#: Mapping of model name -> builder callable.
MODEL_REGISTRY: Dict[str, Callable[..., Sequential]] = {
    "lenet": build_lenet,
    "alexnet": build_alexnet,
    "tiny_cnn": build_tiny_cnn,
    "micro_cnn": build_micro_cnn,
    "tiny_mlp": build_tiny_mlp,
}


def list_models() -> List[str]:
    """Names of every registered model."""
    return sorted(MODEL_REGISTRY)


def build_model(name: str, **kwargs) -> Sequential:
    """Build a registered model by name, forwarding ``kwargs`` to its builder."""
    try:
        builder = MODEL_REGISTRY[name]
    except KeyError as exc:
        raise ValueError(f"unknown model {name!r}; available: {list_models()}") from exc
    return builder(**kwargs)


def register_model(name: str, builder: Callable[..., Sequential], overwrite: bool = False) -> None:
    """Register a custom model builder.

    Parameters
    ----------
    name:
        Registry key.
    builder:
        Callable returning a :class:`Sequential`.
    overwrite:
        Allow replacing an existing entry.
    """
    if name in MODEL_REGISTRY and not overwrite:
        raise ValueError(f"model {name!r} already registered (pass overwrite=True to replace)")
    MODEL_REGISTRY[name] = builder
