"""AlexNet variant used by the paper (Table I: topology 5-2-2, ~16.1M MACs).

The paper's "AlexNet" is a CIFAR-10-scaled AlexNet with 5 convolution layers,
2 max-pooling layers and 2 fully-connected layers, totalling ~16.1M MAC
operations per 32x32x3 input.  The configuration below reproduces that MAC
budget:

=====  ==================================  ============
layer  configuration                       MACs
=====  ==================================  ============
conv1  3 -> 24, 5x5, pad 2 (32x32 out)     1,843,200
pool1  2x2 max
conv2  24 -> 48, 5x5, pad 2 (16x16 out)    7,372,800
pool2  2x2 max
conv3  48 -> 64, 3x3, pad 1 (8x8 out)      1,769,472
conv4  64 -> 64, 3x3, pad 1 (8x8 out)      2,359,296
conv5  64 -> 48, 3x3, pad 1 (8x8 out)      1,769,472
fc1    3072 -> 256                         786,432
fc2    256 -> 10                           2,560
total                                      ~15.9 M
=====  ==================================  ============
"""

from __future__ import annotations

from typing import Tuple

from repro.nn import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Sequential
from repro.utils.rng import SeedLike, spawn_rngs


def build_alexnet(
    input_shape: Tuple[int, int, int] = (32, 32, 3),
    n_classes: int = 10,
    width_multiplier: float = 1.0,
    dropout: float = 0.0,
    rng: SeedLike = 0,
) -> Sequential:
    """Build the paper's AlexNet variant.

    Parameters
    ----------
    input_shape:
        Per-sample (H, W, C) input shape.
    n_classes:
        Output classes.
    width_multiplier:
        Scales every channel/feature width (useful for quick tests).
    dropout:
        Optional dropout rate before the classifier (training-time only; it is
        dropped from the deployed quantized graph).
    rng:
        Seed for weight initialisation.
    """
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    h, w, c = input_shape
    rngs = spawn_rngs(rng, 10)

    def scaled(width: int) -> int:
        return max(1, int(round(width * width_multiplier)))

    c1, c2, c3, c4, c5, f1 = (
        scaled(24),
        scaled(48),
        scaled(64),
        scaled(64),
        scaled(48),
        scaled(256),
    )
    pooled_h, pooled_w = h // 4, w // 4
    flat = pooled_h * pooled_w * c5

    layers = [
        Conv2D(c, c1, kernel_size=5, padding=2, rng=rngs[0], name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(kernel_size=2, name="pool1"),
        Conv2D(c1, c2, kernel_size=5, padding=2, rng=rngs[1], name="conv2"),
        ReLU(name="relu2"),
        MaxPool2D(kernel_size=2, name="pool2"),
        Conv2D(c2, c3, kernel_size=3, padding=1, rng=rngs[2], name="conv3"),
        ReLU(name="relu3"),
        Conv2D(c3, c4, kernel_size=3, padding=1, rng=rngs[3], name="conv4"),
        ReLU(name="relu4"),
        Conv2D(c4, c5, kernel_size=3, padding=1, rng=rngs[4], name="conv5"),
        ReLU(name="relu5"),
        Flatten(name="flatten"),
    ]
    if dropout > 0:
        layers.append(Dropout(rate=dropout, rng=rngs[5], name="dropout"))
    layers += [
        Dense(flat, f1, rng=rngs[6], name="fc1"),
        ReLU(name="relu6"),
        Dense(f1, n_classes, rng=rngs[7], name="fc2"),
    ]
    return Sequential(layers, input_shape=input_shape, name="alexnet")
