"""LeNet variant used by the paper (Table I: topology 3-2-2, ~4.5M MACs).

The paper's LeNet is a CIFAR-10-sized LeNet with 3 convolution layers,
2 max-pooling layers and 2 fully-connected layers, totalling ~4.5M MAC
operations per 32x32x3 input.  The channel widths below reproduce that MAC
budget:

=====  ==================================  ============
layer  configuration                       MACs
=====  ==================================  ============
conv1  3 -> 16, 5x5, pad 2 (32x32 out)     1,228,800
pool1  2x2 max                             --
conv2  16 -> 26, 5x5, pad 2 (16x16 out)    2,662,400
pool2  2x2 max                             --
conv3  26 -> 32, 3x3, pad 1 (8x8 out)      479,232
fc1    2048 -> 72                          147,456
fc2    72 -> 10                            720
total                                      ~4.52 M
=====  ==================================  ============
"""

from __future__ import annotations

from typing import Tuple

from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.utils.rng import SeedLike, spawn_rngs


def build_lenet(
    input_shape: Tuple[int, int, int] = (32, 32, 3),
    n_classes: int = 10,
    width_multiplier: float = 1.0,
    rng: SeedLike = 0,
) -> Sequential:
    """Build the paper's LeNet variant.

    Parameters
    ----------
    input_shape:
        Per-sample (H, W, C) input shape; the paper uses (32, 32, 3).
    n_classes:
        Output classes (10 for CIFAR-10).
    width_multiplier:
        Scales every channel/feature width (useful for quick tests).
    rng:
        Seed for weight initialisation.
    """
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    h, w, c = input_shape
    rngs = spawn_rngs(rng, 8)

    def scaled(width: int) -> int:
        return max(1, int(round(width * width_multiplier)))

    c1, c2, c3, f1 = scaled(16), scaled(26), scaled(32), scaled(72)
    pooled_h, pooled_w = h // 4, w // 4
    flat = pooled_h * pooled_w * c3

    model = Sequential(
        [
            Conv2D(c, c1, kernel_size=5, padding=2, rng=rngs[0], name="conv1"),
            ReLU(name="relu1"),
            MaxPool2D(kernel_size=2, name="pool1"),
            Conv2D(c1, c2, kernel_size=5, padding=2, rng=rngs[1], name="conv2"),
            ReLU(name="relu2"),
            MaxPool2D(kernel_size=2, name="pool2"),
            Conv2D(c2, c3, kernel_size=3, padding=1, rng=rngs[2], name="conv3"),
            ReLU(name="relu3"),
            Flatten(name="flatten"),
            Dense(flat, f1, rng=rngs[3], name="fc1"),
            ReLU(name="relu4"),
            Dense(f1, n_classes, rng=rngs[4], name="fc2"),
        ],
        input_shape=input_shape,
        name="lenet",
    )
    return model
