"""A servable deployment: one quantized model, many Pareto service levels.

The DSE's central artifact is a Pareto front of accuracy/MAC-reduction
design points.  A :class:`Deployment` turns that front into *service levels*:
each level prebuilds the operand-retention masks of one
:class:`~repro.core.config.ApproxConfig` and carries its simulated MCU cycle
cost, so the scheduler can switch the executed design per batch with zero
rebuild cost -- under light load serve the exact design, under heavy load
shed cycles by routing batches to a more aggressive skip configuration.

Levels are ordered from most accurate (index 0, usually the exact design) to
most aggressive; escalating means moving to a higher index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.config import ApproxConfig, LayerApproxSpec
from repro.core.significance import SignificanceResult
from repro.core.skipping import Granularity
from repro.core.unpacking import UnpackedLayer
from repro.isa.cost_model import ExecutionStyle, KernelCostModel, cycles_to_latency_ms
from repro.isa.profiles import BoardProfile, STM32U575
from repro.kernels.cycle_counters import CycleCounter
from repro.quant.qmodel import QuantizedModel
from repro.quant.schemes import dequantize


@dataclass
class ServiceLevel:
    """One runtime service level: a design point with prebuilt masks."""

    name: str
    config: ApproxConfig
    #: Prebuilt retention masks (``None`` for the exact design).
    masks: Optional[Dict[str, np.ndarray]]
    #: Accuracy the DSE simulated for this design (``None`` if unknown).
    accuracy: Optional[float]
    #: Fraction of conv MACs removed relative to the exact design.
    conv_mac_reduction: float = 0.0
    #: Simulated MCU cycles per sample (unpacked execution style).
    cycles_per_sample: float = 0.0
    #: Simulated per-sample MCU latency on the deployment board.
    mcu_latency_ms: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view (masks elided)."""
        return {
            "name": self.name,
            "label": self.config.label,
            "taus": self.config.taus(),
            "accuracy": self.accuracy,
            "conv_mac_reduction": self.conv_mac_reduction,
            "cycles_per_sample": self.cycles_per_sample,
            "mcu_latency_ms": self.mcu_latency_ms,
        }


@dataclass
class Deployment:
    """A quantized model bound to an ordered set of service levels."""

    qmodel: QuantizedModel
    levels: List[ServiceLevel]
    board: BoardProfile = field(default_factory=lambda: STM32U575)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a deployment needs at least one service level")

    # ------------------------------------------------------------------ views
    @property
    def baseline_cycles_per_sample(self) -> float:
        """Simulated cycles of the most accurate level (the savings baseline)."""
        return self.levels[0].cycles_per_sample

    def level_index(self, name: str) -> int:
        """Index of the level called ``name``."""
        for i, level in enumerate(self.levels):
            if level.name == name:
                return i
        raise KeyError(f"no service level named {name!r}")

    def describe(self) -> List[Dict[str, Any]]:
        """Level table as plain dicts (for ``GET /levels`` and reports)."""
        return [level.as_dict() for level in self.levels]

    # ------------------------------------------------------------------ execution
    def forward(self, x: np.ndarray, level: int = 0, profiler=None) -> np.ndarray:
        """Dequantized logits of a float NHWC batch under one service level.

        ``profiler`` (a sampled :class:`~repro.obs.profiling.Profiler`)
        switches to a per-layer loop that times each quantized forward as a
        ``layer:NAME`` section; the unprofiled path delegates to the model's
        fused loop untouched.
        """
        masks = self.levels[level].masks
        if profiler is None or not getattr(profiler, "active", False):
            return self.qmodel.forward(x, masks=masks)
        q = self.qmodel.quantize_input(x)
        for layer in self.qmodel.layers:
            mask = masks.get(layer.name) if masks else None
            with profiler.timer(f"layer:{layer.name}"):
                q = layer.forward(q, weight_mask=mask)
        return dequantize(q, self.qmodel.layers[-1].output_params)

    def predict(self, x: np.ndarray, level: int = 0, profiler=None) -> np.ndarray:
        """Predicted class indices of a float NHWC batch under one level."""
        return self.forward(x, level=level, profiler=profiler).argmax(axis=-1)

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_dse(
        cls,
        qmodel: QuantizedModel,
        dse,
        significance: SignificanceResult,
        unpacked: Optional[Dict[str, UnpackedLayer]] = None,
        board: BoardProfile = STM32U575,
        max_levels: int = 8,
        cycle_source: str = "analytic",
    ) -> "Deployment":
        """Build a deployment from a :class:`~repro.core.dse.DSEResult`.

        The Pareto-optimal designs become the service levels, ordered from
        most accurate to most aggressive and thinned to ``max_levels`` while
        always keeping both endpoints.  ``cycle_source="traced"`` costs each
        level from the VM's per-instruction trace of the lowered program
        (:func:`repro.vm.verify.hybrid_cycles_per_sample`) instead of the
        analytic cost model.
        """
        points = sorted(dse.pareto_points(), key=lambda p: (-p.accuracy, p.conv_mac_reduction))
        entries = [
            {
                "label": p.config.label or f"tau={p.config.taus()}",
                "config": p.config,
                "accuracy": p.accuracy,
                "conv_mac_reduction": p.conv_mac_reduction,
            }
            for p in points
        ]
        return cls._build(qmodel, entries, significance, unpacked, board, max_levels, cycle_source)

    @classmethod
    def from_points(
        cls,
        qmodel: QuantizedModel,
        points: Sequence[Mapping[str, Any]],
        significance: SignificanceResult,
        unpacked: Optional[Dict[str, UnpackedLayer]] = None,
        board: BoardProfile = STM32U575,
        max_levels: int = 8,
        cycle_source: str = "analytic",
    ) -> "Deployment":
        """Build a deployment from a DSE point table (``explore``'s JSON output).

        Each point is a mapping with at least ``taus`` (layer name -> tau);
        ``label``, ``accuracy``, ``granularity`` and ``metric`` are honoured
        when present.  The table may contain dominated designs (``explore``
        writes *every* explored point, not only the Pareto front): the build
        recomputes each candidate's true cost from its masks and keeps only
        levels whose simulated cycles strictly improve on every more-accurate
        level, so escalation always sheds cycles.
        """
        entries = []
        for point in points:
            taus = dict(point.get("taus") or {})
            granularity = str(point.get("granularity", Granularity.OPERAND.value))
            metric = str(point.get("metric", "expected_contribution"))
            specs = {
                name: LayerApproxSpec(tau=float(tau), granularity=granularity, metric=metric)
                for name, tau in taus.items()
            }
            config = ApproxConfig(
                model_name=qmodel.name,
                layer_specs=specs,
                label=str(point.get("label", "")),
            )
            accuracy = point.get("accuracy")
            entries.append(
                {
                    "label": config.label or f"tau={config.taus()}",
                    "config": config,
                    "accuracy": None if accuracy is None else float(accuracy),
                    "conv_mac_reduction": float(point.get("conv_mac_reduction", 0.0)),
                }
            )
        # Unknown accuracy sorts last (treated as most aggressive): a point
        # without an accuracy must never outrank -- and via the domination
        # filter evict -- the known-accurate designs, least of all the exact
        # baseline.
        entries.sort(
            key=lambda e: (
                -(e["accuracy"] if e["accuracy"] is not None else float("-inf")),
                e["conv_mac_reduction"],
            )
        )
        return cls._build(qmodel, entries, significance, unpacked, board, max_levels, cycle_source)

    @classmethod
    def _build(
        cls,
        qmodel: QuantizedModel,
        entries: List[Dict[str, Any]],
        significance: SignificanceResult,
        unpacked: Optional[Dict[str, UnpackedLayer]],
        board: BoardProfile,
        max_levels: int,
        cycle_source: str = "analytic",
    ) -> "Deployment":
        if cycle_source not in ("analytic", "traced"):
            raise ValueError(
                f"unknown cycle_source {cycle_source!r}; expected 'analytic' or 'traced'"
            )
        if not entries:
            raise ValueError("no design points to build service levels from")
        # Drop duplicate designs (same tau assignment) keeping the first.
        seen = set()
        unique: List[Dict[str, Any]] = []
        for entry in entries:
            key = tuple(sorted(entry["config"].taus().items()))
            if key in seen:
                continue
            seen.add(key)
            unique.append(entry)
        if max_levels >= 1 and len(unique) > max_levels:
            # Even spread over the accuracy ordering, endpoints included.
            idx = np.linspace(0, len(unique) - 1, max_levels).round().astype(int)
            unique = [unique[i] for i in sorted(set(idx.tolist()))]

        from repro.core.skipping import conv_mac_reduction

        if cycle_source == "traced":
            # One whole-graph lowering up front; every level then re-lowers
            # only its masked (conv) layers and costs itself from the static
            # per-instruction trace -- no per-level full lowering, no
            # per-level probe forward (the O(levels x model) build this
            # replaces).
            from repro.core.unpacking import unpack_model
            from repro.vm import lower as vm_lower
            from repro.vm.verify import traced_cycles_per_sample

            traced_unpacked = unpacked if unpacked is not None else unpack_model(qmodel)
            base_program = vm_lower.lower_model(qmodel, unpacked=traced_unpacked)

        cost_model = KernelCostModel(ExecutionStyle.UNPACKED)
        probe = np.zeros((1, *qmodel.input_shape), dtype=np.float32)
        levels: List[ServiceLevel] = []
        for entry in unique:
            config: ApproxConfig = entry["config"]
            masks = (
                None
                if config.is_exact
                else config.build_masks(significance, unpacked=unpacked)
            )
            if cycle_source == "traced":
                program = vm_lower.remask_program(base_program, qmodel, traced_unpacked, masks)
                cycles = traced_cycles_per_sample(qmodel, program, masks=masks)
            else:
                counter = CycleCounter()
                qmodel.forward(probe, masks=masks, counter=counter)
                cycles = cost_model.estimate_cycles(counter)
            # A level after the first (most accurate) earns its place only by
            # being cheaper than every level above it -- dominated designs
            # (less accurate, not faster) would make 'escalation' pointless.
            if levels and cycles >= levels[-1].cycles_per_sample:
                continue
            levels.append(
                ServiceLevel(
                    name=f"L{len(levels)}",
                    config=config,
                    masks=masks,
                    accuracy=entry["accuracy"],
                    # The reduction is recomputed from the actual masks rather
                    # than trusted from the (possibly absent) point table.
                    conv_mac_reduction=conv_mac_reduction(qmodel, masks) if masks else 0.0,
                    cycles_per_sample=cycles,
                    mcu_latency_ms=cycles_to_latency_ms(cycles, board),
                )
            )
        return cls(qmodel=qmodel, levels=levels, board=board)
