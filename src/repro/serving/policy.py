"""Adaptive policies: which Pareto design serves the next batch.

A policy maps the current telemetry (:class:`~repro.serving.metrics.MetricsSnapshot`)
to a service-level index.  The scheduler consults it once per batch, so
switching costs nothing -- the masks of every level are prebuilt by the
:class:`~repro.serving.deployment.Deployment`.

Policies are pluggable through :data:`repro.registry.POLICIES`::

    from repro.registry import POLICIES

    @POLICIES.register("accuracy-floor")
    class AccuracyFloorPolicy(ServingPolicy):
        def select(self, levels, snapshot):
            ...

Built-ins:

``fixed``
    Always serve one level (default: the most accurate).
``queue-depth``
    Escalate one skip level per ``depth_per_level`` queued requests -- the
    queue is the load signal, exactly as continuous-batching LLM servers
    treat their waiting queue.  De-escalation is one step per batch with a
    hysteresis margin, so the policy does not flap at a threshold.
``latency-slo``
    A closed control loop on the end-to-end p95 latency: an EWMA tracker
    smooths the observed percentile, and hysteresis (consecutive-breach
    patience plus a post-switch cooldown) steps the service level one notch
    at a time -- escalate while the smoothed p95 sits above the SLO, relax
    once it drops below the low watermark, never flap on a single noisy
    batch.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.registry import POLICIES
from repro.serving.deployment import ServiceLevel
from repro.serving.metrics import MetricsSnapshot


class ServingPolicy:
    """Base policy: stateful selection of the next batch's service level."""

    #: Registry name (informational; the registry key is authoritative).
    policy_name: str = "policy"

    def __init__(self) -> None:
        self._current = 0

    @property
    def current(self) -> int:
        """Index of the most recently selected level."""
        return self._current

    def select(self, levels: Sequence[ServiceLevel], snapshot: MetricsSnapshot) -> int:
        """Return the index of the level that should serve the next batch."""
        raise NotImplementedError

    def _clamp(self, index: int, levels: Sequence[ServiceLevel]) -> int:
        self._current = max(0, min(len(levels) - 1, index))
        return self._current


@POLICIES.register("fixed")
class FixedPolicy(ServingPolicy):
    """Always serve the same level (default: the most accurate)."""

    policy_name = "fixed"

    def __init__(self, level: int = 0) -> None:
        super().__init__()
        self.level = int(level)

    def select(self, levels: Sequence[ServiceLevel], snapshot: MetricsSnapshot) -> int:
        return self._clamp(self.level, levels)


@POLICIES.register("queue-depth")
class QueueDepthPolicy(ServingPolicy):
    """Escalate with queue depth, de-escalate one step at a time.

    Parameters
    ----------
    depth_per_level:
        Queued requests per escalation step: depth ``d`` targets level
        ``d // depth_per_level``.
    hysteresis:
        Extra queued requests the depth must drop below before the policy
        steps back down, preventing oscillation around a threshold.
    """

    policy_name = "queue-depth"

    def __init__(self, depth_per_level: int = 8, hysteresis: int = 2) -> None:
        super().__init__()
        if depth_per_level < 1:
            raise ValueError("depth_per_level must be >= 1")
        self.depth_per_level = int(depth_per_level)
        self.hysteresis = int(hysteresis)

    def select(self, levels: Sequence[ServiceLevel], snapshot: MetricsSnapshot) -> int:
        target = snapshot.queue_depth // self.depth_per_level
        if target > self._current:
            return self._clamp(target, levels)
        if target < self._current:
            # Step down only once the depth clears the hysteresis margin.  The
            # floor of 1 keeps a near-idle queue relaxing even when the margin
            # swallows the whole threshold (small depth_per_level) -- without
            # it the policy would stay pinned at a degraded level forever.
            threshold = self._current * self.depth_per_level - self.hysteresis
            if snapshot.queue_depth < max(threshold, 1):
                return self._clamp(self._current - 1, levels)
        return self._clamp(self._current, levels)


@POLICIES.register("latency-slo")
class LatencySLOPolicy(ServingPolicy):
    """Closed-loop SLO control: keep the smoothed p95 latency under a target.

    The raw windowed p95 is noisy -- one slow batch (a cold cache, a noisy
    CI neighbour) spikes it for a whole window, and a bare threshold flip
    would ping-pong the service level on every spike.  This policy closes
    the loop in three stages:

    1. **EWMA tracker** -- the observed p95 feeds an exponentially weighted
       moving average (``alpha`` is the weight of the newest sample), so the
       control signal follows sustained load, not single outliers.
    2. **Hysteresis via patience** -- the tracker must sit above the SLO
       (or below the low watermark) for ``patience`` consecutive batches
       before the level moves; the counter resets whenever the signal
       returns to the dead band between the watermarks.
    3. **Cooldown** -- after a switch the policy holds for ``cooldown``
       batches, giving the new level's latencies time to reach the window
       before they are judged.

    Escalation and relaxation both step one level at a time, walking the
    Pareto front instead of jumping across it.

    Parameters
    ----------
    slo_ms:
        The p95 latency target in milliseconds.
    low_watermark:
        Fraction of the SLO below which the policy relaxes back toward the
        accurate end (escalate above ``slo_ms``, de-escalate below
        ``low_watermark * slo_ms``, hold in the dead band between).
    min_samples:
        Completed requests required before the percentile is trusted.
    alpha:
        EWMA weight of the newest p95 observation (1.0 = no smoothing,
        reproducing the old threshold-flip behaviour).
    patience:
        Consecutive out-of-band batches required before a step.
    cooldown:
        Batches to hold after a switch before stepping again.
    """

    policy_name = "latency-slo"

    def __init__(
        self,
        slo_ms: float = 50.0,
        low_watermark: float = 0.5,
        min_samples: int = 8,
        alpha: float = 0.4,
        patience: int = 2,
        cooldown: int = 2,
    ) -> None:
        super().__init__()
        if slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if not 0.0 < low_watermark < 1.0:
            raise ValueError("low_watermark must be in (0, 1)")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.slo_ms = float(slo_ms)
        self.low_watermark = float(low_watermark)
        self.min_samples = int(min_samples)
        self.alpha = float(alpha)
        self.patience = int(patience)
        self.cooldown = int(cooldown)
        self._ewma: Optional[float] = None
        self._breach_streak = 0
        self._slack_streak = 0
        self._since_switch = self.cooldown  # free to act from the first sample

    @property
    def ewma_p95_ms(self) -> Optional[float]:
        """Current value of the smoothed p95 tracker (None before any sample)."""
        return self._ewma

    def _switch(self, index: int, levels: Sequence[ServiceLevel]) -> int:
        self._breach_streak = 0
        self._slack_streak = 0
        self._since_switch = 0
        return self._clamp(index, levels)

    def select(self, levels: Sequence[ServiceLevel], snapshot: MetricsSnapshot) -> int:
        if snapshot.requests_completed < self.min_samples:
            return self._clamp(self._current, levels)
        observed = snapshot.p95_latency_ms
        self._ewma = (
            observed
            if self._ewma is None
            else self.alpha * observed + (1.0 - self.alpha) * self._ewma
        )
        self._since_switch += 1
        if self._ewma > self.slo_ms:
            self._breach_streak += 1
            self._slack_streak = 0
        elif self._ewma < self.low_watermark * self.slo_ms:
            self._slack_streak += 1
            self._breach_streak = 0
        else:  # dead band: hold, and forgive previous excursions
            self._breach_streak = 0
            self._slack_streak = 0
        if self._since_switch <= self.cooldown:
            # Hold for `cooldown` full batches after a switch (the counter was
            # zeroed at the switch and incremented above).
            return self._clamp(self._current, levels)
        if self._breach_streak >= self.patience and self._current < len(levels) - 1:
            return self._switch(self._current + 1, levels)
        if self._slack_streak >= self.patience and self._current > 0:
            return self._switch(self._current - 1, levels)
        return self._clamp(self._current, levels)


def resolve_policy(policy) -> ServingPolicy:
    """Coerce a policy argument: an instance, a registry name, or a class."""
    if isinstance(policy, ServingPolicy):
        return policy
    if isinstance(policy, str):
        return POLICIES.resolve(policy)()
    if isinstance(policy, type) and issubclass(policy, ServingPolicy):
        return policy()
    raise TypeError(f"cannot interpret {policy!r} as a serving policy")
