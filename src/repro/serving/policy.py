"""Adaptive policies: which Pareto design serves the next batch.

A policy maps the current telemetry (:class:`~repro.serving.metrics.MetricsSnapshot`)
to a service-level index.  The scheduler consults it once per batch, so
switching costs nothing -- the masks of every level are prebuilt by the
:class:`~repro.serving.deployment.Deployment`.

Policies are pluggable through :data:`repro.registry.POLICIES`::

    from repro.registry import POLICIES

    @POLICIES.register("accuracy-floor")
    class AccuracyFloorPolicy(ServingPolicy):
        def select(self, levels, snapshot):
            ...

Built-ins:

``fixed``
    Always serve one level (default: the most accurate).
``queue-depth``
    Escalate one skip level per ``depth_per_level`` queued requests -- the
    queue is the load signal, exactly as continuous-batching LLM servers
    treat their waiting queue.  De-escalation is one step per batch with a
    hysteresis margin, so the policy does not flap at a threshold.
``latency-slo``
    A closed control loop on the end-to-end p95 latency: an EWMA tracker
    smooths the observed percentile, and hysteresis (consecutive-breach
    patience plus a post-switch cooldown) steps the service level one notch
    at a time -- escalate while the smoothed p95 sits above the SLO, relax
    once it drops below the low watermark, never flap on a single noisy
    batch.
``cascade``
    Per-request confidence cascading over a calibrated
    :class:`~repro.workflow.cascade.CascadeCalibration`: every batch runs
    the chosen cheap level first and the scheduler re-enqueues requests
    whose softmax margin falls below the calibrated threshold at the exact
    level.  The policy itself is static -- the *per-request* escalation is
    the dynamic part, driven by the :meth:`ServingPolicy.cascade_gate`
    hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.registry import POLICIES
from repro.serving.deployment import ServiceLevel
from repro.serving.metrics import MetricsSnapshot
from repro.workflow.cascade import CascadeCalibration


@dataclass(frozen=True)
class CascadeGate:
    """Per-request escalation rule the scheduler applies to a cheap batch.

    Produced by :meth:`CascadePolicy.cascade_gate`; ``None`` from every
    other policy.  A request served at ``cheap_index`` whose softmax margin
    falls below ``threshold`` is re-enqueued pinned to ``exact_index`` --
    unless its deadline leaves less than ``escalation_headroom_ms``, in
    which case the cheap answer is returned rather than shedding a request
    the cascade itself made late.
    """

    cheap_index: int
    exact_index: int
    cheap_level: str
    exact_level: str
    threshold: float
    escalation_headroom_ms: float
    #: Held-out accuracy of cheap predictions *above* the threshold.
    accept_accuracy: Optional[float] = None
    #: Held-out accuracy of the exact level (escalated requests).
    exact_accuracy: Optional[float] = None
    accuracy_budget: Optional[float] = None


class ServingPolicy:
    """Base policy: stateful selection of the next batch's service level."""

    #: Registry name (informational; the registry key is authoritative).
    policy_name: str = "policy"

    def __init__(self) -> None:
        self._current = 0

    @property
    def current(self) -> int:
        """Index of the most recently selected level."""
        return self._current

    def select(self, levels: Sequence[ServiceLevel], snapshot: MetricsSnapshot) -> int:
        """Return the index of the level that should serve the next batch."""
        raise NotImplementedError

    def cascade_gate(self, levels: Sequence[ServiceLevel]) -> Optional[CascadeGate]:
        """Per-request escalation rule, or ``None`` for whole-batch policies."""
        return None

    def _clamp(self, index: int, levels: Sequence[ServiceLevel]) -> int:
        self._current = max(0, min(len(levels) - 1, index))
        return self._current


@POLICIES.register("fixed")
class FixedPolicy(ServingPolicy):
    """Always serve the same level (default: the most accurate)."""

    policy_name = "fixed"

    def __init__(self, level: int = 0) -> None:
        super().__init__()
        self.level = int(level)

    def select(self, levels: Sequence[ServiceLevel], snapshot: MetricsSnapshot) -> int:
        """The configured level, clamped to the deployment."""
        return self._clamp(self.level, levels)


@POLICIES.register("queue-depth")
class QueueDepthPolicy(ServingPolicy):
    """Escalate with queue depth, de-escalate one step at a time.

    Parameters
    ----------
    depth_per_level:
        Queued requests per escalation step: depth ``d`` targets level
        ``d // depth_per_level``.
    hysteresis:
        Extra queued requests the depth must drop below before the policy
        steps back down, preventing oscillation around a threshold.
    """

    policy_name = "queue-depth"

    def __init__(self, depth_per_level: int = 8, hysteresis: int = 2) -> None:
        super().__init__()
        if depth_per_level < 1:
            raise ValueError("depth_per_level must be >= 1")
        self.depth_per_level = int(depth_per_level)
        self.hysteresis = int(hysteresis)

    def select(self, levels: Sequence[ServiceLevel], snapshot: MetricsSnapshot) -> int:
        """One level per ``depth_per_level`` queued; hysteresis on the way down."""
        target = snapshot.queue_depth // self.depth_per_level
        if target > self._current:
            return self._clamp(target, levels)
        if target < self._current:
            # Step down only once the depth clears the hysteresis margin.  The
            # floor of 1 keeps a near-idle queue relaxing even when the margin
            # swallows the whole threshold (small depth_per_level) -- without
            # it the policy would stay pinned at a degraded level forever.
            threshold = self._current * self.depth_per_level - self.hysteresis
            if snapshot.queue_depth < max(threshold, 1):
                return self._clamp(self._current - 1, levels)
        return self._clamp(self._current, levels)


@POLICIES.register("latency-slo")
class LatencySLOPolicy(ServingPolicy):
    """Closed-loop SLO control: keep the smoothed p95 latency under a target.

    The raw windowed p95 is noisy -- one slow batch (a cold cache, a noisy
    CI neighbour) spikes it for a whole window, and a bare threshold flip
    would ping-pong the service level on every spike.  This policy closes
    the loop in three stages:

    1. **EWMA tracker** -- the observed p95 feeds an exponentially weighted
       moving average (``alpha`` is the weight of the newest sample), so the
       control signal follows sustained load, not single outliers.
    2. **Hysteresis via patience** -- the tracker must sit above the SLO
       (or below the low watermark) for ``patience`` consecutive batches
       before the level moves; the counter resets whenever the signal
       returns to the dead band between the watermarks.
    3. **Cooldown** -- after a switch the policy holds for ``cooldown``
       batches, giving the new level's latencies time to reach the window
       before they are judged.

    Escalation and relaxation both step one level at a time, walking the
    Pareto front instead of jumping across it.

    Parameters
    ----------
    slo_ms:
        The p95 latency target in milliseconds.
    low_watermark:
        Fraction of the SLO below which the policy relaxes back toward the
        accurate end (escalate above ``slo_ms``, de-escalate below
        ``low_watermark * slo_ms``, hold in the dead band between).
    min_samples:
        Completed requests required before the percentile is trusted.
    alpha:
        EWMA weight of the newest p95 observation (1.0 = no smoothing,
        reproducing the old threshold-flip behaviour).
    patience:
        Consecutive out-of-band batches required before a step.
    cooldown:
        Batches to hold after a switch before stepping again.
    priority_class:
        When set (e.g. ``"interactive"``), the control signal is that
        priority class's p95 instead of the global percentile -- so bulk
        traffic cannot mask an interactive-latency breach, and the SLO
        composes with the priority classes instead of averaging over them.
    """

    policy_name = "latency-slo"

    def __init__(
        self,
        slo_ms: float = 50.0,
        low_watermark: float = 0.5,
        min_samples: int = 8,
        alpha: float = 0.4,
        patience: int = 2,
        cooldown: int = 2,
        priority_class: Optional[str] = None,
    ) -> None:
        super().__init__()
        if slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if not 0.0 < low_watermark < 1.0:
            raise ValueError("low_watermark must be in (0, 1)")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.slo_ms = float(slo_ms)
        self.low_watermark = float(low_watermark)
        self.min_samples = int(min_samples)
        self.alpha = float(alpha)
        self.patience = int(patience)
        self.cooldown = int(cooldown)
        self.priority_class = priority_class
        self._ewma: Optional[float] = None
        self._breach_streak = 0
        self._slack_streak = 0
        self._since_switch = self.cooldown  # free to act from the first sample

    @property
    def ewma_p95_ms(self) -> Optional[float]:
        """Current value of the smoothed p95 tracker (None before any sample)."""
        return self._ewma

    def _switch(self, index: int, levels: Sequence[ServiceLevel]) -> int:
        self._breach_streak = 0
        self._slack_streak = 0
        self._since_switch = 0
        return self._clamp(index, levels)

    def _observed(self, snapshot: MetricsSnapshot) -> Optional[float]:
        """The p95 driving the loop, or ``None`` while samples are short.

        With ``priority_class`` set, both the percentile *and* the
        min-samples warm-up come from that class alone -- a flood of bulk
        completions must not unlock (or dilute) the interactive signal.
        """
        if self.priority_class is None:
            if snapshot.requests_completed < self.min_samples:
                return None
            return snapshot.p95_latency_ms
        stats = snapshot.per_priority.get(self.priority_class)
        if stats is None or stats.get("completed", 0) < self.min_samples:
            return None
        return float(stats["p95_latency_ms"])

    def select(self, levels: Sequence[ServiceLevel], snapshot: MetricsSnapshot) -> int:
        """EWMA-track the control signal; step after `patience` breaches."""
        observed = self._observed(snapshot)
        if observed is None:
            return self._clamp(self._current, levels)
        self._ewma = (
            observed
            if self._ewma is None
            else self.alpha * observed + (1.0 - self.alpha) * self._ewma
        )
        self._since_switch += 1
        if self._ewma > self.slo_ms:
            self._breach_streak += 1
            self._slack_streak = 0
        elif self._ewma < self.low_watermark * self.slo_ms:
            self._slack_streak += 1
            self._breach_streak = 0
        else:  # dead band: hold, and forgive previous excursions
            self._breach_streak = 0
            self._slack_streak = 0
        if self._since_switch <= self.cooldown:
            # Hold for `cooldown` full batches after a switch (the counter was
            # zeroed at the switch and incremented above).
            return self._clamp(self._current, levels)
        if self._breach_streak >= self.patience and self._current < len(levels) - 1:
            return self._switch(self._current + 1, levels)
        if self._slack_streak >= self.patience and self._current > 0:
            return self._switch(self._current - 1, levels)
        return self._clamp(self._current, levels)


@POLICIES.register("cascade")
class CascadePolicy(ServingPolicy):
    """Confidence cascading: serve cheap first, escalate low-margin requests.

    The policy's ``select`` is trivially static -- it always nominates the
    calibrated cheap level (or the exact level when the calibration chose
    none).  The interesting output is :meth:`cascade_gate`: the scheduler
    uses it to re-enqueue individual below-threshold requests at the exact
    level, so the accuracy/cycles trade is decided per request instead of
    per batch.

    Parameters
    ----------
    calibration:
        A :class:`~repro.workflow.cascade.CascadeCalibration` from the
        ``cascade`` workflow stage.  ``None`` (or a calibration whose sweep
        chose no level) degrades to exact-only serving.
    escalation_headroom_ms:
        Minimum time a request's deadline must have left for escalation to
        be worth attempting; below it the cheap answer is returned instead
        (never escalate a request past its own deadline).
    """

    policy_name = "cascade"

    def __init__(
        self,
        calibration: Optional[CascadeCalibration] = None,
        escalation_headroom_ms: float = 25.0,
    ) -> None:
        super().__init__()
        if escalation_headroom_ms < 0:
            raise ValueError("escalation_headroom_ms must be non-negative")
        self.calibration = calibration
        self.escalation_headroom_ms = float(escalation_headroom_ms)

    def _indices(self, levels: Sequence[ServiceLevel]) -> Optional[tuple]:
        """(cheap, exact) level indices resolved by name, or ``None``."""
        if self.calibration is None or self.calibration.chosen is None:
            return None
        names = [level.name for level in levels]
        try:
            cheap = names.index(self.calibration.chosen)
            exact = names.index(self.calibration.exact_level)
        except ValueError:
            raise ValueError(
                f"cascade calibration levels {self.calibration.chosen!r}/"
                f"{self.calibration.exact_level!r} not found in deployment levels {names}"
            ) from None
        return cheap, exact

    def select(self, levels: Sequence[ServiceLevel], snapshot: MetricsSnapshot) -> int:
        """The calibrated cheap level (exact when the sweep chose none)."""
        indices = self._indices(levels)
        return self._clamp(0 if indices is None else indices[0], levels)

    def cascade_gate(self, levels: Sequence[ServiceLevel]) -> Optional[CascadeGate]:
        """The per-request escalation gate built from the calibration."""
        indices = self._indices(levels)
        if indices is None:
            return None
        point = self.calibration.chosen_point
        return CascadeGate(
            cheap_index=indices[0],
            exact_index=indices[1],
            cheap_level=self.calibration.chosen,
            exact_level=self.calibration.exact_level,
            threshold=point.threshold,
            escalation_headroom_ms=self.escalation_headroom_ms,
            accept_accuracy=point.accept_accuracy,
            exact_accuracy=self.calibration.exact_accuracy,
            accuracy_budget=self.calibration.accuracy_budget,
        )


def resolve_policy(policy) -> ServingPolicy:
    """Coerce a policy argument: an instance, a registry name, or a class."""
    if isinstance(policy, ServingPolicy):
        return policy
    if isinstance(policy, str):
        return POLICIES.resolve(policy)()
    if isinstance(policy, type) and issubclass(policy, ServingPolicy):
        return policy()
    raise TypeError(f"cannot interpret {policy!r} as a serving policy")
