"""The dynamic micro-batching scheduler: the synchronous serving core.

One background thread drains the :class:`~repro.serving.request.RequestQueue`
continuously: pop a coalesced batch (up to ``max_batch_size`` requests or
``max_wait_ms`` of coalescing, whichever first), partition it per model --
the scheduler owns a *deployment table*, and a batch never mixes models --
then for each model group ask that deployment's
:class:`~repro.serving.policy.ServingPolicy` which Pareto service level
should run it, execute the batched forward pass (in-process or sharded over
:class:`~repro.serving.workers.ReplicatedRunner` replicas), complete every
request and record the batch in the shared
:class:`~repro.serving.metrics.ServerMetrics` sink.  As soon as one batch
finishes the next is picked up -- vLLM-style continuous batching with the
"model step" replaced by a batched NumPy int8 forward pass.

Policies, cascade gates and worker runners are *per-deployment state*: each
model on the table gets its own policy instance (policies are stateful --
EWMA trackers, cooldowns, current-level markers), its own cascade gate and
its own runner, so one model's overload cannot push another model off its
operating point.

Tenancy sits in front of the queue: :meth:`Scheduler.submit` resolves the
request's tenant against the :class:`~repro.serving.tenancy.TenantTable`
(unknown tenants are refused), charges its token-bucket rate quota and
in-flight cap (over-quota requests are rejected *before* they cost a queue
slot, surfacing as structured HTTP 429s), and applies the tenant's default
model/priority.  Admitted requests then compete under the queue's weighted
cross-tenant fair draining.

Front ends never touch the model: the HTTP server and the in-process client
only :meth:`Scheduler.submit` requests and block on their events.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.obs import Observability
from repro.serving.deployment import Deployment
from repro.serving.metrics import ServerMetrics
from repro.serving.policy import CascadeGate, ServingPolicy, resolve_policy
from repro.serving.request import (
    DEFAULT_PRIORITY,
    DEFAULT_TENANT,
    Request,
    RequestError,
    RequestQueue,
    RequestTimedOut,
)
from repro.serving.tenancy import TenantQuotaExceeded, TenantTable
from repro.serving.workers import ReplicatedRunner
from repro.utils.logging import get_logger
from repro.workflow.cascade import softmax_margins

logger = get_logger("serving.scheduler")


class SchedulerStopped(RuntimeError):
    """Raised for requests submitted to (or pending in) a stopped scheduler."""


class UnknownModel(RequestError):
    """The request named a model the scheduler's deployment table lacks."""

    def __init__(self, model: str, choices: Iterable[str]):
        self.model = str(model)
        self.choices = sorted(choices)
        super().__init__(
            f"unknown model {self.model!r}; served models: {self.choices}"
        )


class _DeploymentState:
    """Everything the scheduler keeps *per deployment* on its table."""

    __slots__ = ("name", "deployment", "policy", "gate", "runner", "last_level_name")

    def __init__(self, name: str, deployment: Deployment, policy: ServingPolicy):
        self.name = name
        self.deployment = deployment
        self.policy = policy
        self.gate: Optional[CascadeGate] = policy.cascade_gate(deployment.levels)
        self.runner: Optional[ReplicatedRunner] = None
        self.last_level_name: Optional[str] = None


def _normalize_deployments(
    deployment: Union[Deployment, Mapping[str, Deployment], Sequence[Deployment]],
) -> Dict[str, Deployment]:
    """Coerce the constructor's deployment argument to an ordered table.

    Accepts a single :class:`Deployment` (the classic one-model server), a
    mapping of name -> deployment, or a sequence of deployments keyed by
    their quantized model's name.  The first entry is the default model.
    """
    if isinstance(deployment, Deployment):
        return {deployment.qmodel.name: deployment}
    if isinstance(deployment, Mapping):
        table = {str(name): dep for name, dep in deployment.items()}
    else:
        table = {}
        for dep in deployment:
            name = dep.qmodel.name
            if name in table:
                raise ValueError(
                    f"duplicate deployment name {name!r}; pass a mapping to disambiguate"
                )
            table[name] = dep
    if not table:
        raise ValueError("the scheduler needs at least one deployment")
    for name, dep in table.items():
        if not isinstance(dep, Deployment):
            raise TypeError(f"deployment table entry {name!r} is not a Deployment")
    return table


class Scheduler:
    """Continuous micro-batching over a table of deployments.

    Parameters
    ----------
    deployment:
        The servable model(s): a single :class:`Deployment`, a mapping of
        model name -> deployment, or a sequence of deployments (keyed by
        their quantized model names).  The first entry is the *default
        model* -- requests that name no model are served by it.
    policy:
        Per-deployment level-selection policy: a registry name (``"fixed"``,
        ``"queue-depth"``, ``"latency-slo"``), a policy class (each
        deployment gets a fresh instance -- policies are stateful), a
        :class:`ServingPolicy` instance (single-deployment tables only), or
        a mapping of model name -> any of the above (missing models fall
        back to ``"fixed"``).
    max_batch_size:
        Largest coalesced batch (before per-model partitioning).
    max_wait_ms:
        Longest a batch leader waits for co-riders before executing.
    n_workers:
        ``> 1`` shards large batches over per-process model replicas
        (applies to every deployment on the table).
    metrics:
        Shared telemetry sink; a fresh one is created when omitted (backed
        by the observability bundle's registry, so the Prometheus endpoint
        sees every counter).
    starvation_ms:
        Aging bound of the priority queue: a queued request older than this
        is served ahead of the priority order (``None``: strict priority).
    obs:
        Observability bundle (tracer, profiler, event log, registry); the
        default enables tracing and events with profiling off.  Pass
        :meth:`Observability.disabled() <repro.obs.Observability.disabled>`
        for the minimal-overhead configuration.
    tenants:
        :class:`~repro.serving.tenancy.TenantTable` (or an iterable of
        :class:`~repro.serving.tenancy.TenantConfig`) for quota enforcement
        and weighted fair queueing; omitted, only the unlimited default
        tenant exists.
    default_model:
        Override which table entry serves model-less requests (defaults to
        the first deployment).
    """

    def __init__(
        self,
        deployment: Union[Deployment, Mapping[str, Deployment], Sequence[Deployment]],
        policy: Union[str, ServingPolicy, type, Mapping[str, object]] = "fixed",
        max_batch_size: int = 32,
        max_wait_ms: float = 5.0,
        n_workers: int = 1,
        metrics: Optional[ServerMetrics] = None,
        starvation_ms: Optional[float] = 2000.0,
        obs: Optional[Observability] = None,
        tenants: Optional[Union[TenantTable, Iterable]] = None,
        default_model: Optional[str] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        table = _normalize_deployments(deployment)
        if default_model is None:
            default_model = next(iter(table))
        elif default_model not in table:
            raise UnknownModel(default_model, table)
        self.default_model = default_model
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        if tenants is None:
            self.tenants = TenantTable()
        elif isinstance(tenants, TenantTable):
            self.tenants = tenants
        else:
            self.tenants = TenantTable(tenants)
        self.queue = RequestQueue(
            starvation_ms=starvation_ms, tenant_weights=self.tenants.weights()
        )
        board = table[default_model].board
        if obs is None:
            # Share the sink's registry so /metrics?format=prometheus and a
            # future fleet aggregator read the same counters the sink writes.
            obs = Observability(registry=metrics.registry if metrics is not None else None)
        self.obs = obs
        self.metrics = metrics or ServerMetrics(
            baseline_cycles_per_sample=table[default_model].baseline_cycles_per_sample,
            cycles_to_ms=board.cycles_to_seconds(1.0) * 1e3,
            registry=obs.registry,
        )
        self.metrics.configure_tenants(
            {
                name: {
                    "slo_ms": config.slo_ms,
                    "weight": config.weight,
                }
                for name, config in (
                    (name, self.tenants.get(name)) for name in self.tenants.names()
                )
            }
        )
        self.queue.events = obs.events if obs.events.enabled else None
        # Per-deployment state: each model gets its own policy instance,
        # cascade gate and worker runner.  Cascade telemetry metadata is
        # installed for the first gated deployment (the snapshot has one
        # cascade block; per-model cascade counters stay separable via the
        # attempts' level labels).
        self._states: Dict[str, _DeploymentState] = {}
        for name, dep in table.items():
            self._states[name] = _DeploymentState(
                name, dep, self._resolve_policy_for(policy, name, len(table))
            )
        for state in self._states.values():
            if state.gate is not None:
                gate = state.gate
                self.metrics.configure_cascade(
                    cheap_level=gate.cheap_level,
                    exact_level=gate.exact_level,
                    threshold=gate.threshold,
                    accept_accuracy=gate.accept_accuracy,
                    exact_accuracy=gate.exact_accuracy,
                    accuracy_budget=gate.accuracy_budget,
                )
                break
        self._sections_emitted = 0
        self.n_workers = int(n_workers)
        self._runners_open = False
        self._open_runners()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @staticmethod
    def _resolve_policy_for(policy, model: str, n_models: int) -> ServingPolicy:
        """Instantiate the policy spec for one deployment-table entry."""
        if isinstance(policy, Mapping):
            # A mapping assigns each model its own entry, so instances are
            # fine here -- they are not shared across deployments.
            return resolve_policy(policy.get(model, "fixed"))
        if isinstance(policy, ServingPolicy) and n_models > 1:
            raise ValueError(
                "a ServingPolicy instance cannot be shared across a multi-model "
                "deployment table (policies are stateful); pass a name, a class "
                "or a {model: policy} mapping instead"
            )
        return resolve_policy(policy)

    # ------------------------------------------------------------------ table views
    @property
    def deployments(self) -> Dict[str, Deployment]:
        """The deployment table (model name -> deployment), default first."""
        return {name: state.deployment for name, state in self._states.items()}

    @property
    def deployment(self) -> Deployment:
        """The default deployment (single-model back-compat view)."""
        return self._states[self.default_model].deployment

    @property
    def policy(self) -> ServingPolicy:
        """The default deployment's policy (single-model back-compat view)."""
        return self._states[self.default_model].policy

    def models(self) -> List[str]:
        """Served model names, default model first."""
        return list(self._states)

    def policies(self) -> Dict[str, ServingPolicy]:
        """Per-model policy instances."""
        return {name: state.policy for name, state in self._states.items()}

    # ------------------------------------------------------------------ lifecycle
    def _open_runners(self) -> None:
        if not self._runners_open:
            for state in self._states.values():
                state.runner = ReplicatedRunner(state.deployment, n_workers=self.n_workers)
            self._runners_open = True

    @property
    def running(self) -> bool:
        """Whether the scheduler core thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Scheduler":
        """Start (or restart) the scheduler core thread (idempotent)."""
        if self.running:
            return self
        # A stop() released the worker replicas; restarting rebuilds them
        # so n_workers > 1 survives a stop/start cycle.
        self._open_runners()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run_loop, name="serving-scheduler", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the core, fail pending requests and release the workers."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        self._record_drain_failures(self.queue.drain(SchedulerStopped("scheduler stopped")))
        for state in self._states.values():
            if state.runner is not None:
                state.runner.close()
                state.runner = None
        self._runners_open = False

    def _record_drain_failures(self, failed: List[Request]) -> None:
        """Attribute drained (shutdown-failed) requests per priority class."""
        if not failed:
            return
        per_priority: Dict[str, int] = {}
        for request in failed:
            per_priority[request.priority] = per_priority.get(request.priority, 0) + 1
        for priority, count in per_priority.items():
            self.metrics.record_failure(count, priority=priority)

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ submission
    def resolve_model(self, model: Optional[str], tenant: Optional[str] = None) -> str:
        """Resolve a request's model name against the deployment table.

        Explicit names win; otherwise the tenant's pinned model, then the
        server default.  Raises :class:`UnknownModel` for names not on the
        table (the structured HTTP 404 of both fronts).
        """
        if model is None and tenant is not None:
            config = self.tenants.get(tenant)
            model = config.model
        name = model if model is not None else self.default_model
        if name not in self._states:
            raise UnknownModel(name, self._states)
        return name

    def _release_tenant(self, request: Request) -> None:
        """Done-callback: return the request's tenant in-flight slot."""
        self.tenants.release(request.tenant)

    def submit(
        self,
        x: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
        trace_id: Optional[str] = None,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Request:
        """Enqueue one input sample; returns the in-flight request.

        ``timeout_ms`` arms a per-request deadline: a request still queued
        when it expires is shed with
        :class:`~repro.serving.request.RequestTimedOut` instead of executed.
        ``priority`` picks the request's class (``interactive`` jumps the
        queue, ``batch`` yields to everything younger than the starvation
        bound); ``None`` defers to the tenant's default class.  ``model``
        routes the request to a deployment-table entry (``None``: the
        tenant's pinned model, then the server default).  ``tenant`` selects
        the quota/fairness identity -- unknown tenants raise
        :class:`~repro.serving.tenancy.UnknownTenant`, over-quota tenants
        :class:`~repro.serving.tenancy.TenantQuotaExceeded` (the fronts'
        structured 403/429).  ``trace_id`` links the request's observability
        spans; the HTTP fronts pass one per POST body.
        """
        if not self.running:
            raise SchedulerStopped("cannot submit to a stopped scheduler")
        tenant_name = tenant if tenant is not None else DEFAULT_TENANT
        config = self.tenants.get(tenant_name)  # raises UnknownTenant
        model_name = self.resolve_model(model, tenant=tenant_name)
        if priority is None:
            priority = config.priority or DEFAULT_PRIORITY
        state = self._states[model_name]
        x = np.asarray(x, dtype=np.float32)
        if x.shape != state.deployment.qmodel.input_shape:
            raise ValueError(
                f"model {model_name!r} expects a sample of shape "
                f"{state.deployment.qmodel.input_shape}, got {x.shape}"
            )
        # Charge quotas only after validation: a malformed request must not
        # burn a rate token.  Every successful admit is paired with a
        # release through the request's done-callback (completion, shed,
        # failure and drain all fire it).
        try:
            self.tenants.admit(tenant_name)
        except TenantQuotaExceeded as error:
            self.metrics.record_tenant_rejection(tenant_name, error.reason)
            if self.obs.events.enabled:
                self.obs.events.emit(
                    "tenant-rejected",
                    f"tenant {tenant_name!r} over {error.reason} quota",
                    level="warning",
                    tenant=tenant_name,
                    reason=error.reason,
                )
            raise
        request = Request(
            x,
            timeout_ms=timeout_ms,
            priority=priority,
            trace_id=trace_id,
            model=model_name,
            tenant=tenant_name,
        )
        request.add_done_callback(self._release_tenant)
        self.queue.put(request)
        if self._stop.is_set():
            # A stop() raced this submit past the running check; its drain may
            # have missed the request, so fail whatever is still queued rather
            # than leaving a waiter hanging until its timeout.
            self._record_drain_failures(self.queue.drain(SchedulerStopped("scheduler stopped")))
        return request

    def submit_many(
        self,
        xs: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
        trace_id: Optional[str] = None,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> List[Request]:
        """Enqueue a batch of samples as individual requests (FIFO order)."""
        return [
            self.submit(
                x,
                timeout_ms=timeout_ms,
                priority=priority,
                trace_id=trace_id,
                model=model,
                tenant=tenant,
            )
            for x in np.asarray(xs, dtype=np.float32)
        ]

    # ------------------------------------------------------------------ core loop
    def _run_loop(self) -> None:
        while not self._stop.is_set():
            poll_started = time.monotonic()
            batch = self.queue.get_batch(self.max_batch_size, self.max_wait_ms)
            if not batch:
                continue  # idle poll: no busy spin, just a shutdown-flag check
            self._execute(batch, poll_started=poll_started)
        logger.info("scheduler core stopped")

    def _execute(self, batch: List[Request], poll_started: Optional[float] = None) -> None:
        obs = self.obs
        profiler = obs.profiler
        sampled = profiler.begin_batch()
        if sampled and poll_started is not None:
            # The poll phase (blocking pop + coalescing window) ended when
            # get_batch returned -- approximate that instant with "now".
            profiler.add("poll", poll_started, time.monotonic())
        # Timeout-based shedding: requests whose deadline passed while they
        # waited are failed here, before any model work -- their co-riders
        # still execute, and an all-expired batch costs nothing but the pop.
        expired = [request for request in batch if request.expired]
        if expired:
            for request in expired:
                request.fail(
                    RequestTimedOut(
                        f"request {request.id} shed: exceeded its {request.timeout_ms:g} ms "
                        "deadline while queued"
                    )
                )
                self.metrics.record_shed(priority=request.priority, tenant=request.tenant)
                if obs.events.enabled:
                    obs.events.emit(
                        "shed",
                        f"request {request.id} shed after {request.timeout_ms:g} ms deadline",
                        level="warning",
                        request_id=request.id,
                        trace_id=request.trace_id,
                        priority=request.priority,
                        tenant=request.tenant,
                        timeout_ms=request.timeout_ms,
                    )
            batch = [request for request in batch if not request.done]
            if not batch:
                return
        self._sections_emitted = 0
        # Per-model partitioning: a coalesced batch may interleave models,
        # but a *forward pass* never mixes them -- each model group executes
        # against its own deployment under its own policy.
        if len(self._states) == 1:
            self._execute_model(self._states[self.default_model], batch, sampled)
            return
        groups: Dict[str, List[Request]] = {}
        for request in batch:
            groups.setdefault(request.model, []).append(request)
        for model_name, group in groups.items():
            self._execute_model(self._states[model_name], group, sampled)

    def _execute_model(
        self, state: _DeploymentState, batch: List[Request], sampled: bool
    ) -> None:
        """Run one model's share of a popped batch under its own policy."""
        obs = self.obs
        profiler = obs.profiler
        # The load signal is the *backlog* left after popping this batch: a
        # single full-batch request on an idle server is not overload and must
        # not push the policy off the accurate end of the front.  Multi-model
        # tables feed each policy its own model's backlog.
        with profiler.timer("policy"):
            depth = (
                self.queue.depth()
                if len(self._states) == 1
                else self.queue.depth(model=state.name)
            )
            snapshot = self.metrics.snapshot(queue_depth=depth)
            level_idx = state.policy.select(state.deployment.levels, snapshot)
        level = state.deployment.levels[level_idx]
        if obs.events.enabled and state.last_level_name not in (None, level.name):
            obs.events.emit(
                "level-switch",
                f"service level {state.last_level_name} -> {level.name}",
                model=state.name,
                from_level=state.last_level_name,
                to_level=level.name,
                policy=type(state.policy).__name__,
                queue_depth=snapshot.queue_depth,
                # The SLO policy's smoothed latency reading at decision time
                # -- the "why" of the switch; None for load-blind policies.
                ewma_p95_ms=getattr(state.policy, "ewma_p95_ms", None),
            )
        state.last_level_name = level.name
        gate = state.gate
        if gate is None:
            self._execute_group(state, batch, level_idx, None, sampled)
            return
        # Cascade path: a popped batch can mix fresh requests (served at the
        # policy's cheap level) with escalated ones pinned to the exact
        # level; each level's group executes as its own forward pass.
        groups: Dict[int, List[Request]] = {}
        for request in batch:
            target = request.pinned_level if request.pinned_level is not None else level_idx
            groups.setdefault(target, []).append(request)
        for target, group in groups.items():
            self._execute_group(
                state, group, target, gate, sampled, track_level=target == level_idx
            )

    def _execute_group(
        self,
        state: _DeploymentState,
        group: List[Request],
        level_idx: int,
        gate: Optional[CascadeGate],
        sampled: bool,
        track_level: bool = True,
    ) -> None:
        """Run one same-model, same-level group: forward pass, telemetry, completion.

        With a cascade ``gate`` and ``level_idx`` at its cheap level, the
        group runs through :meth:`ReplicatedRunner.forward` for logits;
        requests whose softmax margin clears the gate's threshold complete
        with the cheap prediction, the rest are re-enqueued pinned to the
        exact level -- unless their deadline headroom is below the gate's
        ``escalation_headroom_ms``, in which case the cheap answer wins over
        an escalation that would blow the deadline.
        """
        obs = self.obs
        profiler = obs.profiler
        runner = state.runner
        level = state.deployment.levels[level_idx]
        gated = gate is not None and level_idx == gate.cheap_index
        xs = np.stack([request.x for request in group])
        started = time.monotonic()
        try:
            with profiler.timer("execute"):
                if gated:
                    logits = runner.forward(
                        xs, level=level_idx, profiler=profiler if sampled else None
                    )
                    predictions = logits.argmax(axis=-1)
                    margins = softmax_margins(logits)
                else:
                    predictions = runner.predict(
                        xs, level=level_idx, profiler=profiler if sampled else None
                    )
                    margins = None
        except Exception as error:  # pragma: no cover - defensive: fail the batch, keep serving
            logger.exception(
                "batch of %d failed at %s level %s", len(group), state.name, level.name
            )
            per_priority: Dict[str, int] = {}
            for request in group:
                request.fail(error)
                per_priority[request.priority] = per_priority.get(request.priority, 0) + 1
            for priority, count in per_priority.items():
                self.metrics.record_failure(count, priority=priority)
            if obs.events.enabled:
                obs.events.emit(
                    "batch-failure",
                    f"batch of {len(group)} failed at level {level.name}: {error}",
                    level="error",
                    batch_size=len(group),
                    model=state.name,
                    level_name=level.name,
                    error=str(error),
                )
            return
        finished = time.monotonic()
        service_ms = (finished - started) * 1e3
        for request in group:
            request.attempts += 1
            request.service_ms += service_ms
            # Queue wait accumulates across attempts: wait1 + service1 +
            # wait2 + service2 is the end-to-end latency, nothing counted
            # twice -- the second wait starts at the re-enqueue.
            request.wait_ms += (started - request.enqueued_at) * 1e3
        if gate is not None:
            self.metrics.record_cascade_attempt(level.name, len(group), level.cycles_per_sample)
        accepted: List[tuple] = []
        escalate: List[Request] = []
        if gated:
            stopping = self._stop.is_set()
            for request, prediction, margin in zip(group, predictions, margins):
                request.margin = float(margin)
                if margin >= gate.threshold:
                    accepted.append((request, prediction))
                    continue
                if request.deadline is not None:
                    remaining_ms = (request.deadline - finished) * 1e3
                    if remaining_ms <= gate.escalation_headroom_ms:
                        # Never escalate a request past its own deadline: a
                        # cheap answer in time beats an exact answer shed.
                        accepted.append((request, prediction))
                        self.metrics.record_cascade_suppressed(request.priority)
                        if obs.events.enabled:
                            obs.events.emit(
                                "escalation-suppressed",
                                f"request {request.id} kept cheap: {remaining_ms:.1f} ms left "
                                f"< {gate.escalation_headroom_ms:g} ms escalation headroom",
                                request_id=request.id,
                                trace_id=request.trace_id,
                                priority=request.priority,
                                margin=request.margin,
                                remaining_ms=round(remaining_ms, 3),
                            )
                        continue
                if stopping:
                    # The exact pass will never run on a stopping scheduler;
                    # answer cheap instead of failing at drain.
                    accepted.append((request, prediction))
                    continue
                escalate.append(request)
        else:
            accepted = list(zip(group, predictions))
        batch_parent: Optional[str] = None
        if obs.tracer.enabled:
            # One span for the coalesced batch (anchored to the leader's
            # trace), linking every member trace id; per-request queue-wait
            # and execute spans hang off it below.
            batch_span = obs.tracer.record_span(
                "batch-execute",
                trace_id=group[0].trace_id,
                start_s=started,
                end_s=finished,
                model=state.name,
                level=level.name,
                batch_size=len(group),
                member_trace_ids=[request.trace_id for request in group],
                **({"escalations": len(escalate)} if gated else {}),
            )
            batch_parent = batch_span.span_id if batch_span is not None else None
            if sampled:
                # Per-layer sections timed by the profiled forward become
                # children of the batch span -- the "per-layer forward" leg.
                # Groups share one profiler batch, so emit only the sections
                # this group's forward appended.
                sections = profiler.batch_sections()
                for section, start_s, end_s in sections[self._sections_emitted :]:
                    if ":" in section:
                        obs.tracer.record_span(
                            section,
                            trace_id=group[0].trace_id,
                            start_s=start_s,
                            end_s=end_s,
                            parent_id=batch_parent,
                        )
                self._sections_emitted = len(sections)
        with profiler.timer("callback"):
            # Record telemetry and spans *before* completing any request:
            # complete() wakes the front-end waiter, and a client that
            # immediately scrapes /metrics or /trace must see this batch.
            latencies = [(finished - request.submitted_at) * 1e3 for request, _ in accepted]
            self.metrics.record_batch(
                level.name,
                len(group),
                latencies,
                cycles_per_sample=level.cycles_per_sample,
                priorities=[request.priority for request, _ in accepted],
                track_level=track_level,
                model=state.name,
                tenants=[request.tenant for request, _ in accepted],
                baseline_cycles_per_sample=state.deployment.baseline_cycles_per_sample,
            )
            if obs.tracer.enabled:
                for request in group:
                    obs.tracer.record_span(
                        "queue-wait",
                        trace_id=request.trace_id,
                        start_s=request.enqueued_at,
                        end_s=started,
                        priority=request.priority,
                        **({"attempt": request.attempts} if request.attempts > 1 else {}),
                    )
                    obs.tracer.record_span(
                        "execute",
                        trace_id=request.trace_id,
                        start_s=started,
                        end_s=finished,
                        parent_id=batch_parent,
                        level=level.name,
                    )
            for request in escalate:
                request.escalated = True
                request.pinned_level = gate.exact_index
                self.metrics.record_cascade_escalation(request.priority)
                requeued_at = time.monotonic()
                if obs.tracer.enabled:
                    # The escalation hop itself, under the same trace id as
                    # both attempts' queue-wait/execute spans.
                    obs.tracer.record_span(
                        "escalate",
                        trace_id=request.trace_id,
                        start_s=finished,
                        end_s=requeued_at,
                        parent_id=batch_parent,
                        from_level=level.name,
                        to_level=gate.exact_level,
                        margin=request.margin,
                        threshold=gate.threshold,
                    )
                if obs.events.enabled:
                    obs.events.emit(
                        "escalate",
                        f"request {request.id} margin {request.margin:.3f} < "
                        f"{gate.threshold:.3f}: escalating {level.name} -> {gate.exact_level}",
                        request_id=request.id,
                        trace_id=request.trace_id,
                        priority=request.priority,
                        margin=request.margin,
                        threshold=gate.threshold,
                    )
                self.queue.put(request, requeue=True)
            if gate is not None and accepted:
                exact_cycles = state.deployment.levels[gate.exact_index].cycles_per_sample
                self.metrics.record_cascade_completions(len(accepted), exact_cycles)
            for request, prediction in accepted:
                request.complete(int(prediction), level.name, request.service_ms)
