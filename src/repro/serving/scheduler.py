"""The dynamic micro-batching scheduler: the synchronous serving core.

One background thread drains the :class:`~repro.serving.request.RequestQueue`
continuously: pop a coalesced batch (up to ``max_batch_size`` requests or
``max_wait_ms`` of coalescing, whichever first), ask the
:class:`~repro.serving.policy.ServingPolicy` which Pareto service level
should run it, execute the batched forward pass (in-process or sharded over
:class:`~repro.serving.workers.ReplicatedRunner` replicas), complete every
request and record the batch in the shared
:class:`~repro.serving.metrics.ServerMetrics` sink.  As soon as one batch
finishes the next is picked up -- vLLM-style continuous batching with the
"model step" replaced by a batched NumPy int8 forward pass.

Front ends never touch the model: the HTTP server and the in-process client
only :meth:`Scheduler.submit` requests and block on their events.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Union

import numpy as np

from repro.serving.deployment import Deployment
from repro.serving.metrics import ServerMetrics
from repro.serving.policy import ServingPolicy, resolve_policy
from repro.serving.request import DEFAULT_PRIORITY, Request, RequestQueue, RequestTimedOut
from repro.serving.workers import ReplicatedRunner
from repro.utils.logging import get_logger

logger = get_logger("serving.scheduler")


class SchedulerStopped(RuntimeError):
    """Raised for requests submitted to (or pending in) a stopped scheduler."""


class Scheduler:
    """Continuous micro-batching over a deployment's service levels.

    Parameters
    ----------
    deployment:
        The servable model + Pareto service levels.
    policy:
        A :class:`ServingPolicy` instance, registry name (``"fixed"``,
        ``"queue-depth"``, ``"latency-slo"``) or policy class.
    max_batch_size:
        Largest coalesced batch.
    max_wait_ms:
        Longest a batch leader waits for co-riders before executing.
    n_workers:
        ``> 1`` shards large batches over per-process model replicas.
    metrics:
        Shared telemetry sink; a fresh one is created when omitted.
    starvation_ms:
        Aging bound of the priority queue: a queued request older than this
        is served ahead of the priority order (``None``: strict priority).
    """

    def __init__(
        self,
        deployment: Deployment,
        policy: Union[str, ServingPolicy, type] = "fixed",
        max_batch_size: int = 32,
        max_wait_ms: float = 5.0,
        n_workers: int = 1,
        metrics: Optional[ServerMetrics] = None,
        starvation_ms: Optional[float] = 2000.0,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.deployment = deployment
        self.policy = resolve_policy(policy)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.queue = RequestQueue(starvation_ms=starvation_ms)
        board = deployment.board
        self.metrics = metrics or ServerMetrics(
            baseline_cycles_per_sample=deployment.baseline_cycles_per_sample,
            cycles_to_ms=board.cycles_to_seconds(1.0) * 1e3,
        )
        self.n_workers = int(n_workers)
        self._runner = ReplicatedRunner(deployment, n_workers=self.n_workers)
        self._runner_open = True
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ lifecycle
    @property
    def running(self) -> bool:
        """Whether the scheduler core thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Scheduler":
        """Start (or restart) the scheduler core thread (idempotent)."""
        if self.running:
            return self
        if not self._runner_open:
            # A stop() released the worker replicas; restarting rebuilds them
            # so n_workers > 1 survives a stop/start cycle.
            self._runner = ReplicatedRunner(self.deployment, n_workers=self.n_workers)
            self._runner_open = True
        self._stop.clear()
        self._thread = threading.Thread(target=self._run_loop, name="serving-scheduler", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the core, fail pending requests and release the workers."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        failed = self.queue.drain(SchedulerStopped("scheduler stopped"))
        if failed:
            self.metrics.record_failure(failed)
        self._runner.close()
        self._runner_open = False

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ submission
    def submit(
        self,
        x: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: str = DEFAULT_PRIORITY,
    ) -> Request:
        """Enqueue one input sample; returns the in-flight request.

        ``timeout_ms`` arms a per-request deadline: a request still queued
        when it expires is shed with
        :class:`~repro.serving.request.RequestTimedOut` instead of executed.
        ``priority`` picks the request's class (``interactive`` jumps the
        queue, ``batch`` yields to everything younger than the starvation
        bound).
        """
        if not self.running:
            raise SchedulerStopped("cannot submit to a stopped scheduler")
        x = np.asarray(x, dtype=np.float32)
        if x.shape != self.deployment.qmodel.input_shape:
            raise ValueError(
                f"expected a sample of shape {self.deployment.qmodel.input_shape}, got {x.shape}"
            )
        request = Request(x, timeout_ms=timeout_ms, priority=priority)
        self.queue.put(request)
        if self._stop.is_set():
            # A stop() raced this submit past the running check; its drain may
            # have missed the request, so fail whatever is still queued rather
            # than leaving a waiter hanging until its timeout.
            failed = self.queue.drain(SchedulerStopped("scheduler stopped"))
            if failed:
                self.metrics.record_failure(failed)
        return request

    def submit_many(
        self,
        xs: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: str = DEFAULT_PRIORITY,
    ) -> List[Request]:
        """Enqueue a batch of samples as individual requests (FIFO order)."""
        return [
            self.submit(x, timeout_ms=timeout_ms, priority=priority)
            for x in np.asarray(xs, dtype=np.float32)
        ]

    # ------------------------------------------------------------------ core loop
    def _run_loop(self) -> None:
        while not self._stop.is_set():
            batch = self.queue.get_batch(self.max_batch_size, self.max_wait_ms)
            if not batch:
                continue  # idle poll: no busy spin, just a shutdown-flag check
            self._execute(batch)
        logger.info("scheduler core stopped")

    def _execute(self, batch: List[Request]) -> None:
        # Timeout-based shedding: requests whose deadline passed while they
        # waited are failed here, before any model work -- their co-riders
        # still execute, and an all-expired batch costs nothing but the pop.
        expired = [request for request in batch if request.expired]
        if expired:
            for request in expired:
                request.fail(
                    RequestTimedOut(
                        f"request {request.id} shed: exceeded its {request.timeout_ms:g} ms "
                        "deadline while queued"
                    )
                )
                self.metrics.record_shed(priority=request.priority)
            batch = [request for request in batch if not request.done]
            if not batch:
                return
        # The load signal is the *backlog* left after popping this batch: a
        # single full-batch request on an idle server is not overload and must
        # not push the policy off the accurate end of the front.
        snapshot = self.metrics.snapshot(queue_depth=self.queue.depth())
        level_idx = self.policy.select(self.deployment.levels, snapshot)
        level = self.deployment.levels[level_idx]
        xs = np.stack([request.x for request in batch])
        started = time.monotonic()
        try:
            predictions = self._runner.predict(xs, level=level_idx)
        except Exception as error:  # pragma: no cover - defensive: fail the batch, keep serving
            logger.exception("batch of %d failed at level %s", len(batch), level.name)
            for request in batch:
                request.fail(error)
            self.metrics.record_failure(len(batch))
            return
        finished = time.monotonic()
        service_ms = (finished - started) * 1e3
        latencies = []
        for request, prediction in zip(batch, predictions):
            request.wait_ms = (started - request.enqueued_at) * 1e3
            request.complete(int(prediction), level.name, service_ms)
            latencies.append((finished - request.enqueued_at) * 1e3)
        self.metrics.record_batch(
            level.name,
            len(batch),
            latencies,
            cycles_per_sample=level.cycles_per_sample,
            priorities=[request.priority for request in batch],
        )
