"""The dynamic micro-batching scheduler: the synchronous serving core.

One background thread drains the :class:`~repro.serving.request.RequestQueue`
continuously: pop a coalesced batch (up to ``max_batch_size`` requests or
``max_wait_ms`` of coalescing, whichever first), ask the
:class:`~repro.serving.policy.ServingPolicy` which Pareto service level
should run it, execute the batched forward pass (in-process or sharded over
:class:`~repro.serving.workers.ReplicatedRunner` replicas), complete every
request and record the batch in the shared
:class:`~repro.serving.metrics.ServerMetrics` sink.  As soon as one batch
finishes the next is picked up -- vLLM-style continuous batching with the
"model step" replaced by a batched NumPy int8 forward pass.

Front ends never touch the model: the HTTP server and the in-process client
only :meth:`Scheduler.submit` requests and block on their events.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Union

import numpy as np

from repro.obs import Observability
from repro.serving.deployment import Deployment
from repro.serving.metrics import ServerMetrics
from repro.serving.policy import CascadeGate, ServingPolicy, resolve_policy
from repro.serving.request import DEFAULT_PRIORITY, Request, RequestQueue, RequestTimedOut
from repro.serving.workers import ReplicatedRunner
from repro.utils.logging import get_logger
from repro.workflow.cascade import softmax_margins

logger = get_logger("serving.scheduler")


class SchedulerStopped(RuntimeError):
    """Raised for requests submitted to (or pending in) a stopped scheduler."""


class Scheduler:
    """Continuous micro-batching over a deployment's service levels.

    Parameters
    ----------
    deployment:
        The servable model + Pareto service levels.
    policy:
        A :class:`ServingPolicy` instance, registry name (``"fixed"``,
        ``"queue-depth"``, ``"latency-slo"``) or policy class.
    max_batch_size:
        Largest coalesced batch.
    max_wait_ms:
        Longest a batch leader waits for co-riders before executing.
    n_workers:
        ``> 1`` shards large batches over per-process model replicas.
    metrics:
        Shared telemetry sink; a fresh one is created when omitted (backed
        by the observability bundle's registry, so the Prometheus endpoint
        sees every counter).
    starvation_ms:
        Aging bound of the priority queue: a queued request older than this
        is served ahead of the priority order (``None``: strict priority).
    obs:
        Observability bundle (tracer, profiler, event log, registry); the
        default enables tracing and events with profiling off.  Pass
        :meth:`Observability.disabled() <repro.obs.Observability.disabled>`
        for the minimal-overhead configuration.
    """

    def __init__(
        self,
        deployment: Deployment,
        policy: Union[str, ServingPolicy, type] = "fixed",
        max_batch_size: int = 32,
        max_wait_ms: float = 5.0,
        n_workers: int = 1,
        metrics: Optional[ServerMetrics] = None,
        starvation_ms: Optional[float] = 2000.0,
        obs: Optional[Observability] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.deployment = deployment
        self.policy = resolve_policy(policy)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.queue = RequestQueue(starvation_ms=starvation_ms)
        board = deployment.board
        if obs is None:
            # Share the sink's registry so /metrics?format=prometheus and a
            # future fleet aggregator read the same counters the sink writes.
            obs = Observability(registry=metrics.registry if metrics is not None else None)
        self.obs = obs
        self.metrics = metrics or ServerMetrics(
            baseline_cycles_per_sample=deployment.baseline_cycles_per_sample,
            cycles_to_ms=board.cycles_to_seconds(1.0) * 1e3,
            registry=obs.registry,
        )
        self.queue.events = obs.events if obs.events.enabled else None
        # Resolved once: the per-request escalation rule of a cascade policy
        # (None for every whole-batch policy).  Installing the gate metadata
        # in the sink turns on the snapshot's `cascade` telemetry block.
        self._cascade_gate: Optional[CascadeGate] = self.policy.cascade_gate(deployment.levels)
        if self._cascade_gate is not None:
            gate = self._cascade_gate
            self.metrics.configure_cascade(
                cheap_level=gate.cheap_level,
                exact_level=gate.exact_level,
                threshold=gate.threshold,
                accept_accuracy=gate.accept_accuracy,
                exact_accuracy=gate.exact_accuracy,
                accuracy_budget=gate.accuracy_budget,
            )
        self._sections_emitted = 0
        self._last_level_name: Optional[str] = None
        self.n_workers = int(n_workers)
        self._runner = ReplicatedRunner(deployment, n_workers=self.n_workers)
        self._runner_open = True
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ lifecycle
    @property
    def running(self) -> bool:
        """Whether the scheduler core thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Scheduler":
        """Start (or restart) the scheduler core thread (idempotent)."""
        if self.running:
            return self
        if not self._runner_open:
            # A stop() released the worker replicas; restarting rebuilds them
            # so n_workers > 1 survives a stop/start cycle.
            self._runner = ReplicatedRunner(self.deployment, n_workers=self.n_workers)
            self._runner_open = True
        self._stop.clear()
        self._thread = threading.Thread(target=self._run_loop, name="serving-scheduler", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the core, fail pending requests and release the workers."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        self._record_drain_failures(self.queue.drain(SchedulerStopped("scheduler stopped")))
        self._runner.close()
        self._runner_open = False

    def _record_drain_failures(self, failed: List[Request]) -> None:
        """Attribute drained (shutdown-failed) requests per priority class."""
        if not failed:
            return
        per_priority: Dict[str, int] = {}
        for request in failed:
            per_priority[request.priority] = per_priority.get(request.priority, 0) + 1
        for priority, count in per_priority.items():
            self.metrics.record_failure(count, priority=priority)

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ submission
    def submit(
        self,
        x: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: str = DEFAULT_PRIORITY,
        trace_id: Optional[str] = None,
    ) -> Request:
        """Enqueue one input sample; returns the in-flight request.

        ``timeout_ms`` arms a per-request deadline: a request still queued
        when it expires is shed with
        :class:`~repro.serving.request.RequestTimedOut` instead of executed.
        ``priority`` picks the request's class (``interactive`` jumps the
        queue, ``batch`` yields to everything younger than the starvation
        bound).  ``trace_id`` links the request's observability spans; the
        HTTP fronts pass one per POST body.
        """
        if not self.running:
            raise SchedulerStopped("cannot submit to a stopped scheduler")
        x = np.asarray(x, dtype=np.float32)
        if x.shape != self.deployment.qmodel.input_shape:
            raise ValueError(
                f"expected a sample of shape {self.deployment.qmodel.input_shape}, got {x.shape}"
            )
        request = Request(x, timeout_ms=timeout_ms, priority=priority, trace_id=trace_id)
        self.queue.put(request)
        if self._stop.is_set():
            # A stop() raced this submit past the running check; its drain may
            # have missed the request, so fail whatever is still queued rather
            # than leaving a waiter hanging until its timeout.
            self._record_drain_failures(self.queue.drain(SchedulerStopped("scheduler stopped")))
        return request

    def submit_many(
        self,
        xs: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: str = DEFAULT_PRIORITY,
        trace_id: Optional[str] = None,
    ) -> List[Request]:
        """Enqueue a batch of samples as individual requests (FIFO order)."""
        return [
            self.submit(x, timeout_ms=timeout_ms, priority=priority, trace_id=trace_id)
            for x in np.asarray(xs, dtype=np.float32)
        ]

    # ------------------------------------------------------------------ core loop
    def _run_loop(self) -> None:
        while not self._stop.is_set():
            poll_started = time.monotonic()
            batch = self.queue.get_batch(self.max_batch_size, self.max_wait_ms)
            if not batch:
                continue  # idle poll: no busy spin, just a shutdown-flag check
            self._execute(batch, poll_started=poll_started)
        logger.info("scheduler core stopped")

    def _execute(self, batch: List[Request], poll_started: Optional[float] = None) -> None:
        obs = self.obs
        profiler = obs.profiler
        sampled = profiler.begin_batch()
        if sampled and poll_started is not None:
            # The poll phase (blocking pop + coalescing window) ended when
            # get_batch returned -- approximate that instant with "now".
            profiler.add("poll", poll_started, time.monotonic())
        # Timeout-based shedding: requests whose deadline passed while they
        # waited are failed here, before any model work -- their co-riders
        # still execute, and an all-expired batch costs nothing but the pop.
        expired = [request for request in batch if request.expired]
        if expired:
            for request in expired:
                request.fail(
                    RequestTimedOut(
                        f"request {request.id} shed: exceeded its {request.timeout_ms:g} ms "
                        "deadline while queued"
                    )
                )
                self.metrics.record_shed(priority=request.priority)
                if obs.events.enabled:
                    obs.events.emit(
                        "shed",
                        f"request {request.id} shed after {request.timeout_ms:g} ms deadline",
                        level="warning",
                        request_id=request.id,
                        trace_id=request.trace_id,
                        priority=request.priority,
                        timeout_ms=request.timeout_ms,
                    )
            batch = [request for request in batch if not request.done]
            if not batch:
                return
        # The load signal is the *backlog* left after popping this batch: a
        # single full-batch request on an idle server is not overload and must
        # not push the policy off the accurate end of the front.
        with profiler.timer("policy"):
            snapshot = self.metrics.snapshot(queue_depth=self.queue.depth())
            level_idx = self.policy.select(self.deployment.levels, snapshot)
        level = self.deployment.levels[level_idx]
        if obs.events.enabled and self._last_level_name not in (None, level.name):
            obs.events.emit(
                "level-switch",
                f"service level {self._last_level_name} -> {level.name}",
                from_level=self._last_level_name,
                to_level=level.name,
                policy=type(self.policy).__name__,
                queue_depth=snapshot.queue_depth,
                # The SLO policy's smoothed latency reading at decision time
                # -- the "why" of the switch; None for load-blind policies.
                ewma_p95_ms=getattr(self.policy, "ewma_p95_ms", None),
            )
        self._last_level_name = level.name
        gate = self._cascade_gate
        self._sections_emitted = 0
        if gate is None:
            self._execute_group(batch, level_idx, None, sampled)
            return
        # Cascade path: a popped batch can mix fresh requests (served at the
        # policy's cheap level) with escalated ones pinned to the exact
        # level; each level's group executes as its own forward pass.
        groups: Dict[int, List[Request]] = {}
        for request in batch:
            target = request.pinned_level if request.pinned_level is not None else level_idx
            groups.setdefault(target, []).append(request)
        for target, group in groups.items():
            self._execute_group(group, target, gate, sampled, track_level=target == level_idx)

    def _execute_group(
        self,
        group: List[Request],
        level_idx: int,
        gate: Optional[CascadeGate],
        sampled: bool,
        track_level: bool = True,
    ) -> None:
        """Run one same-level group: forward pass, telemetry, completion.

        With a cascade ``gate`` and ``level_idx`` at its cheap level, the
        group runs through :meth:`ReplicatedRunner.forward` for logits;
        requests whose softmax margin clears the gate's threshold complete
        with the cheap prediction, the rest are re-enqueued pinned to the
        exact level -- unless their deadline headroom is below the gate's
        ``escalation_headroom_ms``, in which case the cheap answer wins over
        an escalation that would blow the deadline.
        """
        obs = self.obs
        profiler = obs.profiler
        level = self.deployment.levels[level_idx]
        gated = gate is not None and level_idx == gate.cheap_index
        xs = np.stack([request.x for request in group])
        started = time.monotonic()
        try:
            with profiler.timer("execute"):
                if gated:
                    logits = self._runner.forward(
                        xs, level=level_idx, profiler=profiler if sampled else None
                    )
                    predictions = logits.argmax(axis=-1)
                    margins = softmax_margins(logits)
                else:
                    predictions = self._runner.predict(
                        xs, level=level_idx, profiler=profiler if sampled else None
                    )
                    margins = None
        except Exception as error:  # pragma: no cover - defensive: fail the batch, keep serving
            logger.exception("batch of %d failed at level %s", len(group), level.name)
            per_priority: Dict[str, int] = {}
            for request in group:
                request.fail(error)
                per_priority[request.priority] = per_priority.get(request.priority, 0) + 1
            for priority, count in per_priority.items():
                self.metrics.record_failure(count, priority=priority)
            if obs.events.enabled:
                obs.events.emit(
                    "batch-failure",
                    f"batch of {len(group)} failed at level {level.name}: {error}",
                    level="error",
                    batch_size=len(group),
                    level_name=level.name,
                    error=str(error),
                )
            return
        finished = time.monotonic()
        service_ms = (finished - started) * 1e3
        for request in group:
            request.attempts += 1
            request.service_ms += service_ms
            # Queue wait accumulates across attempts: wait1 + service1 +
            # wait2 + service2 is the end-to-end latency, nothing counted
            # twice -- the second wait starts at the re-enqueue.
            request.wait_ms += (started - request.enqueued_at) * 1e3
        if gate is not None:
            self.metrics.record_cascade_attempt(level.name, len(group), level.cycles_per_sample)
        accepted: List[tuple] = []
        escalate: List[Request] = []
        if gated:
            stopping = self._stop.is_set()
            for request, prediction, margin in zip(group, predictions, margins):
                request.margin = float(margin)
                if margin >= gate.threshold:
                    accepted.append((request, prediction))
                    continue
                if request.deadline is not None:
                    remaining_ms = (request.deadline - finished) * 1e3
                    if remaining_ms <= gate.escalation_headroom_ms:
                        # Never escalate a request past its own deadline: a
                        # cheap answer in time beats an exact answer shed.
                        accepted.append((request, prediction))
                        self.metrics.record_cascade_suppressed(request.priority)
                        if obs.events.enabled:
                            obs.events.emit(
                                "escalation-suppressed",
                                f"request {request.id} kept cheap: {remaining_ms:.1f} ms left "
                                f"< {gate.escalation_headroom_ms:g} ms escalation headroom",
                                request_id=request.id,
                                trace_id=request.trace_id,
                                priority=request.priority,
                                margin=request.margin,
                                remaining_ms=round(remaining_ms, 3),
                            )
                        continue
                if stopping:
                    # The exact pass will never run on a stopping scheduler;
                    # answer cheap instead of failing at drain.
                    accepted.append((request, prediction))
                    continue
                escalate.append(request)
        else:
            accepted = list(zip(group, predictions))
        batch_parent: Optional[str] = None
        if obs.tracer.enabled:
            # One span for the coalesced batch (anchored to the leader's
            # trace), linking every member trace id; per-request queue-wait
            # and execute spans hang off it below.
            batch_span = obs.tracer.record_span(
                "batch-execute",
                trace_id=group[0].trace_id,
                start_s=started,
                end_s=finished,
                level=level.name,
                batch_size=len(group),
                member_trace_ids=[request.trace_id for request in group],
                **({"escalations": len(escalate)} if gated else {}),
            )
            batch_parent = batch_span.span_id if batch_span is not None else None
            if sampled:
                # Per-layer sections timed by the profiled forward become
                # children of the batch span -- the "per-layer forward" leg.
                # Groups share one profiler batch, so emit only the sections
                # this group's forward appended.
                sections = profiler.batch_sections()
                for section, start_s, end_s in sections[self._sections_emitted :]:
                    if ":" in section:
                        obs.tracer.record_span(
                            section,
                            trace_id=group[0].trace_id,
                            start_s=start_s,
                            end_s=end_s,
                            parent_id=batch_parent,
                        )
                self._sections_emitted = len(sections)
        with profiler.timer("callback"):
            # Record telemetry and spans *before* completing any request:
            # complete() wakes the front-end waiter, and a client that
            # immediately scrapes /metrics or /trace must see this batch.
            latencies = [(finished - request.submitted_at) * 1e3 for request, _ in accepted]
            self.metrics.record_batch(
                level.name,
                len(group),
                latencies,
                cycles_per_sample=level.cycles_per_sample,
                priorities=[request.priority for request, _ in accepted],
                track_level=track_level,
            )
            if obs.tracer.enabled:
                for request in group:
                    obs.tracer.record_span(
                        "queue-wait",
                        trace_id=request.trace_id,
                        start_s=request.enqueued_at,
                        end_s=started,
                        priority=request.priority,
                        **({"attempt": request.attempts} if request.attempts > 1 else {}),
                    )
                    obs.tracer.record_span(
                        "execute",
                        trace_id=request.trace_id,
                        start_s=started,
                        end_s=finished,
                        parent_id=batch_parent,
                        level=level.name,
                    )
            for request in escalate:
                request.escalated = True
                request.pinned_level = gate.exact_index
                self.metrics.record_cascade_escalation(request.priority)
                requeued_at = time.monotonic()
                if obs.tracer.enabled:
                    # The escalation hop itself, under the same trace id as
                    # both attempts' queue-wait/execute spans.
                    obs.tracer.record_span(
                        "escalate",
                        trace_id=request.trace_id,
                        start_s=finished,
                        end_s=requeued_at,
                        parent_id=batch_parent,
                        from_level=level.name,
                        to_level=gate.exact_level,
                        margin=request.margin,
                        threshold=gate.threshold,
                    )
                if obs.events.enabled:
                    obs.events.emit(
                        "escalate",
                        f"request {request.id} margin {request.margin:.3f} < "
                        f"{gate.threshold:.3f}: escalating {level.name} -> {gate.exact_level}",
                        request_id=request.id,
                        trace_id=request.trace_id,
                        priority=request.priority,
                        margin=request.margin,
                        threshold=gate.threshold,
                    )
                self.queue.put(request, requeue=True)
            if gate is not None and accepted:
                exact_cycles = self.deployment.levels[gate.exact_index].cycles_per_sample
                self.metrics.record_cascade_completions(len(accepted), exact_cycles)
            for request, prediction in accepted:
                request.complete(int(prediction), level.name, request.service_ms)
