"""Tenant configuration, admission control and token-bucket quotas.

Multi-tenant serving layers three concerns on top of the priority classes
from PR 4:

* **Identity + defaults** -- a :class:`TenantConfig` names a tenant and
  optionally pins it to a model, a default priority class and a latency SLO
  target, so clients only send ``tenant=`` and the server fills in the rest.
* **Quotas** -- a per-tenant request-rate quota (token bucket: sustained
  ``rate_limit_rps`` with ``burst`` headroom) and an in-flight cap
  (``max_inflight``), both enforced *at enqueue* so an over-quota tenant is
  rejected with a structured 429 before it costs a queue slot or a forward
  pass.
* **Fairness weight** -- the ``weight`` feeds the request queue's smooth
  weighted round-robin drain (see
  :class:`~repro.serving.request.RequestQueue`), so admission and scheduling
  share one tenant table.

The :data:`~repro.serving.request.DEFAULT_TENANT` tenant always exists and
is unlimited, so single-tenant deployments need no table at all.  Quota
rejections raise :class:`TenantQuotaExceeded` (mapped to HTTP 429 by both
fronts) and unknown tenants raise :class:`UnknownTenant` (HTTP 403, naming
the registered tenants).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Union

from repro.serving.request import DEFAULT_TENANT, RequestError, priority_rank


class UnknownTenant(RequestError):
    """The request named a tenant the server has no configuration for."""

    def __init__(self, tenant: str, choices: Iterable[str]):
        self.tenant = str(tenant)
        self.choices = sorted(choices)
        super().__init__(
            f"unknown tenant {self.tenant!r}; registered tenants: {self.choices}"
        )


class TenantQuotaExceeded(RequestError):
    """A tenant hit its request-rate or in-flight quota (HTTP 429).

    ``reason`` is ``"rate"`` (token bucket empty) or ``"inflight"`` (too
    many requests already queued/executing); ``retry_after_s`` estimates
    when the rate bucket will hold a token again (``None`` for in-flight
    rejections, which clear when the tenant's own requests finish).
    """

    def __init__(self, tenant: str, reason: str, retry_after_s: Optional[float] = None):
        self.tenant = str(tenant)
        self.reason = str(reason)
        self.retry_after_s = None if retry_after_s is None else float(retry_after_s)
        detail = f" (retry after ~{self.retry_after_s:.2f}s)" if retry_after_s else ""
        super().__init__(
            f"tenant {self.tenant!r} over {self.reason} quota{detail}"
        )


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/s, up to ``burst`` stored.

    ``clock`` is injectable (monotonic seconds) so tests can drive refills
    deterministically.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ValueError("token bucket burst must allow at least one request")
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = self._clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    def try_take(self) -> Optional[float]:
        """Take one token; return ``None`` on success, else seconds-to-token."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate


@dataclass
class TenantConfig:
    """One tenant's identity, defaults, quotas and fairness weight.

    Parameters
    ----------
    name:
        Tenant name as sent in the request's ``tenant`` field.
    model:
        Deployment this tenant's requests default to (requests may still
        name a model explicitly); ``None`` follows the server default.
    priority:
        Default priority class for the tenant's requests; ``None`` keeps
        the server default (``"standard"``).
    slo_ms:
        Latency SLO target in milliseconds, surfaced in the per-tenant
        metrics block so operators can read p95-vs-SLO at a glance.
    rate_limit_rps:
        Sustained request-rate quota (token bucket); ``None`` is unlimited.
    burst:
        Token-bucket capacity; defaults to ``max(1, rate_limit_rps)``.
    max_inflight:
        Cap on the tenant's queued + executing requests; ``None`` unlimited.
    weight:
        Smooth-WRR draining weight relative to other tenants (default 1.0).
    """

    name: str
    model: Optional[str] = None
    priority: Optional[str] = None
    slo_ms: Optional[float] = None
    rate_limit_rps: Optional[float] = None
    burst: Optional[float] = None
    max_inflight: Optional[int] = None
    weight: float = 1.0
    _bucket: Optional[TokenBucket] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"tenant name must be a non-empty string, got {self.name!r}")
        if self.priority is not None:
            priority_rank(self.priority)
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        if self.max_inflight is not None and int(self.max_inflight) < 1:
            raise ValueError(f"tenant {self.name!r}: max_inflight must be >= 1")
        if self.rate_limit_rps is not None and self._bucket is None:
            self._bucket = TokenBucket(self.rate_limit_rps, self.burst)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON/pickle friendly, for fleet replica configs)."""
        return {
            "name": self.name,
            "model": self.model,
            "priority": self.priority,
            "slo_ms": self.slo_ms,
            "rate_limit_rps": self.rate_limit_rps,
            "burst": self.burst,
            "max_inflight": self.max_inflight,
            "weight": self.weight,
        }


class TenantTable:
    """The scheduler's tenant registry + admission gate.

    Admission (:meth:`admit`) resolves the tenant name, charges its token
    bucket and checks the in-flight cap; the scheduler calls
    :meth:`release` from the request's done-callback so in-flight counts
    stay accurate across completions, sheds and failures.
    """

    def __init__(self, tenants: Iterable[TenantConfig] = ()):
        self._tenants: Dict[str, TenantConfig] = {}
        self._inflight: Dict[str, int] = {}
        self._lock = threading.Lock()
        for config in tenants:
            self.add(config)
        if DEFAULT_TENANT not in self._tenants:
            self.add(TenantConfig(name=DEFAULT_TENANT))

    @classmethod
    def from_dicts(
        cls, entries: Iterable[Mapping[str, Any]]
    ) -> "TenantTable":
        """Build a table from plain dicts (inverse of ``as_dict``)."""
        return cls(TenantConfig(**dict(entry)) for entry in entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TenantTable":
        """Load a table from a JSON file: a list of tenant objects.

        The file holds either ``[{"name": ..., ...}, ...]`` or
        ``{"tenants": [...]}``.
        """
        raw = json.loads(Path(path).read_text())
        if isinstance(raw, Mapping):
            raw = raw.get("tenants", [])
        if not isinstance(raw, list):
            raise ValueError(f"tenant file {path}: expected a list of tenant objects")
        return cls.from_dicts(raw)

    def add(self, config: TenantConfig) -> None:
        """Register (or replace) a tenant."""
        with self._lock:
            self._tenants[config.name] = config
            self._inflight.setdefault(config.name, 0)

    def names(self) -> List[str]:
        """Registered tenant names, sorted."""
        with self._lock:
            return sorted(self._tenants)

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Every tenant as a plain dict (inverse of :meth:`from_dicts`)."""
        with self._lock:
            return [self._tenants[name].as_dict() for name in sorted(self._tenants)]

    def get(self, name: str) -> TenantConfig:
        """Look up a tenant; raises :class:`UnknownTenant` for strangers."""
        with self._lock:
            config = self._tenants.get(name)
        if config is None:
            raise UnknownTenant(name, self.names())
        return config

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def weights(self) -> Dict[str, float]:
        """Tenant name -> WRR weight (feeds the request queue)."""
        with self._lock:
            return {name: config.weight for name, config in self._tenants.items()}

    def inflight(self, name: str) -> int:
        """Current queued + executing requests for a tenant."""
        with self._lock:
            return self._inflight.get(name, 0)

    def admit(self, name: str) -> TenantConfig:
        """Charge quotas for one request; raises on over-quota tenants.

        On success the tenant's in-flight count is incremented -- callers
        **must** pair every successful ``admit`` with one :meth:`release`.
        """
        config = self.get(name)
        if config.max_inflight is not None:
            with self._lock:
                if self._inflight.get(name, 0) >= int(config.max_inflight):
                    raise TenantQuotaExceeded(name, "inflight")
        if config._bucket is not None:
            retry_after = config._bucket.try_take()
            if retry_after is not None:
                raise TenantQuotaExceeded(name, "rate", retry_after_s=retry_after)
        with self._lock:
            self._inflight[name] = self._inflight.get(name, 0) + 1
        return config

    def release(self, name: str) -> None:
        """Return one in-flight slot (request completed, shed or failed)."""
        with self._lock:
            self._inflight[name] = max(0, self._inflight.get(name, 0) - 1)
