"""Requests, priority classes and the priority-aware request queue.

A :class:`Request` carries one input sample through the serving stack: the
HTTP front (or the in-process :class:`~repro.serving.client.Client`) enqueues
it, the :class:`~repro.serving.scheduler.Scheduler` coalesces pending
requests into a batch, runs them through the model and completes each request
with its predicted class.  Completion is signalled through a
``threading.Event`` (front-end threads block on :meth:`Request.result`) and
through :meth:`Request.add_done_callback` (the asyncio front bridges the
callback into its event loop with ``call_soon_threadsafe``), so both fronts
share one scheduler core.

Every request belongs to one of three *priority classes* -- in the spirit of
packet classification on network switches, where latency-critical flows are
queued ahead of bulk transfers:

``interactive``
    Latency-critical traffic.  Served first; under load these requests ride
    whatever service level the policy picked while bulk traffic absorbs the
    queueing delay.
``standard``
    The default class.
``batch``
    Bulk/offline traffic.  Served only when no higher class is waiting,
    subject to the starvation bound below.

:meth:`RequestQueue.get_batch` implements the dynamic micro-batching window:
it blocks until at least one request is pending, then keeps coalescing
arrivals until either ``max_batch_size`` requests are collected or
``max_wait_ms`` has elapsed since the batch leader was picked.  The batch is
filled in priority order -- a class is drained before the pop spills down to
the next class -- with one exception: a request that has waited longer than
``starvation_ms`` is served ahead of everything, whatever its class, so
sustained interactive load cannot starve the batch class forever.

Within a priority class, requests are no longer a single FIFO: each tenant
gets its own FIFO lane and the pop rotates across tenants with *smooth
weighted round-robin* (the nginx variant: every non-empty tenant earns its
weight in credit per pop, the richest tenant is served and pays the total
weight back).  A tenant flooding the queue therefore cannot monopolise its
priority class -- other tenants keep draining in proportion to their
configured weights -- while single-tenant deployments degrade to the old
strict-FIFO behaviour.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.tracing import new_trace_id

_request_ids = itertools.count()

#: Priority classes, most urgent first.  The index is the priority rank.
PRIORITIES: Tuple[str, ...] = ("interactive", "standard", "batch")

#: The class assigned when a request does not specify one.
DEFAULT_PRIORITY = "standard"

#: The tenant assigned when a request does not specify one.  The default
#: tenant always exists (unlimited quota, weight 1.0) so single-tenant
#: deployments need no tenant table at all.
DEFAULT_TENANT = "default"


def priority_rank(priority: str) -> int:
    """Rank of a priority class (0 = most urgent); raises on unknown names."""
    try:
        return PRIORITIES.index(priority)
    except ValueError:
        raise ValueError(
            f"unknown priority {priority!r}; expected one of {list(PRIORITIES)}"
        ) from None


class RequestError(RuntimeError):
    """Raised by :meth:`Request.result` when serving a request failed."""


class RequestTimedOut(RequestError):
    """The request's per-request deadline expired before it was served.

    Raised by :meth:`Request.result` for requests the scheduler shed; a shed
    request never reaches the model, so the cycles it would have cost are
    saved for requests that can still meet their deadline.
    """


class Request:
    """One in-flight prediction request.

    Parameters
    ----------
    x:
        A single float input sample (per-sample shape, e.g. ``(H, W, C)``).
    timeout_ms:
        Optional per-request deadline: if the request is still queued when
        ``timeout_ms`` milliseconds have passed since it was enqueued, the
        scheduler sheds it with :class:`RequestTimedOut` instead of serving
        a prediction nobody is waiting for anymore.
    priority:
        Priority class (one of :data:`PRIORITIES`); defaults to
        ``"standard"``.
    trace_id:
        Observability trace id linking this request's spans; generated when
        omitted so in-process submissions are traceable too.
    model:
        Deployment name this request targets.  ``None`` means "the server's
        default model"; the scheduler resolves and validates the name at
        submit time, so a request inside the queue always carries a concrete
        model name and batches can be partitioned without lookups.
    tenant:
        Tenant name for quota accounting and weighted fair queueing;
        defaults to :data:`DEFAULT_TENANT`.
    """

    __slots__ = (
        "id",
        "trace_id",
        "x",
        "model",
        "tenant",
        "enqueued_at",
        "submitted_at",
        "timeout_ms",
        "deadline",
        "priority",
        "level_name",
        "prediction",
        "wait_ms",
        "service_ms",
        "attempts",
        "pinned_level",
        "escalated",
        "margin",
        "error",
        "_done",
        "_callbacks",
        "_callback_lock",
    )

    def __init__(
        self,
        x: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: str = DEFAULT_PRIORITY,
        trace_id: Optional[str] = None,
        model: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
    ):
        if timeout_ms is not None and float(timeout_ms) <= 0:
            raise ValueError("timeout_ms must be positive (or None for no deadline)")
        priority_rank(priority)  # validate eagerly, before the queue sees it
        if not isinstance(tenant, str) or not tenant:
            raise ValueError(f"tenant must be a non-empty string, got {tenant!r}")
        self.id = next(_request_ids)
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.x = np.asarray(x, dtype=np.float32)
        self.model: Optional[str] = None if model is None else str(model)
        self.tenant = tenant
        self.enqueued_at = time.monotonic()
        #: First-enqueue time; unlike ``enqueued_at`` it survives a cascade
        #: re-enqueue, so end-to-end latency spans both attempts.
        self.submitted_at = self.enqueued_at
        self.timeout_ms: Optional[float] = None if timeout_ms is None else float(timeout_ms)
        self.deadline: Optional[float] = None
        self._arm_deadline()
        self.priority = priority
        self.level_name: Optional[str] = None
        self.prediction: Optional[int] = None
        self.wait_ms: float = 0.0
        self.service_ms: float = 0.0
        #: Forward passes this request has been part of (2 after escalation).
        self.attempts: int = 0
        #: Level index the scheduler must serve this request at (cascade
        #: escalations pin the exact level); ``None`` follows the policy.
        self.pinned_level: Optional[int] = None
        #: Whether the cascade escalated this request to the exact level.
        self.escalated: bool = False
        #: Softmax margin observed at the cheap level (cascade only).
        self.margin: Optional[float] = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()
        self._callbacks: List = []
        self._callback_lock = threading.Lock()

    def _arm_deadline(self) -> None:
        """(Re)compute the absolute deadline from ``enqueued_at``."""
        if self.timeout_ms is not None:
            self.deadline = self.enqueued_at + self.timeout_ms / 1000.0

    @property
    def expired(self) -> bool:
        """Whether the per-request deadline has passed (False without one)."""
        return self.deadline is not None and time.monotonic() > self.deadline

    @property
    def done(self) -> bool:
        """Whether the request has been completed (or failed)."""
        return self._done.is_set()

    def add_done_callback(self, callback) -> None:
        """Call ``callback(request)`` once the request completes or fails.

        The callback runs on whichever thread completes the request (the
        scheduler core) -- or immediately on the calling thread if the
        request is already done.  The asyncio front uses this to wake its
        event loop with ``call_soon_threadsafe`` instead of parking an
        executor thread per in-flight request.
        """
        with self._callback_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _finish(self) -> None:
        """Set the done event and fire the registered callbacks exactly once."""
        with self._callback_lock:
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def complete(self, prediction: int, level_name: str, service_ms: float) -> None:
        """Fill in the result and wake any thread waiting on :meth:`result`."""
        self.prediction = int(prediction)
        self.level_name = level_name
        self.service_ms = float(service_ms)
        self._finish()

    def fail(self, error: BaseException) -> None:
        """Record a serving failure and wake waiters."""
        self.error = error
        self._finish()

    def result(self, timeout: Optional[float] = None) -> int:
        """Block until the request completes; return the predicted class.

        Raises
        ------
        TimeoutError
            If the request is not completed within ``timeout`` seconds.
        RequestError
            If the scheduler failed the request.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.id} not completed within {timeout}s")
        if self.error is not None:
            if isinstance(self.error, RequestError):
                raise self.error  # preserve the distinct error type (e.g. shed)
            raise RequestError(f"request {self.id} failed: {self.error}") from self.error
        assert self.prediction is not None
        return self.prediction


class RequestQueue:
    """Thread-safe priority queue with tenant-fair, batch-coalescing pops.

    Producers (front-end threads) call :meth:`put`; the single scheduler
    consumer calls :meth:`get_batch`.  Internally the queue holds one FIFO
    deque per ``(priority class, tenant)`` pair: pops drain the most urgent
    non-empty class first, and *within* a class rotate across tenants with
    smooth weighted round-robin, except that a request older than
    ``starvation_ms`` is always served next (the starvation bound: however
    relentless the interactive load, a batch-class request waits at most
    ``starvation_ms`` plus one batch's service time).

    Parameters
    ----------
    starvation_ms:
        Age at which a queued request of *any* class jumps ahead of the
        priority order.  ``None`` disables aging (strict priority).
    tenant_weights:
        Draining weight per tenant name (default 1.0).  The mapping may be
        shared/mutated by the owner (the scheduler points it at its tenant
        table's weights), so weight changes apply to queued traffic.
    """

    def __init__(
        self,
        starvation_ms: Optional[float] = 2000.0,
        tenant_weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if starvation_ms is not None and float(starvation_ms) <= 0:
            raise ValueError("starvation_ms must be positive (or None for strict priority)")
        self.starvation_ms = None if starvation_ms is None else float(starvation_ms)
        #: Optional :class:`~repro.obs.events.EventLog`; when set (the
        #: scheduler wires its own), starvation promotions are recorded.
        self.events = None
        self.tenant_weights: Dict[str, float] = (
            tenant_weights if tenant_weights is not None else {}
        )
        #: priority class -> tenant -> FIFO deque (empty deques are pruned).
        self._classes: Dict[str, Dict[str, Deque[Request]]] = {
            name: {} for name in PRIORITIES
        }
        #: priority class -> tenant -> smooth-WRR credit.
        self._credits: Dict[str, Dict[str, float]] = {name: {} for name in PRIORITIES}
        self._size = 0
        self._model_counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def put(self, request: Request, requeue: bool = False) -> None:
        """Enqueue a request (FIFO within its tenant lane); deadline starts here.

        ``requeue=True`` is the cascade-escalation path: the request goes
        back in the queue for a second (exact-level) attempt, so only
        ``enqueued_at`` is refreshed -- the second queue wait is measured
        from the re-enqueue -- while ``submitted_at`` and the absolute
        deadline are preserved.  Re-arming the deadline here would quietly
        grant every escalated request a fresh timeout budget.
        """
        priority_rank(request.priority)  # defensive: reject unknown classes
        with self._not_empty:
            request.enqueued_at = time.monotonic()
            if not requeue:
                request.submitted_at = request.enqueued_at
                request._arm_deadline()
            lanes = self._classes[request.priority]
            lane = lanes.get(request.tenant)
            if lane is None:
                lane = lanes[request.tenant] = deque()
            lane.append(request)
            self._size += 1
            if request.model is not None:
                self._model_counts[request.model] = (
                    self._model_counts.get(request.model, 0) + 1
                )
            self._not_empty.notify()

    def depth(self, model: Optional[str] = None) -> int:
        """Requests currently waiting -- all of them, or for one model."""
        with self._lock:
            if model is None:
                return self._size
            return self._model_counts.get(model, 0)

    def depth_by_priority(self) -> Dict[str, int]:
        """Waiting requests per priority class."""
        with self._lock:
            return {
                name: sum(len(lane) for lane in lanes.values())
                for name, lanes in self._classes.items()
            }

    def depth_by_tenant(self) -> Dict[str, int]:
        """Waiting requests per tenant (across all priority classes)."""
        with self._lock:
            depths: Dict[str, int] = {}
            for lanes in self._classes.values():
                for tenant, lane in lanes.items():
                    depths[tenant] = depths.get(tenant, 0) + len(lane)
            return depths

    def _note_pop(self, request: Request) -> None:
        """Bookkeeping shared by every pop path (lock held)."""
        self._size -= 1
        if request.model is not None:
            left = self._model_counts.get(request.model, 0) - 1
            if left > 0:
                self._model_counts[request.model] = left
            else:
                self._model_counts.pop(request.model, None)

    def _prune_lane(self, name: str, tenant: str) -> None:
        """Drop an emptied tenant lane and its WRR credit (lock held)."""
        lanes = self._classes[name]
        if not lanes[tenant]:
            del lanes[tenant]
            self._credits[name].pop(tenant, None)

    def _pop_from_class(self, name: str) -> Request:
        """Smooth-WRR pop across the non-empty tenant lanes of one class.

        Each round every waiting tenant earns its weight in credit; the
        richest tenant (ties broken by name for determinism) is served and
        pays back the sum of all weights.  Over N pops with tenants A:B at
        weights 2:1 this converges to a 2:1 service share while keeping the
        schedule smooth (A A B, not A A ... B).
        """
        lanes = self._classes[name]
        if len(lanes) == 1:
            tenant = next(iter(lanes))
        else:
            credits = self._credits[name]
            total = 0.0
            for t in lanes:
                weight = max(float(self.tenant_weights.get(t, 1.0)), 1e-9)
                credits[t] = credits.get(t, 0.0) + weight
                total += weight
            tenant = max(sorted(lanes), key=lambda t: credits[t])
            credits[tenant] -= total
        request = lanes[tenant].popleft()
        self._note_pop(request)
        self._prune_lane(name, tenant)
        return request

    def _pop_next(self, now: float) -> Request:
        """Pop the next request under priority-with-aging order (lock held)."""
        if self.starvation_ms is not None:
            bound = self.starvation_ms / 1000.0
            starved: Optional[Tuple[str, str]] = None
            oldest = now
            for name, lanes in self._classes.items():
                for tenant, lane in lanes.items():
                    head = lane[0]
                    if now - head.enqueued_at > bound and head.enqueued_at < oldest:
                        starved, oldest = (name, tenant), head.enqueued_at
            if starved is not None:
                name, tenant = starved
                request = self._classes[name][tenant].popleft()
                self._note_pop(request)
                self._prune_lane(name, tenant)
                if self.events is not None:
                    # Only a promotion when a more urgent class was waiting;
                    # a starved head of the most urgent non-empty class would
                    # have been popped anyway.
                    jumped = any(
                        self._classes[other]
                        for other in PRIORITIES[: priority_rank(request.priority)]
                    )
                    if jumped:
                        self.events.emit(
                            "starvation-promotion",
                            f"request {request.id} promoted past the priority order",
                            request_id=request.id,
                            priority=request.priority,
                            tenant=request.tenant,
                            waited_ms=round((now - request.enqueued_at) * 1e3, 3),
                        )
                return request
        for name in PRIORITIES:
            if self._classes[name]:
                return self._pop_from_class(name)
        raise IndexError("pop from an empty RequestQueue")  # pragma: no cover - guarded

    def get_batch(
        self,
        max_batch_size: int,
        max_wait_ms: float,
        poll_timeout: float = 0.05,
    ) -> List[Request]:
        """Pop up to ``max_batch_size`` requests, coalescing briefly.

        Blocks up to ``poll_timeout`` seconds for the first request; returns
        an empty list if none arrives (so the scheduler loop can check its
        shutdown flag instead of blocking forever).  Once a batch leader is
        present, arrivals are coalesced until the batch is full or
        ``max_wait_ms`` has elapsed -- a queue already holding a full batch
        pays no wait at all.  The batch is assembled in priority order
        (aging aside), so an interactive arrival during the coalescing
        window still rides the very next batch.
        """
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        with self._not_empty:
            if not self._size and not self._not_empty.wait(timeout=poll_timeout):
                return []
            deadline = time.monotonic() + max_wait_ms / 1000.0
            while self._size < max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._not_empty.wait(timeout=remaining):
                    break
            now = time.monotonic()
            batch = [self._pop_next(now) for _ in range(min(max_batch_size, self._size))]
        return batch

    def drain(self, error: BaseException) -> List[Request]:
        """Fail every pending request (shutdown path); returns them.

        Returning the requests (not just a count) lets the caller attribute
        the failures per priority class in its metrics.
        """
        with self._lock:
            pending = [
                request
                for lanes in self._classes.values()
                for lane in lanes.values()
                for request in lane
            ]
            for name in PRIORITIES:
                self._classes[name] = {}
                self._credits[name] = {}
            self._size = 0
            self._model_counts = {}
        for request in pending:
            request.fail(error)
        return pending
