"""Requests and the FIFO request queue feeding the batching scheduler.

A :class:`Request` carries one input sample through the serving stack: the
HTTP front (or the in-process :class:`~repro.serving.client.Client`) enqueues
it, the :class:`~repro.serving.scheduler.Scheduler` coalesces pending
requests into a batch, runs them through the model and completes each request
with its predicted class.  Completion is signalled through a
``threading.Event``, so any number of front-end threads can block on
:meth:`Request.result` while the single scheduler core drains the queue.

:meth:`RequestQueue.get_batch` implements the dynamic micro-batching window:
it blocks until at least one request is pending, then keeps coalescing
arrivals until either ``max_batch_size`` requests are collected or
``max_wait_ms`` has elapsed since the batch leader was picked -- the same
latency/throughput trade continuous-batching LLM servers make, adapted to
batched NumPy inference.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Deque, List, Optional

import numpy as np

_request_ids = itertools.count()


class RequestError(RuntimeError):
    """Raised by :meth:`Request.result` when serving a request failed."""


class RequestTimedOut(RequestError):
    """The request's per-request deadline expired before it was served.

    Raised by :meth:`Request.result` for requests the scheduler shed; a shed
    request never reaches the model, so the cycles it would have cost are
    saved for requests that can still meet their deadline.
    """


class Request:
    """One in-flight prediction request.

    Parameters
    ----------
    x:
        A single float input sample (per-sample shape, e.g. ``(H, W, C)``).
    timeout_ms:
        Optional per-request deadline: if the request is still queued when
        ``timeout_ms`` milliseconds have passed since it was enqueued, the
        scheduler sheds it with :class:`RequestTimedOut` instead of serving
        a prediction nobody is waiting for anymore.
    """

    __slots__ = (
        "id",
        "x",
        "enqueued_at",
        "timeout_ms",
        "deadline",
        "level_name",
        "prediction",
        "wait_ms",
        "service_ms",
        "error",
        "_done",
    )

    def __init__(self, x: np.ndarray, timeout_ms: Optional[float] = None):
        if timeout_ms is not None and float(timeout_ms) <= 0:
            raise ValueError("timeout_ms must be positive (or None for no deadline)")
        self.id = next(_request_ids)
        self.x = np.asarray(x, dtype=np.float32)
        self.enqueued_at = time.monotonic()
        self.timeout_ms: Optional[float] = None if timeout_ms is None else float(timeout_ms)
        self.deadline: Optional[float] = None
        self._arm_deadline()
        self.level_name: Optional[str] = None
        self.prediction: Optional[int] = None
        self.wait_ms: float = 0.0
        self.service_ms: float = 0.0
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    def _arm_deadline(self) -> None:
        """(Re)compute the absolute deadline from ``enqueued_at``."""
        if self.timeout_ms is not None:
            self.deadline = self.enqueued_at + self.timeout_ms / 1000.0

    @property
    def expired(self) -> bool:
        """Whether the per-request deadline has passed (False without one)."""
        return self.deadline is not None and time.monotonic() > self.deadline

    @property
    def done(self) -> bool:
        """Whether the request has been completed (or failed)."""
        return self._done.is_set()

    def complete(self, prediction: int, level_name: str, service_ms: float) -> None:
        """Fill in the result and wake any thread waiting on :meth:`result`."""
        self.prediction = int(prediction)
        self.level_name = level_name
        self.service_ms = float(service_ms)
        self._done.set()

    def fail(self, error: BaseException) -> None:
        """Record a serving failure and wake waiters."""
        self.error = error
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> int:
        """Block until the request completes; return the predicted class.

        Raises
        ------
        TimeoutError
            If the request is not completed within ``timeout`` seconds.
        RequestError
            If the scheduler failed the request.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.id} not completed within {timeout}s")
        if self.error is not None:
            if isinstance(self.error, RequestError):
                raise self.error  # preserve the distinct error type (e.g. shed)
            raise RequestError(f"request {self.id} failed: {self.error}") from self.error
        assert self.prediction is not None
        return self.prediction


class RequestQueue:
    """Thread-safe FIFO queue with a batch-coalescing pop.

    Producers (front-end threads) call :meth:`put`; the single scheduler
    consumer calls :meth:`get_batch`.
    """

    def __init__(self) -> None:
        self._items: Deque[Request] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def put(self, request: Request) -> None:
        """Enqueue a request (FIFO order); its deadline starts counting here."""
        with self._not_empty:
            request.enqueued_at = time.monotonic()
            request._arm_deadline()
            self._items.append(request)
            self._not_empty.notify()

    def depth(self) -> int:
        """Number of requests currently waiting."""
        with self._lock:
            return len(self._items)

    def get_batch(
        self,
        max_batch_size: int,
        max_wait_ms: float,
        poll_timeout: float = 0.05,
    ) -> List[Request]:
        """Pop up to ``max_batch_size`` requests, coalescing briefly.

        Blocks up to ``poll_timeout`` seconds for the first request; returns
        an empty list if none arrives (so the scheduler loop can check its
        shutdown flag instead of blocking forever).  Once a batch leader is
        present, arrivals are coalesced until the batch is full or
        ``max_wait_ms`` has elapsed -- a queue already holding a full batch
        pays no wait at all.
        """
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        with self._not_empty:
            if not self._items and not self._not_empty.wait(timeout=poll_timeout):
                return []
            deadline = time.monotonic() + max_wait_ms / 1000.0
            while len(self._items) < max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._not_empty.wait(timeout=remaining):
                    break
            batch = [self._items.popleft() for _ in range(min(max_batch_size, len(self._items)))]
        return batch

    def drain(self, error: BaseException) -> int:
        """Fail every pending request (shutdown path); returns how many."""
        with self._lock:
            pending = list(self._items)
            self._items.clear()
        for request in pending:
            request.fail(error)
        return len(pending)
