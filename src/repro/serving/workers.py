"""Multi-worker inference: per-process model replicas behind the scheduler.

The scheduler core is a single thread, but the NumPy forward pass of a large
batch is CPU-bound, so a :class:`ReplicatedRunner` can shard one coalesced
batch across worker *processes*: every worker holds its own replica of the
:class:`~repro.serving.deployment.Deployment` (installed once by the pool
initializer, so the model is shipped per worker, not per batch) and predicts
one shard; the scheduler concatenates the shards and records the batch in
the shared metrics sink.  Telemetry stays centralised -- workers return raw
predictions only.
"""

from __future__ import annotations

import functools
from typing import List, Optional

import numpy as np

from repro.serving.deployment import Deployment
from repro.utils.parallel import WorkerPool

#: Per-worker replica installed by :func:`_init_replica`.
_REPLICA: dict = {}


def _init_replica(deployment: Deployment) -> None:
    """Process-pool initializer: install this worker's model replica."""
    _REPLICA["deployment"] = deployment


def _predict_shard(level: int, shard: np.ndarray) -> np.ndarray:
    """Worker body: predict one shard with the local replica."""
    deployment: Deployment = _REPLICA["deployment"]
    return deployment.predict(shard, level=level)


def _forward_shard(level: int, shard: np.ndarray) -> np.ndarray:
    """Worker body: dequantized logits of one shard (cascade path)."""
    deployment: Deployment = _REPLICA["deployment"]
    return deployment.forward(shard, level=level)


class ReplicatedRunner:
    """Run batch predictions serially or sharded over worker replicas.

    Parameters
    ----------
    deployment:
        The servable deployment (must be picklable for ``n_workers > 1``).
    n_workers:
        ``<= 1`` runs in-process; otherwise a persistent pool of replicas.
    min_shard:
        Smallest per-worker shard worth the IPC round trip; batches smaller
        than ``2 * min_shard`` run in-process even when a pool exists.
    """

    def __init__(self, deployment: Deployment, n_workers: int = 1, min_shard: int = 8):
        self.deployment = deployment
        self.n_workers = max(1, int(n_workers))
        self.min_shard = int(min_shard)
        self._pool: Optional[WorkerPool] = None
        if self.n_workers > 1:
            self._pool = WorkerPool(
                self.n_workers, initializer=_init_replica, initargs=(deployment,)
            )

    def predict(self, xs: np.ndarray, level: int = 0, profiler=None) -> np.ndarray:
        """Predicted classes of a float NHWC batch under one service level.

        ``profiler`` (a sampled :class:`~repro.obs.profiling.Profiler`)
        enables per-layer timing on the in-process path; sharded execution
        ignores it -- worker processes return raw predictions only and
        telemetry stays centralised.
        """
        if self._pool is None or xs.shape[0] < 2 * self.min_shard:
            return self.deployment.predict(xs, level=level, profiler=profiler)
        n_shards = min(self.n_workers, max(1, xs.shape[0] // self.min_shard))
        shards: List[np.ndarray] = np.array_split(xs, n_shards)
        results = self._pool.map(functools.partial(_predict_shard, level), shards)
        return np.concatenate(results)

    def forward(self, xs: np.ndarray, level: int = 0, profiler=None) -> np.ndarray:
        """Dequantized logits of a batch -- the cascade's confidence input.

        Same sharding rules as :meth:`predict`; the cascade needs the full
        logit rows (for softmax margins), not just the argmax.
        """
        if self._pool is None or xs.shape[0] < 2 * self.min_shard:
            return self.deployment.forward(xs, level=level, profiler=profiler)
        n_shards = min(self.n_workers, max(1, xs.shape[0] // self.min_shard))
        shards: List[np.ndarray] = np.array_split(xs, n_shards)
        results = self._pool.map(functools.partial(_forward_shard, level), shards)
        return np.concatenate(results)

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ReplicatedRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
