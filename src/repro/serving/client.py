"""Clients for the serving stack: in-process and HTTP.

:class:`Client` talks straight to a :class:`~repro.serving.scheduler.Scheduler`
without any transport -- the tool of choice for tests, benchmarks and the
CLI's smoke mode, where hundreds of concurrent submissions should exercise
the coalescing window rather than socket handling.  :class:`HTTPClient` is a
stdlib ``urllib`` wrapper over the :class:`~repro.serving.server.PredictionServer`
endpoints.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.serving.request import DEFAULT_PRIORITY, Request
from repro.serving.scheduler import Scheduler


class Client:
    """In-process client: submit inputs to a scheduler, wait for results."""

    def __init__(self, scheduler: Scheduler, timeout_s: float = 30.0):
        self.scheduler = scheduler
        self.timeout_s = float(timeout_s)

    def submit(
        self,
        x: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = DEFAULT_PRIORITY,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Request:
        """Fire one request without waiting (for concurrency experiments).

        ``timeout_ms`` arms the scheduler-side shedding deadline; a shed
        request's :meth:`~repro.serving.request.Request.result` raises
        :class:`~repro.serving.request.RequestTimedOut`.  ``priority`` picks
        the request's class (``interactive``/``standard``/``batch``).
        ``model`` routes to a deployment-table entry and ``tenant`` selects
        the quota/fairness identity (both default server-side).
        """
        return self.scheduler.submit(
            x, timeout_ms=timeout_ms, priority=priority, model=model, tenant=tenant
        )

    def submit_many(
        self,
        xs: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = DEFAULT_PRIORITY,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> List[Request]:
        """Fire a burst of requests without waiting (FIFO order)."""
        return self.scheduler.submit_many(
            xs, timeout_ms=timeout_ms, priority=priority, model=model, tenant=tenant
        )

    def predict(
        self,
        x: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = DEFAULT_PRIORITY,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> int:
        """Predicted class of one sample (blocks until served)."""
        return self.submit(
            x, timeout_ms=timeout_ms, priority=priority, model=model, tenant=tenant
        ).result(timeout=self.timeout_s)

    def predict_many(
        self,
        xs: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = DEFAULT_PRIORITY,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> np.ndarray:
        """Predicted classes of a batch, submitted concurrently."""
        requests = self.submit_many(
            xs, timeout_ms=timeout_ms, priority=priority, model=model, tenant=tenant
        )
        return np.asarray([r.result(timeout=self.timeout_s) for r in requests], dtype=np.int64)


class HTTPClient:
    """Minimal JSON-over-HTTP client for a :class:`PredictionServer`."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def _get(self, path: str) -> Dict[str, Any]:
        with urllib.request.urlopen(self.base_url + path, timeout=self.timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))

    def _get_text(self, path: str) -> str:
        with urllib.request.urlopen(self.base_url + path, timeout=self.timeout_s) as response:
            return response.read().decode("utf-8")

    def _post(self, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._post_with_headers(path, payload)[0]

    def _post_with_headers(
        self, path: str, payload: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
            return json.loads(response.read().decode("utf-8")), dict(response.headers)

    # ------------------------------------------------------------------ endpoints
    @staticmethod
    def _predict_payload(
        xs: np.ndarray,
        timeout_ms: Optional[float],
        priority: Optional[str],
        model: Optional[str],
        tenant: Optional[str],
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"inputs": np.asarray(xs, dtype=np.float32).tolist()}
        if timeout_ms is not None:
            payload["timeout_ms"] = float(timeout_ms)
        if priority is not None:
            payload["priority"] = priority
        if model is not None:
            payload["model"] = model
        if tenant is not None:
            payload["tenant"] = tenant
        return payload

    def predict(
        self,
        xs: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``POST /predict`` with one sample or a batch; returns the JSON body."""
        return self._post(
            "/predict", self._predict_payload(xs, timeout_ms, priority, model, tenant)
        )

    def predict_classes(
        self,
        xs: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> np.ndarray:
        """Predicted classes of a batch via ``POST /predict``."""
        return np.asarray(
            self.predict(
                xs, timeout_ms=timeout_ms, priority=priority, model=model, tenant=tenant
            )["classes"],
            dtype=np.int64,
        )

    def predict_with_headers(
        self,
        xs: np.ndarray,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """``POST /predict``; returns ``(body, response_headers)``.

        The headers carry ``X-Trace-Id`` -- the handle for ``GET /trace``
        and the JSONL trace export.
        """
        return self._post_with_headers(
            "/predict", self._predict_payload(xs, timeout_ms, priority, model, tenant)
        )

    def metrics(self, format: Optional[str] = None) -> Any:
        """``GET /metrics``; ``format="prometheus"`` returns the text exposition."""
        if format == "prometheus":
            return self._get_text("/metrics?format=prometheus")
        return self._get("/metrics")

    def events(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """``GET /events``."""
        path = "/events" if limit is None else f"/events?limit={int(limit)}"
        return self._get(path)["events"]

    def trace(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """``GET /trace``, optionally filtered to one trace id."""
        path = "/trace" if trace_id is None else f"/trace?trace_id={trace_id}"
        return self._get(path)["spans"]

    def levels(self) -> List[Dict[str, Any]]:
        """``GET /levels`` (the default model's table)."""
        return self._get("/levels")["levels"]

    def levels_by_model(self) -> Dict[str, List[Dict[str, Any]]]:
        """``GET /levels`` grouped per served model."""
        body = self._get("/levels")
        return body.get("models", {"default": body.get("levels", [])})

    def health(self) -> Optional[str]:
        """``GET /healthz``; returns the status string or ``None`` when down."""
        try:
            return self._get("/healthz").get("status")
        except (urllib.error.URLError, OSError):
            return None

    def health_detail(self) -> Optional[Dict[str, Any]]:
        """``GET /healthz`` as the full JSON body (or ``None`` when down).

        Against a fleet router this carries the per-replica statuses behind
        the top-level ``ok`` / ``degraded`` / ``down`` verdict.
        """
        try:
            return self._get("/healthz")
        except (urllib.error.URLError, OSError):
            return None
