"""Load-adaptive inference serving over the DSE Pareto front.

This package turns a design-space-exploration result into a servable
endpoint: the Pareto-optimal designs become runtime *service levels* (skip
masks prebuilt per configuration), a dynamic micro-batching scheduler
coalesces concurrent requests into batched int8 forward passes, and an
adaptive policy picks which service level runs each batch from the live
telemetry -- under light load the exact design, under heavy load a more
aggressive skip configuration, trading accuracy for throughput exactly as
the paper trades accuracy for MCU cycles.

Quick tour::

    from repro.serving import Client, Deployment, Scheduler

    deployment = Deployment.from_dse(qmodel, dse_result, significance, unpacked)
    with Scheduler(deployment, policy="queue-depth", max_batch_size=32) as scheduler:
        client = Client(scheduler)
        classes = client.predict_many(images)        # coalesced into batches
        print(scheduler.metrics.snapshot().as_dict())

Add an HTTP front with :class:`PredictionServer` (thread-per-connection) or
:class:`AsyncPredictionServer` (single asyncio event loop), or let serving
participate in the cached workflow graph through
:class:`repro.workflow.ServeStage`.  Requests carry a priority class
(``interactive``/``standard``/``batch``; the queue serves urgent traffic
first, with an aging bound against starvation) and per-class latency/shed
telemetry flows through :class:`ServerMetrics`.  Policies are pluggable via
:data:`repro.registry.POLICIES`, fronts via :data:`repro.registry.FRONTS`.

One scheduler can serve a whole *deployment table*: pass a mapping (or
sequence) of :class:`Deployment` objects and every request routes to a
model by name, with batches never mixing models and per-deployment policy
state.  A :class:`TenantTable` layers multi-tenancy on top -- each
:class:`TenantConfig` pins a tenant to a model, a default priority class,
an SLO target and token-bucket request quotas, enforced at enqueue with
structured 429s; the queue drains fairly across tenants via smooth
weighted round-robin.

Observability (:mod:`repro.obs`) is wired through the stack: the scheduler
owns an :class:`~repro.obs.Observability` bundle (metrics registry, request
tracer, sampled profiler, event log) and both fronts expose it --
``GET /metrics?format=prometheus``, ``GET /events``, ``GET /trace`` and an
``X-Trace-Id`` header on every prediction.

Beyond one process, :mod:`repro.serving.fleet` runs N replica server
processes behind a :class:`~repro.serving.fleet.FleetRouter` that routes by
least load and *federates* the per-replica observability into one summed
Prometheus exposition, merged traces/events and a fleet ``/healthz``.
"""

from repro.obs import Observability
from repro.serving.async_server import AsyncPredictionServer
from repro.serving.client import Client, HTTPClient
from repro.serving.deployment import Deployment, ServiceLevel
from repro.serving.metrics import MetricsSnapshot, ServerMetrics
from repro.serving.policy import (
    CascadeGate,
    CascadePolicy,
    FixedPolicy,
    LatencySLOPolicy,
    QueueDepthPolicy,
    ServingPolicy,
    resolve_policy,
)
from repro.serving.request import (
    DEFAULT_PRIORITY,
    DEFAULT_TENANT,
    PRIORITIES,
    Request,
    RequestError,
    RequestQueue,
    RequestTimedOut,
    priority_rank,
)
from repro.serving.scheduler import Scheduler, SchedulerStopped, UnknownModel
from repro.serving.server import PredictionServer
from repro.serving.tenancy import (
    TenantConfig,
    TenantQuotaExceeded,
    TenantTable,
    TokenBucket,
    UnknownTenant,
)
from repro.serving.workers import ReplicatedRunner

# Fleet last: its modules import the serving submodules above.
from repro.serving.fleet import Fleet, FleetRouter, ReplicaConfig, ReplicaProcess  # noqa: E402

__all__ = [
    "AsyncPredictionServer",
    "Fleet",
    "FleetRouter",
    "ReplicaConfig",
    "ReplicaProcess",
    "Observability",
    "Client",
    "HTTPClient",
    "Deployment",
    "ServiceLevel",
    "MetricsSnapshot",
    "ServerMetrics",
    "ServingPolicy",
    "CascadeGate",
    "CascadePolicy",
    "FixedPolicy",
    "QueueDepthPolicy",
    "LatencySLOPolicy",
    "resolve_policy",
    "DEFAULT_PRIORITY",
    "DEFAULT_TENANT",
    "PRIORITIES",
    "priority_rank",
    "Request",
    "RequestError",
    "RequestTimedOut",
    "RequestQueue",
    "Scheduler",
    "SchedulerStopped",
    "UnknownModel",
    "UnknownTenant",
    "TenantConfig",
    "TenantQuotaExceeded",
    "TenantTable",
    "TokenBucket",
    "PredictionServer",
    "ReplicatedRunner",
]
