"""Stdlib-only threaded HTTP front end over the batching scheduler.

A ``ThreadingHTTPServer`` accepts concurrent connections; every handler
thread only enqueues requests and blocks on their completion events, so
concurrent HTTP clients are exactly what feeds the scheduler's coalescing
window -- more simultaneous callers means bigger batches, not more model
invocations.  No dependencies beyond ``http.server`` and ``json``.

The endpoint logic (payload validation, response shapes, error mapping) is
shared with the asyncio front
(:class:`~repro.serving.async_server.AsyncPredictionServer`) through the
module-level helpers below -- the two fronts differ only in how they wait
for request completion (blocking on the event vs awaiting a loop future).
Fronts are pluggable through :data:`repro.registry.FRONTS`; this one is
registered as ``"thread"``.

Endpoints::

    POST /predict   {"inputs": [[...]] or [[[...]]],
                     "timeout_ms": 50.0 (optional),
                     "priority": "interactive" (optional),
                     "model": "tiny_cnn" (optional; the deployment to run),
                     "tenant": "team-a" (optional; quota/fairness identity)}
                                                      -> predicted classes
    GET  /metrics                                     -> ServerMetrics snapshot
                                                         (per-model and
                                                         per-tenant blocks)
    GET  /metrics?format=prometheus                   -> text exposition format
    GET  /levels                                      -> service-level tables,
                                                         grouped per model
    GET  /events                                      -> structured event ring
    GET  /trace?trace_id=...                          -> buffered request spans
    GET  /healthz                                     -> liveness probe

Every ``POST /predict`` response carries an ``X-Trace-Id`` header naming the
trace its spans were recorded under.  Unknown models are refused with a
structured 404 naming the served models, unknown tenants with a 403 naming
the registered tenants, and over-quota tenants with a 429 (plus a
``Retry-After`` header when the rate bucket predicts the next token).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.obs.tracing import new_trace_id
from repro.registry import FRONTS
from repro.serving.request import DEFAULT_PRIORITY, PRIORITIES, Request, RequestTimedOut
from repro.serving.scheduler import Scheduler, UnknownModel
from repro.serving.tenancy import TenantQuotaExceeded, UnknownTenant
from repro.utils.logging import get_logger

logger = get_logger("serving.server")

#: Refuse request bodies beyond this size (64 MiB of JSON is already absurd).
MAX_BODY_BYTES = 64 * 1024 * 1024

_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def sanitize_trace_id(value: Optional[str]) -> Optional[str]:
    """An incoming ``X-Trace-Id`` header value, or ``None`` if unusable.

    The fleet router propagates its trace id to the replica it picks so one
    id covers the whole hop; anything that doesn't look like a trace id
    (huge, spaces, exotic characters) is ignored rather than recorded into
    the span ring.
    """
    if value and _TRACE_ID_RE.match(value):
        return value
    return None


# --------------------------------------------------------------------------- shared endpoint logic
class ParsedPredict:
    """The validated fields of a ``POST /predict`` body.

    ``error`` is ``None`` on success, otherwise an ``(http_status,
    response)`` pair and the remaining fields are meaningless.  ``model`` is
    the *resolved* deployment-table name (explicit field, tenant pin or
    server default) and ``tenant`` the raw tenant name (``None`` means the
    default tenant).
    """

    __slots__ = ("error", "xs", "timeout_ms", "priority", "model", "tenant")

    def __init__(
        self,
        error: Optional[Tuple[int, Dict[str, Any]]] = None,
        xs: Optional[np.ndarray] = None,
        timeout_ms: Optional[float] = None,
        priority: Optional[str] = None,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ):
        self.error = error
        self.xs = xs
        self.timeout_ms = timeout_ms
        self.priority = priority
        self.model = model
        self.tenant = tenant


def parse_predict_payload(scheduler: Scheduler, payload: Dict[str, Any]) -> ParsedPredict:
    """Validate a ``POST /predict`` body against the scheduler's table.

    Shared by the threaded and asyncio fronts so a malformed body gets the
    same response whichever front receives it: generic 400s for shape/type
    problems, a structured 404 for unknown models (naming the served
    models) and a structured 403 for unknown tenants (naming the registered
    tenants).
    """
    model = payload.get("model")
    if model is not None and not isinstance(model, str):
        return ParsedPredict(error=(400, {"error": "'model' is not a string"}))
    tenant = payload.get("tenant")
    if tenant is not None and not isinstance(tenant, str):
        return ParsedPredict(error=(400, {"error": "'tenant' is not a string"}))
    if tenant is not None and tenant not in scheduler.tenants:
        return ParsedPredict(
            error=(
                403,
                {
                    "error": f"unknown tenant {tenant!r}",
                    "tenant": tenant,
                    "registered_tenants": scheduler.tenants.names(),
                },
            )
        )
    try:
        resolved_model = scheduler.resolve_model(model, tenant=tenant)
    except UnknownModel as failure:
        return ParsedPredict(
            error=(
                404,
                {
                    "error": str(failure),
                    "model": failure.model,
                    "available_models": failure.choices,
                },
            )
        )
    inputs = payload.get("inputs")
    if inputs is None:
        return ParsedPredict(error=(400, {"error": "missing 'inputs' field"}))
    try:
        xs = np.asarray(inputs, dtype=np.float32)
    except (TypeError, ValueError):
        return ParsedPredict(error=(400, {"error": "'inputs' is not a numeric array"}))
    sample_shape = scheduler.deployments[resolved_model].qmodel.input_shape
    if xs.shape == sample_shape:
        xs = xs[None, ...]
    if xs.ndim != len(sample_shape) + 1 or xs.shape[1:] != sample_shape:
        return ParsedPredict(
            error=(
                400,
                {
                    "error": f"model {resolved_model!r} expects inputs of per-sample shape "
                    f"{list(sample_shape)}, got array of shape {list(xs.shape)}"
                },
            )
        )
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is not None:
        if isinstance(timeout_ms, bool):  # bool passes float() -- reject explicitly
            return ParsedPredict(error=(400, {"error": "'timeout_ms' is not a number"}))
        try:
            timeout_ms = float(timeout_ms)
        except (TypeError, ValueError):
            return ParsedPredict(error=(400, {"error": "'timeout_ms' is not a number"}))
        if timeout_ms <= 0:
            return ParsedPredict(error=(400, {"error": "'timeout_ms' must be positive"}))
    priority = payload.get("priority")
    if priority is not None and (not isinstance(priority, str) or priority not in PRIORITIES):
        return ParsedPredict(
            error=(
                400,
                {"error": f"unknown priority {priority!r}; expected one of {list(PRIORITIES)}"},
            )
        )
    return ParsedPredict(
        xs=xs, timeout_ms=timeout_ms, priority=priority, model=resolved_model, tenant=tenant
    )


def predict_success_response(requests: List[Request]) -> Dict[str, Any]:
    """Build the 200 body from a list of completed requests."""
    return {
        "classes": [request.prediction for request in requests],
        "levels": [request.level_name for request in requests],
        "priority": requests[0].priority if requests else DEFAULT_PRIORITY,
        "model": requests[0].model if requests else None,
        "tenant": requests[0].tenant if requests else None,
        "wait_ms": [round(request.wait_ms, 3) for request in requests],
        "service_ms": [round(request.service_ms, 3) for request in requests],
        "trace_id": requests[0].trace_id if requests else None,
    }


def predict_error_response(error: BaseException) -> Tuple[int, Dict[str, Any]]:
    """Map a serving-side failure to the (status, body) both fronts return."""
    if isinstance(error, TenantQuotaExceeded):
        body: Dict[str, Any] = {
            "error": str(error),
            "tenant": error.tenant,
            "reason": error.reason,
        }
        if error.retry_after_s is not None:
            body["retry_after_s"] = round(error.retry_after_s, 3)
        return 429, body
    if isinstance(error, UnknownTenant):
        return 403, {
            "error": str(error),
            "tenant": error.tenant,
            "registered_tenants": error.choices,
        }
    if isinstance(error, UnknownModel):
        return 404, {
            "error": str(error),
            "model": error.model,
            "available_models": error.choices,
        }
    if isinstance(error, RequestTimedOut):
        return 504, {"error": f"request shed: {error}"}
    if isinstance(error, TimeoutError):
        return 503, {"error": "prediction timed out"}
    return 503, {"error": str(error)}


def quota_retry_headers(status: int, body: Dict[str, Any]) -> Dict[str, str]:
    """The ``Retry-After`` header for a 429 body that predicts one.

    Shared by both fronts so rate-limited clients get the same whole-second
    hint regardless of which server answered.
    """
    if status == 429 and "retry_after_s" in body:
        return {"Retry-After": str(max(1, int(math.ceil(body["retry_after_s"]))))}
    return {}


def _query_int(query: Dict[str, List[str]], name: str) -> Optional[int]:
    """First integer value of a query parameter, or ``None``."""
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        return None


def handle_introspection(
    scheduler: Scheduler, path: str
) -> Tuple[int, Union[Dict[str, Any], str]]:
    """Execute one introspection GET.

    Returns ``(status, payload)``; a ``dict`` payload is served as JSON, a
    ``str`` payload as ``text/plain`` (the Prometheus exposition).
    """
    parts = urlsplit(path)
    query = parse_qs(parts.query)
    route = parts.path
    if route == "/healthz":
        return 200, {"status": "ok" if scheduler.running else "stopped"}
    if route == "/metrics":
        if query.get("format", [""])[0] == "prometheus":
            return 200, scheduler.metrics.render_prometheus(queue_depth=scheduler.queue.depth())
        snapshot = scheduler.metrics.snapshot(queue_depth=scheduler.queue.depth())
        payload = snapshot.as_dict()
        profile = scheduler.obs.profiler.snapshot()
        if profile:
            payload["profile"] = profile
        return 200, payload
    if route == "/levels":
        # Grouped per model; the flat "levels" key keeps describing the
        # default model so single-model clients see the PR-2 shape.
        return 200, {
            "levels": scheduler.deployment.describe(),
            "default_model": scheduler.default_model,
            "models": {
                name: deployment.describe()
                for name, deployment in scheduler.deployments.items()
            },
        }
    if route == "/events":
        limit = _query_int(query, "limit")
        kind = query.get("kind", [None])[0]
        return 200, {"events": scheduler.obs.events.snapshot(limit=limit, kind=kind)}
    if route == "/trace":
        trace_id = query.get("trace_id", [None])[0]
        spans = scheduler.obs.tracer.spans(trace_id=trace_id)
        limit = _query_int(query, "limit")
        if limit is None and trace_id is None:
            limit = 256  # bounded by default: the whole ring can be 4096 spans
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return 200, {"spans": [span.as_dict() for span in spans]}
    return 404, {"error": f"unknown path {path!r}"}


class _BacklogThreadingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server with a listen backlog sized for burst traffic.

    The stdlib default backlog of 5 resets connections the moment a few
    dozen clients connect at once -- precisely the burst the serving smoke
    and benchmarks throw at the front.
    """

    request_queue_size = 128


@FRONTS.register("thread")
class PredictionServer:
    """HTTP front end: serve a running :class:`Scheduler` on a TCP port.

    Parameters
    ----------
    scheduler:
        The (started) batching scheduler to feed.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    request_timeout_s:
        How long a handler waits for the scheduler before answering 503.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 30.0,
    ):
        self.scheduler = scheduler
        self.request_timeout_s = float(request_timeout_s)
        handler = _make_handler(self)
        self._httpd = _BacklogThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ lifecycle
    @property
    def host(self) -> str:
        """Bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound TCP port (resolved when constructed with ``port=0``)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PredictionServer":
        """Serve in a background thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="serving-http", daemon=True
            )
            self._thread.start()
            logger.info("serving %s on %s", ", ".join(self.scheduler.models()), self.url)
        return self

    def stop(self) -> None:
        """Stop accepting connections and join the server thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ request handling
    def handle_predict(
        self, payload: Dict[str, Any], trace_id: Optional[str] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Execute one ``POST /predict`` body.

        Returns ``(status, response, headers)``; the headers carry the
        ``X-Trace-Id`` of the body's requests once they were submitted.
        ``trace_id`` joins an upstream trace (the fleet router's ``route``
        span) instead of minting a fresh id.
        """
        tracer = self.scheduler.obs.tracer
        parse_started = time.monotonic()
        parsed = parse_predict_payload(self.scheduler, payload)
        if parsed.error is not None:
            return parsed.error[0], parsed.error[1], {}
        if trace_id is None:
            trace_id = new_trace_id()
        headers = {"X-Trace-Id": trace_id}
        try:
            requests = self.scheduler.submit_many(
                parsed.xs,
                timeout_ms=parsed.timeout_ms,
                priority=parsed.priority,
                trace_id=trace_id,
                model=parsed.model,
                tenant=parsed.tenant,
            )
            # The parse span covers validation + enqueue: everything between
            # body receipt and the requests entering the queue.
            if tracer.enabled:
                tracer.record_span(
                    "parse", trace_id, parse_started, time.monotonic(), n_samples=len(requests)
                )
            # One deadline for the whole body, not per request -- a stalled
            # scheduler must 503 after request_timeout_s, however many
            # samples the POST carried.
            deadline = time.monotonic() + self.request_timeout_s
            for request in requests:
                request.result(timeout=max(deadline - time.monotonic(), 0.001))
        except Exception as failure:
            status, body = predict_error_response(failure)
            headers.update(quota_retry_headers(status, body))
            return status, body, headers
        return 200, predict_success_response(requests), headers

    def handle_get(self, path: str) -> Tuple[int, Union[Dict[str, Any], str]]:
        """Execute one GET; returns (status, response)."""
        return handle_introspection(self.scheduler, path)


def _make_handler(server: PredictionServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            logger.debug("%s -- %s", self.address_string(), format % args)

        def _respond(
            self,
            status: int,
            payload: Union[Dict[str, Any], str],
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            if isinstance(payload, str):
                body = payload.encode("utf-8")
                content_type = "text/plain; charset=utf-8"
            else:
                body = json.dumps(payload).encode("utf-8")
                content_type = "application/json"
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            status, payload = server.handle_get(self.path)
            self._respond(status, payload)

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                self.close_connection = True
                self._respond(400, {"error": "malformed Content-Length header"})
                return
            if length <= 0 or length > MAX_BODY_BYTES:
                self.close_connection = True
                self._respond(400, {"error": "missing or oversized request body"})
                return
            # Read the body before any routing: leaving it unread would
            # desync the next request on a keep-alive connection.
            raw = self.rfile.read(length)
            if self.path != "/predict":
                self._respond(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                self._respond(400, {"error": "request body is not valid JSON"})
                return
            status, response, headers = server.handle_predict(
                payload, trace_id=sanitize_trace_id(self.headers.get("X-Trace-Id"))
            )
            # The respond span times serialisation + the socket write -- the
            # last leg of the request's journey, on the handler thread.
            tracer = server.scheduler.obs.tracer
            trace_id = headers.get("X-Trace-Id")
            write_started = time.monotonic()
            self._respond(status, response, headers)
            if tracer.enabled and trace_id is not None:
                tracer.record_span("respond", trace_id, write_started, time.monotonic())

    return Handler
