"""Serving telemetry: throughput, batching, per-level traffic, cycle savings.

A single :class:`ServerMetrics` instance is the shared sink of one serving
stack: the scheduler records every batch it executes, the policies read the
resulting :class:`MetricsSnapshot` to pick the next service level, and the
HTTP front exposes the same snapshot on ``GET /metrics``.  All counters live
in a :class:`~repro.obs.metrics.MetricsRegistry` -- the same registry the
fronts render as Prometheus text on ``GET /metrics?format=prometheus``, and
the one a future fleet router will sum per-replica series from.  Only the
percentile windows, the exact batch-size histogram and the current-level
marker stay as plain state behind the sink's lock.

Besides classic serving telemetry (request counts, batch-size histogram,
latency percentiles, throughput), the sink tracks the *simulated MCU cycle
savings*: each service level carries the per-sample cycle estimate of the ISA
cost model, so every batch served at an aggressive level records how many
Cortex-M cycles the skip configuration shed relative to the exact design.

Latencies, sheds and failures are additionally tracked *per priority class*
(:data:`repro.serving.request.PRIORITIES`): the per-class p50/p95 is how the
benchmarks prove that interactive traffic holds its latency under a
bulk-traffic burst, and how the SLO control loop can be audited after the
fact.

Multi-model, multi-tenant serving adds two more dimensions: the completed /
batch counters carry a ``model=`` label (one scheduler hosts a *deployment
table*, and per-model traffic must stay separable after fleet federation),
and per-tenant telemetry -- completions, quota rejections
(``repro_tenant_rejected_total{tenant=,reason=}``), sheds and latency
percentiles against the tenant's SLO target -- appears both as labelled
series and as the snapshot's ``per_tenant`` block.

Two throughput figures are reported: ``throughput_rps`` (lifetime average
over uptime -- stable, but misleading after idle periods) and
``windowed_throughput_rps`` (completions over the trailing
``rate_window_s`` seconds -- what the server is doing *now*).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_MS, MetricsRegistry
from repro.serving.request import DEFAULT_PRIORITY, DEFAULT_TENANT, PRIORITIES

#: The model label applied when a sink is driven without a deployment table
#: (standalone unit tests, single-model back-compat callers).
DEFAULT_MODEL = "default"


@dataclass
class MetricsSnapshot:
    """Point-in-time view of a :class:`ServerMetrics` sink."""

    requests_completed: int = 0
    requests_failed: int = 0
    requests_shed: int = 0
    batches: int = 0
    queue_depth: int = 0
    uptime_s: float = 0.0
    throughput_rps: float = 0.0
    windowed_throughput_rps: float = 0.0
    p50_latency_ms: float = 0.0
    p95_latency_ms: float = 0.0
    mean_batch_size: float = 0.0
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)
    per_level_requests: Dict[str, int] = field(default_factory=dict)
    per_level_batches: Dict[str, int] = field(default_factory=dict)
    level_switches: int = 0
    current_level: Optional[str] = None
    cycles_saved: float = 0.0
    mcu_ms_saved: float = 0.0
    #: Per priority class: completed/shed/failed counts and latency percentiles.
    per_priority: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per model (deployment): requests/batches/current level/per-level traffic.
    per_model: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Per tenant: completions, quota rejections, sheds, latency vs SLO.
    per_tenant: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Cascade telemetry (escalation rate, cycles saved vs exact-only,
    #: blended accuracy proxy); ``None`` unless a cascade gate is active.
    cascade: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view."""
        return {
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "requests_shed": self.requests_shed,
            "batches": self.batches,
            "queue_depth": self.queue_depth,
            "uptime_s": self.uptime_s,
            "throughput_rps": self.throughput_rps,
            "windowed_throughput_rps": self.windowed_throughput_rps,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {str(k): v for k, v in sorted(self.batch_size_histogram.items())},
            "per_level_requests": dict(self.per_level_requests),
            "per_level_batches": dict(self.per_level_batches),
            "level_switches": self.level_switches,
            "current_level": self.current_level,
            "cycles_saved": self.cycles_saved,
            "mcu_ms_saved": self.mcu_ms_saved,
            "per_priority": {name: dict(stats) for name, stats in self.per_priority.items()},
            "per_model": {name: dict(stats) for name, stats in self.per_model.items()},
            "per_tenant": {name: dict(stats) for name, stats in self.per_tenant.items()},
            **({"cascade": dict(self.cascade)} if self.cascade is not None else {}),
        }


def _percentile(ordered: List[float], q: float) -> float:
    """Percentile of an already-sorted list (true nearest-rank).

    The nearest-rank definition: the smallest value with at least ``q`` of
    the sample at or below it, i.e. element ``ceil(q * n) - 1`` (0-indexed).
    A rounded interpolation index looks similar but lands one rank short on
    small windows (e.g. p95 of 13 samples picks the 12th instead of the 13th
    value), systematically under-reporting tail latency.
    """
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[idx]


class ServerMetrics:
    """Thread-safe telemetry sink shared by the whole serving stack.

    Parameters
    ----------
    baseline_cycles_per_sample:
        Simulated per-sample cycles of the most accurate service level; the
        reference against which cycle savings are accumulated.
    cycles_to_ms:
        Milliseconds per cycle on the deployment board (savings conversion).
    window:
        Number of most-recent request latencies kept for the percentiles.
    registry:
        Metrics registry to record into; a private one is created when
        omitted.  Passing a shared registry (e.g. from an
        :class:`~repro.obs.Observability` bundle) is how the Prometheus
        endpoint and a future fleet aggregator see this sink's counters.
    rate_window_s:
        Width of the windowed-throughput window.
    time_fn:
        Monotonic clock override (tests inject a fake clock).
    """

    def __init__(
        self,
        baseline_cycles_per_sample: float = 0.0,
        cycles_to_ms: float = 0.0,
        window: int = 1024,
        registry: Optional[MetricsRegistry] = None,
        rate_window_s: float = 10.0,
        time_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.baseline_cycles_per_sample = float(baseline_cycles_per_sample)
        self.cycles_to_ms = float(cycles_to_ms)
        self.rate_window_s = float(rate_window_s)
        self._window = int(window)
        self._time = time_fn if time_fn is not None else time.monotonic
        self._lock = threading.Lock()
        self._started_at = self._time()
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        # Target metadata (uptime + build info) so fleet scrapes identify
        # which build/interpreter answers behind each replica= series.
        reg.enable_target_metadata()
        self._c_completed = reg.counter(
            "repro_requests_completed_total",
            "Requests completed, by model, priority class and service level.",
            ("model", "priority", "level"),
        )
        self._c_failed = reg.counter(
            "repro_requests_failed_total", "Requests failed, by priority class.", ("priority",)
        )
        self._c_shed = reg.counter(
            "repro_requests_shed_total",
            "Requests shed on deadline expiry, by priority class.",
            ("priority",),
        )
        self._c_batches = reg.counter(
            "repro_batches_total", "Batches executed, by model and service level.", ("model", "level")
        )
        self._c_tenant_completed = reg.counter(
            "repro_tenant_requests_total", "Requests completed, by tenant.", ("tenant",)
        )
        self._c_tenant_rejected = reg.counter(
            "repro_tenant_rejected_total",
            "Requests rejected at enqueue by a tenant quota, by tenant and "
            'reason ("rate" or "inflight").',
            ("tenant", "reason"),
        )
        self._c_switches = reg.counter(
            "repro_level_switches_total", "Service-level changes between consecutive batches."
        )
        self._c_cycles_saved = reg.counter(
            "repro_cycles_saved_total",
            "Simulated MCU cycles saved versus the most accurate level.",
        )
        self._c_cascade_attempts = reg.counter(
            "repro_cascade_attempts_total",
            "Cascade forward-pass attempts, by service level.",
            ("level",),
        )
        self._c_cascade_escalations = reg.counter(
            "repro_cascade_escalations_total",
            "Requests escalated to the exact level on a low softmax margin, by priority.",
            ("priority",),
        )
        self._c_cascade_suppressed = reg.counter(
            "repro_cascade_suppressed_total",
            "Low-margin requests answered cheap because their deadline left no "
            "headroom for an exact pass, by priority.",
            ("priority",),
        )
        self._c_cascade_completed = reg.counter(
            "repro_cascade_completed_total",
            "Requests completed through the cascade (cheap-accepted or escalated).",
        )
        self._c_cascade_cycles = reg.counter(
            "repro_cascade_cycles_total",
            "Simulated MCU cycles actually spent by cascade attempts.",
        )
        self._c_cascade_exact_cycles = reg.counter(
            "repro_cascade_exact_only_cycles_total",
            "Simulated MCU cycles an exact-only deployment would have spent "
            "on the same completed requests.",
        )
        # Cascade gate metadata, installed by the scheduler when the active
        # policy cascades; the snapshot's blended-accuracy proxy needs the
        # calibrated accept/exact accuracies.
        self._cascade_meta: Optional[Dict[str, Any]] = None
        self._h_latency = reg.histogram(
            "repro_request_latency_ms",
            "End-to-end request latency (queue wait + service), by priority class.",
            ("priority",),
            buckets=LATENCY_BUCKETS_MS,
        )
        self._h_batch_size = reg.histogram(
            "repro_batch_size", "Coalesced batch sizes.", buckets=BATCH_SIZE_BUCKETS
        )
        self._g_queue_depth = reg.gauge("repro_queue_depth", "Requests waiting in the queue.")
        self._g_windowed_rps = reg.gauge(
            "repro_throughput_rps", "Completions per second over the trailing window."
        )
        # Plain state the registry primitives cannot express: percentile
        # windows, the exact (non-bucketed) batch-size histogram, the
        # per-model current-level markers and the per-second completion ring.
        self._batch_sizes: Dict[int, int] = {}
        self._latencies: List[float] = []
        self._current_level: Optional[str] = None
        self._current_levels: Dict[str, str] = {}
        self._priority_latencies: Dict[str, List[float]] = {name: [] for name in PRIORITIES}
        self._tenant_latencies: Dict[str, List[float]] = {}
        self._tenant_shed: Dict[str, int] = {}
        #: tenant -> {"slo_ms": ..., "weight": ...}, installed by the
        #: scheduler from its tenant table so the per-tenant snapshot block
        #: can report p95-vs-SLO without a back-reference to the table.
        self._tenant_meta: Dict[str, Dict[str, Any]] = {}
        self._rate_buckets: deque = deque()  # [second, completions] pairs

    # ------------------------------------------------------------------ recording
    def record_batch(
        self,
        level_name: str,
        batch_size: int,
        latencies_ms: List[float],
        cycles_per_sample: float = 0.0,
        priorities: Optional[Sequence[str]] = None,
        track_level: bool = True,
        model: str = DEFAULT_MODEL,
        tenants: Optional[Sequence[str]] = None,
        baseline_cycles_per_sample: Optional[float] = None,
    ) -> None:
        """Record one executed batch.

        ``latencies_ms`` are the end-to-end (queue wait + service) latencies
        of the batch's requests; ``cycles_per_sample`` is the simulated MCU
        cost of the level that served it; ``priorities`` and ``tenants``
        (parallel to ``latencies_ms``) attribute each request to its
        priority class and tenant -- omitted entries count as ``"standard"``
        / the default tenant.  ``model`` names the deployment that executed
        the batch (a batch never mixes models, so one name covers it), and
        ``baseline_cycles_per_sample`` overrides the sink-level baseline for
        the cycle-savings credit -- each deployment has its own exact-level
        cost.  ``track_level=False`` leaves the current-level marker and the
        level-switch counter alone: the cascade's escalated (exact-level)
        groups interleave with cheap groups by design, and counting each
        interleave as a policy "switch" would drown the signal the counter
        exists for.
        """
        if priorities is None:
            priorities = [DEFAULT_PRIORITY] * len(latencies_ms)
        if tenants is None:
            tenants = [DEFAULT_TENANT] * len(latencies_ms)
        per_priority: Dict[str, int] = {}
        for priority in priorities:
            per_priority[priority] = per_priority.get(priority, 0) + 1
        per_tenant: Dict[str, int] = {}
        for tenant in tenants:
            per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
        with self._lock:
            self._batch_sizes[batch_size] = self._batch_sizes.get(batch_size, 0) + 1
            if track_level:
                previous = self._current_levels.get(model)
                if previous is not None and previous != level_name:
                    self._c_switches.inc()
                self._current_levels[model] = level_name
                self._current_level = level_name
            self._latencies.extend(latencies_ms)
            if len(self._latencies) > self._window:
                del self._latencies[: len(self._latencies) - self._window]
            for priority, latency in zip(priorities, latencies_ms):
                window = self._priority_latencies.setdefault(priority, [])
                window.append(latency)
                if len(window) > self._window:
                    del window[: len(window) - self._window]
            for tenant, latency in zip(tenants, latencies_ms):
                window = self._tenant_latencies.setdefault(tenant, [])
                window.append(latency)
                if len(window) > self._window:
                    del window[: len(window) - self._window]
            self._note_completions(self._time(), batch_size)
        self._c_batches.inc(model=model, level=level_name)
        self._h_batch_size.observe(batch_size)
        for priority, count in per_priority.items():
            self._c_completed.inc(count, model=model, priority=priority, level=level_name)
        for tenant, count in per_tenant.items():
            self._c_tenant_completed.inc(count, tenant=tenant)
        for priority, latency in zip(priorities, latencies_ms):
            self._h_latency.observe(latency, priority=priority)
        baseline = (
            self.baseline_cycles_per_sample
            if baseline_cycles_per_sample is None
            else float(baseline_cycles_per_sample)
        )
        if baseline > 0 and cycles_per_sample > 0:
            saved = baseline - cycles_per_sample
            if saved > 0:
                # Credit per *completed* request (== len(latencies_ms)): under
                # a cascade a group can contain requests that escalate instead
                # of completing, and those must not book cheap-level savings.
                self._c_cycles_saved.inc(saved * len(latencies_ms))

    def record_failure(self, count: int = 1, priority: str = DEFAULT_PRIORITY) -> None:
        """Record failed requests, attributed to their priority class."""
        self._c_failed.inc(int(count), priority=priority)

    def record_shed(
        self, count: int = 1, priority: str = DEFAULT_PRIORITY, tenant: Optional[str] = None
    ) -> None:
        """Record requests shed because their per-request deadline expired."""
        self._c_shed.inc(int(count), priority=priority)
        if tenant is not None:
            with self._lock:
                self._tenant_shed[tenant] = self._tenant_shed.get(tenant, 0) + int(count)

    # ------------------------------------------------------------------ tenants
    def configure_tenants(self, tenant_meta: Dict[str, Dict[str, Any]]) -> None:
        """Install per-tenant metadata (``slo_ms``, ``weight``) for snapshots.

        Called by the scheduler from its tenant table; from then on every
        snapshot carries a ``per_tenant`` block for each configured tenant
        (plus any unconfigured tenant that saw traffic), annotated with its
        SLO target and whether the windowed p95 currently meets it.
        """
        with self._lock:
            self._tenant_meta = {
                str(name): dict(meta) for name, meta in tenant_meta.items()
            }

    def record_tenant_rejection(self, tenant: str, reason: str) -> None:
        """Record one request rejected at enqueue by a tenant quota."""
        self._c_tenant_rejected.inc(tenant=tenant, reason=reason)

    def _tenant_block(self) -> Dict[str, Dict[str, Any]]:
        """The snapshot's ``per_tenant`` dict (lock held by the caller)."""
        completed_series = self._c_tenant_completed.collect()
        rejected_series = self._c_tenant_rejected.collect()
        names = set(self._tenant_meta) | self._tenant_latencies.keys()
        names.update(tenant for (tenant,) in completed_series)
        names.update(tenant for (tenant, _reason) in rejected_series)
        block: Dict[str, Dict[str, Any]] = {}
        for name in sorted(names):
            completed = int(completed_series.get((name,), 0))
            rejected = {
                reason: int(count)
                for (tenant, reason), count in sorted(rejected_series.items())
                if tenant == name
            }
            shed = int(self._tenant_shed.get(name, 0))
            meta = self._tenant_meta.get(name, {})
            if not completed and not rejected and not shed and not meta:
                continue  # only tenants that are configured or saw traffic
            ordered = sorted(self._tenant_latencies.get(name, ()))
            p95 = _percentile(ordered, 0.95)
            stats: Dict[str, Any] = {
                "completed": completed,
                "rejected": rejected,
                "rejected_total": sum(rejected.values()),
                "shed": shed,
                "p50_latency_ms": _percentile(ordered, 0.50),
                "p95_latency_ms": p95,
            }
            slo_ms = meta.get("slo_ms")
            if slo_ms is not None:
                stats["slo_ms"] = float(slo_ms)
                stats["slo_ok"] = bool(not ordered or p95 <= float(slo_ms))
            if meta.get("weight") is not None:
                stats["weight"] = float(meta["weight"])
            block[name] = stats
        return block

    # ------------------------------------------------------------------ cascade
    def configure_cascade(
        self,
        cheap_level: str,
        exact_level: str,
        threshold: float,
        accept_accuracy: Optional[float] = None,
        exact_accuracy: Optional[float] = None,
        accuracy_budget: Optional[float] = None,
    ) -> None:
        """Install the active cascade gate's metadata.

        Called by the scheduler when its policy produces a cascade gate;
        from then on :meth:`snapshot` carries a ``cascade`` block with the
        escalation rate, the cycles saved vs an exact-only deployment, and
        the blended accuracy proxy derived from the calibrated accuracies.
        """
        self._cascade_meta = {
            "cheap_level": str(cheap_level),
            "exact_level": str(exact_level),
            "threshold": float(threshold),
            "accept_accuracy": accept_accuracy,
            "exact_accuracy": exact_accuracy,
            "accuracy_budget": accuracy_budget,
        }

    def record_cascade_attempt(self, level_name: str, count: int, cycles_per_sample: float) -> None:
        """Record ``count`` forward passes at ``level_name`` in the cascade."""
        self._c_cascade_attempts.inc(int(count), level=level_name)
        if cycles_per_sample > 0:
            self._c_cascade_cycles.inc(float(cycles_per_sample) * count)

    def record_cascade_escalation(self, priority: str = DEFAULT_PRIORITY) -> None:
        """Record one request re-enqueued to the exact level."""
        self._c_cascade_escalations.inc(priority=priority)

    def record_cascade_suppressed(self, priority: str = DEFAULT_PRIORITY) -> None:
        """Record one low-margin request kept cheap for lack of deadline headroom."""
        self._c_cascade_suppressed.inc(priority=priority)

    def record_cascade_completions(self, count: int, exact_cycles_per_sample: float) -> None:
        """Credit ``count`` cascade completions against the exact-only baseline."""
        self._c_cascade_completed.inc(int(count))
        if exact_cycles_per_sample > 0:
            self._c_cascade_exact_cycles.inc(float(exact_cycles_per_sample) * count)

    def _cascade_block(self) -> Optional[Dict[str, Any]]:
        """The snapshot's ``cascade`` dict, or ``None`` when not cascading."""
        meta = self._cascade_meta
        if meta is None:
            return None
        completed = int(self._c_cascade_completed.total())
        escalations = int(self._c_cascade_escalations.total())
        suppressed = int(self._c_cascade_suppressed.total())
        spent = self._c_cascade_cycles.total()
        exact_only = self._c_cascade_exact_cycles.total()
        escalation_rate = escalations / completed if completed else 0.0
        block: Dict[str, Any] = {
            **meta,
            "completed": completed,
            "escalations": escalations,
            "suppressed": suppressed,
            "escalation_rate": escalation_rate,
            "attempts_per_level": {
                level: int(count) for (level,), count in self._c_cascade_attempts.collect().items()
            },
            "cycles_spent": spent,
            "exact_only_cycles": exact_only,
            "cycles_saved": exact_only - spent,
            "cycles_saved_frac": (exact_only - spent) / exact_only if exact_only else 0.0,
        }
        if meta["accept_accuracy"] is not None and meta["exact_accuracy"] is not None:
            # Accepted requests carry the calibrated above-threshold cheap
            # accuracy, escalated ones the exact accuracy: the live blend.
            block["blended_accuracy_proxy"] = (1.0 - escalation_rate) * meta[
                "accept_accuracy"
            ] + escalation_rate * meta["exact_accuracy"]
        return block

    def _note_completions(self, now: float, count: int) -> None:
        """Credit ``count`` completions to the current one-second bucket."""
        second = int(now)
        buckets = self._rate_buckets
        if buckets and buckets[-1][0] == second:
            buckets[-1][1] += count
        else:
            buckets.append([second, count])
        horizon = second - int(self.rate_window_s) - 1
        while buckets and buckets[0][0] < horizon:
            buckets.popleft()

    def _windowed_rps(self, now: float) -> float:
        """Completions per second over the trailing ``rate_window_s``."""
        horizon = now - self.rate_window_s
        total = sum(count for second, count in self._rate_buckets if second + 1.0 > horizon)
        span = min(self.rate_window_s, max(now - self._started_at, 1e-9))
        return total / span

    # ------------------------------------------------------------------ reading
    def snapshot(self, queue_depth: int = 0) -> MetricsSnapshot:
        """A consistent point-in-time view of every counter."""
        # Registry reads take per-instrument locks; aggregate by label after.
        completed_series = self._c_completed.collect()
        completed = int(sum(completed_series.values()))
        per_level_requests: Dict[str, int] = {}
        priority_completed: Dict[str, int] = {}
        model_completed: Dict[str, int] = {}
        model_levels: Dict[str, Dict[str, int]] = {}
        for (model, priority, level), count in completed_series.items():
            per_level_requests[level] = per_level_requests.get(level, 0) + int(count)
            priority_completed[priority] = priority_completed.get(priority, 0) + int(count)
            model_completed[model] = model_completed.get(model, 0) + int(count)
            levels = model_levels.setdefault(model, {})
            levels[level] = levels.get(level, 0) + int(count)
        failed_series = self._c_failed.collect()
        shed_series = self._c_shed.collect()
        batch_series = self._c_batches.collect()
        batches = int(sum(batch_series.values()))
        per_level_batches: Dict[str, int] = {}
        model_batches: Dict[str, int] = {}
        for (model, level), count in batch_series.items():
            per_level_batches[level] = per_level_batches.get(level, 0) + int(count)
            model_batches[model] = model_batches.get(model, 0) + int(count)
        with self._lock:
            now = self._time()
            uptime = max(now - self._started_at, 1e-9)
            windowed = self._windowed_rps(now)
            # Sorted once; both percentiles index the same ordered window
            # (snapshot runs on the scheduler loop before every batch).
            latencies = sorted(self._latencies)
            per_priority: Dict[str, Dict[str, float]] = {}
            for name in PRIORITIES:
                n_completed = priority_completed.get(name, 0)
                shed = int(shed_series.get((name,), 0))
                n_failed = int(failed_series.get((name,), 0))
                if not n_completed and not shed and not n_failed:
                    continue  # keep the snapshot small: only classes that saw traffic
                ordered = sorted(self._priority_latencies.get(name, ()))
                per_priority[name] = {
                    "completed": n_completed,
                    "shed": shed,
                    "failed": n_failed,
                    "p50_latency_ms": _percentile(ordered, 0.50),
                    "p95_latency_ms": _percentile(ordered, 0.95),
                }
            batch_size_histogram = dict(self._batch_sizes)
            current_level = self._current_level
            current_levels = dict(self._current_levels)
            per_tenant = self._tenant_block()
        per_model: Dict[str, Dict[str, Any]] = {}
        for model in sorted(set(model_completed) | set(model_batches) | set(current_levels)):
            per_model[model] = {
                "requests": model_completed.get(model, 0),
                "batches": model_batches.get(model, 0),
                "current_level": current_levels.get(model),
                "per_level_requests": model_levels.get(model, {}),
            }
        cycles_saved = self._c_cycles_saved.total()
        self._g_queue_depth.set(int(queue_depth))
        self._g_windowed_rps.set(windowed)
        return MetricsSnapshot(
            requests_completed=completed,
            requests_failed=int(sum(failed_series.values())),
            requests_shed=int(sum(shed_series.values())),
            batches=batches,
            queue_depth=int(queue_depth),
            uptime_s=uptime,
            throughput_rps=completed / uptime,
            windowed_throughput_rps=windowed,
            p50_latency_ms=_percentile(latencies, 0.50),
            p95_latency_ms=_percentile(latencies, 0.95),
            mean_batch_size=(completed / batches) if batches else 0.0,
            batch_size_histogram=batch_size_histogram,
            per_level_requests=per_level_requests,
            per_level_batches=per_level_batches,
            level_switches=int(self._c_switches.total()),
            current_level=current_level,
            cycles_saved=cycles_saved,
            mcu_ms_saved=cycles_saved * self.cycles_to_ms,
            per_priority=per_priority,
            per_model=per_model,
            per_tenant=per_tenant,
            cascade=self._cascade_block(),
        )

    def render_prometheus(self, queue_depth: int = 0) -> str:
        """The sink's registry as Prometheus text exposition.

        Takes a snapshot first so derived gauges (queue depth, windowed
        throughput) are fresh at scrape time.
        """
        self.snapshot(queue_depth=queue_depth)
        return self.registry.render_prometheus()
